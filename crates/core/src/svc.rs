//! Crash-tolerant sharded verification service.
//!
//! Promotes the single-process [`crate::exec::Executor`] into a
//! coordinator/worker architecture: `treu worker` subprocesses speak a
//! length-prefixed JSONL protocol over stdin/stdout, the coordinator shards
//! the task list across N workers with shard-level work stealing, and a
//! supervision tree makes the whole thing crash-tolerant:
//!
//! * per-worker heartbeat + no-progress watchdog (the same `recv_timeout`
//!   discipline as [`crate::exec`]'s per-run deadline),
//! * crash/hang detection that requeues the dead worker's in-flight shard
//!   exactly once per incarnation,
//! * deterministic doubling backoff on worker respawn (seeded, via
//!   [`crate::fault::backoff_millis`]),
//! * a bounded respawn budget after which the coordinator degrades
//!   gracefully to in-process execution of the orphaned shards — it never
//!   aborts the registry.
//!
//! Because every result and trace event is a pure function of
//! `(id, seed, params, policy, plan, replica)`, outputs can be computed on
//! any worker, killed and recomputed, and merged index-ordered into the
//! existing schedule-independent trace stream: fingerprints and trace
//! addresses are bitwise-identical at every (process count, jobs-per-worker,
//! kill schedule) topology.
//!
//! Attestation links ([`crate::attest`]) are emitted **coordinator-side
//! only**, after the merged report is assembled: workers never see
//! `--attest-dir`, cannot race on the chain, and because every address a
//! link names is schedule-independent, the sealed link bytes — MAC
//! included — are identical at every topology (DESIGN §15–16).

use std::collections::VecDeque;
use std::io::{self, BufRead, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use crate::cache::{Lookup, RunCache};
use crate::exec::{
    ExecReport, FailureKind, RunFailure, RunOutcome, SupervisePolicy, VerifyOutcome, VerifyReport,
};
use crate::experiment::{ParamValue, Params, RunRecord};
use crate::fault::{backoff_millis, FaultKind, FaultPlan, KillPlan};
use crate::provenance::Trail;
use crate::registry::ExperimentRegistry;
use crate::trace::{json_escape, json_unescape, RunTrace, TraceEvent};
use treu_math::parallel::SchedStats;

/// Wire protocol version spoken between coordinator and worker.
pub const PROTO_VERSION: u32 = 1;

/// How often an in-flight shard emits a keepalive beat when no task has
/// completed — a fraction of any sane hang timeout, so slow-but-alive
/// workers are never declared hung.
const KEEPALIVE_INTERVAL: Duration = Duration::from_secs(5);

/// Upper bound on a single frame payload; anything larger is a protocol
/// error rather than an allocation request.
const MAX_FRAME: usize = 16 << 20;

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

/// Write one length-prefixed frame: ASCII decimal byte length, `\n`, payload.
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    w.write_all(payload.len().to_string().as_bytes())?;
    w.write_all(b"\n")?;
    w.write_all(payload.as_bytes())?;
    w.flush()
}

/// Read one length-prefixed frame. Returns `Ok(None)` on clean EOF before
/// the length line; truncation or a malformed length mid-stream is an error.
pub fn read_frame(r: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut header = String::new();
    if r.read_line(&mut header)? == 0 {
        return Ok(None);
    }
    let len: usize = header
        .trim_end()
        .parse()
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad frame length"))?;
    if len > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "frame too large"));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    String::from_utf8(payload)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame not UTF-8"))
}

// ---------------------------------------------------------------------------
// Wire encoding helpers
// ---------------------------------------------------------------------------

/// Minimal field extractor for this module's own flat JSON objects: finds
/// `"key":` and returns the raw value token (string values come back
/// *escaped*, without their quotes).
fn jfield<'a>(payload: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let at = payload.find(&pat)? + pat.len();
    let rest = &payload[at..];
    if let Some(stripped) = rest.strip_prefix('"') {
        let bytes = stripped.as_bytes();
        let mut end = 0;
        while end < bytes.len() {
            match bytes[end] {
                b'\\' => end += 2,
                b'"' => return Some(&stripped[..end]),
                _ => end += 1,
            }
        }
        None
    } else {
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(&rest[..end])
    }
}

fn encode_menu(menu: &[FaultKind]) -> String {
    menu.iter()
        .map(|k| match k {
            FaultKind::Panic => "p".to_string(),
            FaultKind::Delay(ms) => format!("d{ms}"),
            FaultKind::CorruptTrail => "c".to_string(),
            FaultKind::TransientErr(n) => format!("e{n}"),
        })
        .collect::<Vec<_>>()
        .join(",")
}

fn decode_menu(s: &str) -> Option<Vec<FaultKind>> {
    if s.is_empty() {
        return Some(Vec::new());
    }
    s.split(',')
        .map(|tok| match tok.as_bytes().first()? {
            b'p' => Some(FaultKind::Panic),
            b'c' => Some(FaultKind::CorruptTrail),
            b'd' => tok[1..].parse().ok().map(FaultKind::Delay),
            b'e' => tok[1..].parse().ok().map(FaultKind::TransientErr),
            _ => None,
        })
        .collect()
}

/// Encode a [`FaultPlan`] for the wire such that the worker reconstructs a
/// bitwise-identical plan: same fingerprint, same fault on every
/// `(id, seed, attempt)`.
pub fn encode_plan(plan: &FaultPlan) -> String {
    let targets = plan.targets().iter().map(|t| json_escape(t)).collect::<Vec<_>>().join("\u{1f}");
    format!(
        "{:x}:{:x}:{}:{}",
        plan.seed(),
        plan.rate().to_bits(),
        encode_menu(plan.menu()),
        targets
    )
}

/// Decode the wire form produced by [`encode_plan`].
pub fn decode_plan(s: &str) -> Option<FaultPlan> {
    let mut it = s.splitn(4, ':');
    let seed = u64::from_str_radix(it.next()?, 16).ok()?;
    let rate = f64::from_bits(u64::from_str_radix(it.next()?, 16).ok()?);
    let menu = decode_menu(it.next()?)?;
    let targets = it.next()?;
    let mut plan = FaultPlan::with_menu(seed, rate, menu);
    if !targets.is_empty() {
        for t in targets.split('\u{1f}') {
            plan = plan.and_panic_on(&json_unescape(t));
        }
    }
    Some(plan)
}

// ---------------------------------------------------------------------------
// Task specs and outputs
// ---------------------------------------------------------------------------

/// One unit of work shipped to a worker: everything the deterministic
/// execution function needs, keyed by the caller's result index.
#[derive(Debug, Clone)]
pub struct TaskSpec {
    /// Position in the caller's result vector (merge key).
    pub index: usize,
    /// Experiment id.
    pub id: String,
    /// Base seed.
    pub seed: u64,
    /// Replica number (verification replicas claim 0 and 1).
    pub replica: u32,
    /// Parameters for this run.
    pub params: Params,
    /// Supervised retry budget.
    pub retries: u32,
    /// Per-attempt deadline in microseconds; 0 disarms the watchdog.
    pub deadline_us: u64,
    /// Whether the worker should consult/populate its cache for this task.
    pub cache: bool,
}

/// The result of one task, with its trace events for index-ordered merge.
#[derive(Debug, Clone)]
pub struct TaskOutput {
    /// Merge key (same as the spec's index).
    pub index: usize,
    /// Run outcome (success record or classified failure).
    pub outcome: RunOutcome,
    /// Whether the result came from the worker-side cache.
    pub cached: bool,
    /// Trace events the worker's ring evicted for this task.
    pub dropped: u64,
    /// Trace events recorded for this task, in emit order.
    pub events: Vec<(TraceEvent, f64)>,
}

fn encode_param(v: &ParamValue) -> (char, String) {
    match v {
        ParamValue::Int(i) => ('i', i.to_string()),
        ParamValue::Float(f) => ('f', format!("{:016x}", f.to_bits())),
        ParamValue::Text(t) => ('t', json_escape(t)),
        ParamValue::Bool(b) => ('b', b.to_string()),
    }
}

fn render_shard(shard: usize, tasks: &[TaskSpec]) -> String {
    let mut out = format!("{{\"msg\":\"shard\",\"shard\":{shard},\"tasks\":{}}}", tasks.len());
    for t in tasks {
        out.push_str(&format!(
            "\ntask\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            t.index,
            json_escape(&t.id),
            t.seed,
            t.replica,
            t.retries,
            t.deadline_us,
            u8::from(t.cache)
        ));
        for (k, v) in t.params.iter() {
            let (tag, val) = encode_param(v);
            out.push_str(&format!("\nparam\t{}\t{}\t{tag}\t{val}", t.index, json_escape(k)));
        }
    }
    out
}

fn parse_shard(payload: &str) -> Option<(usize, Vec<TaskSpec>)> {
    let mut lines = payload.lines();
    let shard: usize = jfield(lines.next()?, "shard")?.parse().ok()?;
    let mut tasks: Vec<TaskSpec> = Vec::new();
    for line in lines {
        let mut f = line.split('\t');
        match f.next()? {
            "task" => tasks.push(TaskSpec {
                index: f.next()?.parse().ok()?,
                id: json_unescape(f.next()?),
                seed: f.next()?.parse().ok()?,
                replica: f.next()?.parse().ok()?,
                params: Params::new(),
                retries: f.next()?.parse().ok()?,
                deadline_us: f.next()?.parse().ok()?,
                cache: f.next()? == "1",
            }),
            "param" => {
                let index: usize = f.next()?.parse().ok()?;
                let key = json_unescape(f.next()?);
                let tag = f.next()?;
                let val = f.next()?;
                let t = tasks.iter_mut().rfind(|t| t.index == index)?;
                let params = std::mem::take(&mut t.params);
                t.params = match tag {
                    "i" => params.with_int(&key, val.parse().ok()?),
                    "f" => {
                        params.with_float(&key, f64::from_bits(u64::from_str_radix(val, 16).ok()?))
                    }
                    "t" => params.with_text(&key, &json_unescape(val)),
                    "b" => params.with_bool(&key, val.parse().ok()?),
                    _ => return None,
                };
            }
            _ => return None,
        }
    }
    Some((shard, tasks))
}

fn render_done(shard: usize, outputs: &[TaskOutput]) -> String {
    let mut out = format!("{{\"msg\":\"done\",\"shard\":{shard},\"results\":{}}}", outputs.len());
    for o in outputs {
        match &o.outcome {
            RunOutcome::Ok { record, attempts } => {
                out.push_str(&format!(
                    "\nok\t{}\t{attempts}\t{}\t{}\t{}\t{}\t{:016x}",
                    o.index,
                    u8::from(o.cached),
                    o.dropped,
                    json_escape(&record.name),
                    record.seed,
                    record.wall_seconds.to_bits()
                ));
                out.push_str(&format!(
                    "\ntrail\t{}\t{}",
                    o.index,
                    json_escape(&record.trail.render())
                ));
            }
            RunOutcome::Failed(fail) => {
                out.push_str(&format!(
                    "\nfail\t{}\t{}\t{}\t{}\t{}",
                    o.index,
                    fail.taxonomy.name(),
                    fail.attempts,
                    o.dropped,
                    json_escape(&fail.last_error)
                ));
            }
        }
        for (ev, at) in &o.events {
            out.push_str(&format!(
                "\nev\t{}\t{:016x}\t{}",
                o.index,
                at.to_bits(),
                json_escape(&ev.render_json())
            ));
        }
    }
    out
}

fn parse_done(payload: &str) -> Option<(usize, Vec<TaskOutput>)> {
    let mut lines = payload.lines();
    let shard: usize = jfield(lines.next()?, "shard")?.parse().ok()?;
    let mut outputs: Vec<TaskOutput> = Vec::new();
    for line in lines {
        let mut f = line.split('\t');
        match f.next()? {
            "ok" => {
                let index: usize = f.next()?.parse().ok()?;
                let attempts: u32 = f.next()?.parse().ok()?;
                let cached = f.next()? == "1";
                let dropped: u64 = f.next()?.parse().ok()?;
                let name = json_unescape(f.next()?);
                let seed: u64 = f.next()?.parse().ok()?;
                let wall = f64::from_bits(u64::from_str_radix(f.next()?, 16).ok()?);
                outputs.push(TaskOutput {
                    index,
                    outcome: RunOutcome::Ok {
                        record: RunRecord { name, seed, trail: Trail::new(), wall_seconds: wall },
                        attempts,
                    },
                    cached,
                    dropped,
                    events: Vec::new(),
                });
            }
            "trail" => {
                let index: usize = f.next()?.parse().ok()?;
                let rendered = json_unescape(f.next()?);
                let o = outputs.iter_mut().rfind(|o| o.index == index)?;
                if let RunOutcome::Ok { record, .. } = &mut o.outcome {
                    record.trail = Trail::parse(&rendered)?;
                }
            }
            "fail" => {
                let index: usize = f.next()?.parse().ok()?;
                let taxonomy = match f.next()? {
                    "Panicked" => FailureKind::Panicked,
                    "TimedOut" => FailureKind::TimedOut,
                    "Nondeterministic" => FailureKind::Nondeterministic,
                    "CorruptCache" => FailureKind::CorruptCache,
                    _ => return None,
                };
                let attempts: u32 = f.next()?.parse().ok()?;
                let dropped: u64 = f.next()?.parse().ok()?;
                let last_error = json_unescape(f.next()?);
                outputs.push(TaskOutput {
                    index,
                    outcome: RunOutcome::Failed(RunFailure { taxonomy, attempts, last_error }),
                    cached: false,
                    dropped,
                    events: Vec::new(),
                });
            }
            "ev" => {
                let index: usize = f.next()?.parse().ok()?;
                let at = f64::from_bits(u64::from_str_radix(f.next()?, 16).ok()?);
                let ev = TraceEvent::parse_json(&json_unescape(f.next()?))?;
                outputs.iter_mut().rfind(|o| o.index == index)?.events.push((ev, at));
            }
            _ => return None,
        }
    }
    Some((shard, outputs))
}

// ---------------------------------------------------------------------------
// Task execution (shared by worker processes and the degraded coordinator)
// ---------------------------------------------------------------------------

/// Execute one task deterministically. This is the same code path whether it
/// runs inside a `treu worker` subprocess or in-process after degradation,
/// which is what makes topology unable to change results or hashed trace
/// content.
pub fn execute_task(
    reg: &ExperimentRegistry,
    t: &TaskSpec,
    plan: Option<&FaultPlan>,
    cache: Option<&RunCache>,
    tracing: bool,
    epoch: Instant,
) -> TaskOutput {
    let mut rt = tracing.then(|| RunTrace::new(&t.id, t.seed));
    let mut policy = SupervisePolicy::new(t.retries);
    if t.deadline_us > 0 {
        policy = policy.with_deadline_secs(t.deadline_us as f64 / 1e6);
    }
    if let Some(rt) = rt.as_mut() {
        rt.push(TraceEvent::Claim { replica: t.replica }, epoch.elapsed().as_secs_f64());
    }
    let (outcome, cached) = match reg.get(&t.id) {
        None => (
            RunOutcome::Failed(RunFailure {
                taxonomy: FailureKind::Panicked,
                attempts: 0,
                last_error: format!("unknown experiment '{}'", t.id),
            }),
            false,
        ),
        Some(entry) => {
            let mut hit = None;
            if t.cache {
                if let Some(cache) = cache {
                    let found = cache.lookup_classified(&t.id, t.seed, &t.params);
                    if let Some(rt) = rt.as_mut() {
                        rt.push(
                            TraceEvent::Cache { result: crate::exec::cache_result(&found) },
                            epoch.elapsed().as_secs_f64(),
                        );
                    }
                    if let Lookup::Hit(rec) = found {
                        hit = Some(rec);
                    }
                }
            }
            match hit {
                Some(record) => (RunOutcome::Ok { record, attempts: 1 }, true),
                None => {
                    let outcome = crate::exec::run_supervised_traced(
                        entry.runner(),
                        &t.id,
                        t.seed,
                        &t.params,
                        &policy,
                        plan,
                        t.replica,
                        rt.as_mut().map(|r| (r, epoch)),
                    );
                    if let (true, Some(cache), RunOutcome::Ok { record, .. }) =
                        (t.cache, cache, &outcome)
                    {
                        if cache.store(&t.id, t.seed, &t.params, record).is_ok() {
                            if let Some(rt) = rt.as_mut() {
                                rt.push(TraceEvent::CacheStored, epoch.elapsed().as_secs_f64());
                            }
                        }
                    }
                    (outcome, false)
                }
            }
        }
    };
    let (events, dropped) = match rt {
        Some(rt) => (rt.events().iter().map(|(_, ev, at)| (ev.clone(), *at)).collect(), rt.dropped),
        None => (Vec::new(), 0),
    };
    TaskOutput { index: t.index, outcome, cached, dropped, events }
}

// ---------------------------------------------------------------------------
// Worker loop
// ---------------------------------------------------------------------------

/// The body of `treu worker`: read frames from `input`, execute shards with
/// a small in-process work-stealing pool, stream heartbeats, write results
/// back to `output`. Generic over the streams so tests can drive it in
/// memory.
pub fn worker_loop(
    reg: &ExperimentRegistry,
    input: impl BufRead,
    mut output: impl Write,
) -> io::Result<()> {
    let mut input = input;
    let mut jobs = 1usize;
    let mut tracing = false;
    let mut plan: Option<FaultPlan> = None;
    let mut cache: Option<RunCache> = None;
    // treu-lint: allow(wall-clock, reason = "trace timestamps are an unhashed sidecar")
    let epoch = Instant::now();
    while let Some(payload) = read_frame(&mut input)? {
        match jfield(&payload, "msg").unwrap_or("") {
            "hello" => {
                let proto: u32 =
                    jfield(&payload, "proto").and_then(|v| v.parse().ok()).unwrap_or(0);
                if proto != PROTO_VERSION {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("protocol mismatch: coordinator v{proto}, worker v{PROTO_VERSION}"),
                    ));
                }
                jobs = jfield(&payload, "jobs").and_then(|v| v.parse().ok()).unwrap_or(1).max(1);
                tracing = jfield(&payload, "tracing") == Some("true");
                plan = jfield(&payload, "plan").and_then(|p| decode_plan(&json_unescape(p)));
                if let Some(dir) = jfield(&payload, "cache_dir") {
                    cache = RunCache::open(Path::new(&json_unescape(dir))).ok();
                }
                write_frame(
                    &mut output,
                    &format!("{{\"msg\":\"ready\",\"pid\":{}}}", std::process::id()),
                )?;
            }
            "shard" => {
                let (shard, tasks) = parse_shard(&payload).ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "malformed shard frame")
                })?;
                let outputs = run_shard(
                    reg,
                    &tasks,
                    plan.as_ref(),
                    cache.as_ref(),
                    tracing,
                    jobs,
                    epoch,
                    |done| {
                        write_frame(
                            &mut output,
                            &format!("{{\"msg\":\"beat\",\"shard\":{shard},\"done\":{done}}}"),
                        )
                    },
                )?;
                write_frame(&mut output, &render_done(shard, &outputs))?;
            }
            "shutdown" => {
                if let Some(cache) = cache.as_ref() {
                    let _ = cache.write_stats_sidecar();
                }
                write_frame(&mut output, "{\"msg\":\"bye\"}")?;
                return Ok(());
            }
            _ => {}
        }
    }
    Ok(())
}

/// Execute a shard's tasks with `jobs` threads work-stealing off a shared
/// claim counter; outputs are re-sorted by index so shard-internal
/// scheduling never leaks into the merged stream.
#[allow(clippy::too_many_arguments)]
fn run_shard(
    reg: &ExperimentRegistry,
    tasks: &[TaskSpec],
    plan: Option<&FaultPlan>,
    cache: Option<&RunCache>,
    tracing: bool,
    jobs: usize,
    epoch: Instant,
    mut beat: impl FnMut(usize) -> io::Result<()>,
) -> io::Result<Vec<TaskOutput>> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<TaskOutput>();
    let mut outputs: Vec<TaskOutput> = Vec::with_capacity(tasks.len());
    std::thread::scope(|scope| -> io::Result<()> {
        for _ in 0..jobs.min(tasks.len().max(1)) {
            let tx = tx.clone();
            let next = &next;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::SeqCst);
                let Some(t) = tasks.get(i) else { break };
                if tx.send(execute_task(reg, t, plan, cache, tracing, epoch)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        loop {
            match rx.recv_timeout(KEEPALIVE_INTERVAL) {
                Ok(out) => {
                    outputs.push(out);
                    beat(outputs.len())?;
                }
                // A single long task starves the per-completion beat; a
                // keepalive beat tells the coordinator's no-progress
                // watchdog the worker is slow, not dead. Beats are a
                // wall-clock side channel — never part of results.
                Err(mpsc::RecvTimeoutError::Timeout) => beat(outputs.len())?,
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }
        Ok(())
    })?;
    outputs.sort_by_key(|o| o.index);
    Ok(outputs)
}

// ---------------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------------

/// Configuration for the sharded service coordinator.
#[derive(Debug, Clone)]
pub struct SvcConfig {
    /// Number of worker processes.
    pub workers: usize,
    /// Jobs (threads) per worker.
    pub jobs: usize,
    /// Whether workers record trace events.
    pub tracing: bool,
    /// Tasks per shard; 0 picks an automatic size.
    pub shard_size: usize,
    /// Respawns allowed per worker slot before the slot is declared dead.
    pub respawn_budget: u32,
    /// How long a busy or starting worker may go without progress.
    pub hang_timeout: Duration,
    /// Seeded kill plan for chaos drills: the coordinator SIGKILLs its own
    /// workers mid-shard.
    pub kill_plan: Option<KillPlan>,
    /// Override the worker command line; empty means `current_exe worker`.
    pub worker_cmd: Vec<String>,
    /// Cache directory workers should open (run mode only).
    pub cache_dir: Option<PathBuf>,
}

impl SvcConfig {
    /// A coordinator over `workers` processes with defaults matching the CLI.
    pub fn new(workers: usize) -> Self {
        SvcConfig {
            workers: workers.max(1),
            jobs: 1,
            tracing: false,
            shard_size: 0,
            respawn_budget: 2,
            hang_timeout: Duration::from_secs(60),
            kill_plan: None,
            worker_cmd: Vec::new(),
            cache_dir: None,
        }
    }

    /// Set jobs (threads) per worker.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Enable or disable worker-side tracing.
    pub fn with_tracing(mut self, on: bool) -> Self {
        self.tracing = on;
        self
    }

    /// Fix the shard size (0 = automatic).
    pub fn with_shard_size(mut self, n: usize) -> Self {
        self.shard_size = n;
        self
    }

    /// Set the per-slot respawn budget.
    pub fn with_respawn_budget(mut self, n: u32) -> Self {
        self.respawn_budget = n;
        self
    }

    /// Set the no-progress hang timeout.
    pub fn with_hang_timeout(mut self, d: Duration) -> Self {
        self.hang_timeout = d;
        self
    }

    /// Arm a seeded kill plan.
    pub fn with_kill_plan(mut self, plan: KillPlan) -> Self {
        self.kill_plan = Some(plan);
        self
    }

    /// Override the worker command line (tests use `/bin/true`, `/bin/sleep`).
    pub fn with_worker_cmd(mut self, cmd: Vec<String>) -> Self {
        self.worker_cmd = cmd;
        self
    }

    /// Point run-mode workers at a shared cache directory.
    pub fn with_cache_dir(mut self, dir: PathBuf) -> Self {
        self.cache_dir = Some(dir);
        self
    }

    fn auto_shard_size(&self, tasks: usize) -> usize {
        if self.shard_size > 0 {
            return self.shard_size;
        }
        (tasks / (self.workers * 4).max(1)).clamp(1, 8)
    }
}

/// Supervision counters for one coordinated batch.
#[derive(Debug, Clone, Copy, Default)]
pub struct SvcStats {
    /// Worker slots configured.
    pub workers: usize,
    /// Total worker processes spawned (incarnations across all slots).
    pub spawned: u32,
    /// Workers SIGKILLed by the kill plan.
    pub kills: u32,
    /// Worker crashes observed (EOF without a kill we caused).
    pub crashes: u32,
    /// Workers declared hung by the no-progress watchdog.
    pub hangs: u32,
    /// Shards requeued after an incarnation died holding them.
    pub requeues: u32,
    /// Total shard dispatches.
    pub shards: u32,
    /// Heartbeat frames received.
    pub heartbeats: u32,
    /// Tasks completed in-process after degradation.
    pub degraded_tasks: u32,
    /// Whether the coordinator degraded to in-process execution.
    pub degraded: bool,
}

impl SvcStats {
    /// One-line summary for reports.
    pub fn render(&self) -> String {
        let mut s = format!(
            "svc: workers={} spawned={} shards={} requeues={} kills={} crashes={} hangs={} beats={}",
            self.workers,
            self.spawned,
            self.shards,
            self.requeues,
            self.kills,
            self.crashes,
            self.hangs,
            self.heartbeats
        );
        if self.degraded {
            s.push_str(&format!(" DEGRADED(in-process tasks={})", self.degraded_tasks));
        }
        s
    }
}

struct Incarnation {
    child: Child,
    stdin: ChildStdin,
}

struct Slot {
    live: Option<Incarnation>,
    /// Incarnation counter; reader frames are tagged with it so frames from
    /// a killed incarnation are dropped instead of corrupting the next one.
    inc: u32,
    spawned: u32,
    ready: bool,
    /// We deliberately killed this incarnation (kill plan or hang watchdog),
    /// so its EOF is not counted as a crash.
    killed: bool,
    /// Requeue-exactly-once-per-incarnation flag.
    requeued: bool,
    /// Shards dispatched to the current incarnation (kill-plan ordinal).
    dispatched: u32,
    /// Kill-plan verdict for this incarnation: kill during the Nth dispatch.
    doom: Option<u64>,
    /// Shard currently in flight, if any.
    busy: Option<usize>,
    last_progress: Instant,
    dead: bool,
}

enum Wire {
    Frame { worker: usize, inc: u32, payload: String },
    Eof { worker: usize, inc: u32 },
}

/// Coordinator over a pool of `treu worker` subprocesses.
pub struct WorkerPool {
    cfg: SvcConfig,
}

impl WorkerPool {
    /// Create a pool with the given configuration.
    pub fn new(cfg: SvcConfig) -> Self {
        WorkerPool { cfg }
    }

    /// The configuration this pool runs with.
    pub fn config(&self) -> &SvcConfig {
        &self.cfg
    }

    fn worker_command(&self) -> io::Result<Command> {
        let argv: Vec<String> = if self.cfg.worker_cmd.is_empty() {
            vec![std::env::current_exe()?.to_string_lossy().into_owned(), "worker".to_string()]
        } else {
            self.cfg.worker_cmd.clone()
        };
        let mut cmd = Command::new(&argv[0]);
        // env_clear pins the worker environment: determinism must not hinge
        // on whatever the parent shell happened to export (Environment::
        // capture reads no env vars, so the cache fingerprint still agrees).
        cmd.args(&argv[1..])
            .env_clear()
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        Ok(cmd)
    }

    fn hello(&self, plan: Option<&FaultPlan>) -> String {
        let mut s = format!(
            "{{\"msg\":\"hello\",\"proto\":{PROTO_VERSION},\"jobs\":{},\"tracing\":{}",
            self.cfg.jobs, self.cfg.tracing
        );
        if let Some(plan) = plan {
            s.push_str(&format!(",\"plan\":\"{}\"", json_escape(&encode_plan(plan))));
        }
        if let Some(dir) = &self.cfg.cache_dir {
            s.push_str(&format!(",\"cache_dir\":\"{}\"", json_escape(&dir.to_string_lossy())));
        }
        s.push('}');
        s
    }

    /// Run `tasks` across the pool. `tasks[i].index` must equal `i`.
    ///
    /// Results come back complete: any task orphaned by crashes beyond the
    /// respawn budget is executed in-process (`degraded_cache` is the
    /// coordinator-side cache used only for those), so this never aborts
    /// short of an I/O failure in the coordinator itself.
    // Indexing keeps `slots[w]` borrows short: the dispatch and hang loops
    // hand `&mut slots[w]` to `fail_incarnation` mid-iteration.
    #[allow(clippy::needless_range_loop)]
    pub fn run_tasks(
        &self,
        reg: &ExperimentRegistry,
        tasks: Vec<TaskSpec>,
        plan: Option<&FaultPlan>,
        degraded_cache: Option<&RunCache>,
        seed: u64,
    ) -> io::Result<(Vec<TaskOutput>, SvcStats)> {
        let mut stats = SvcStats { workers: self.cfg.workers, ..SvcStats::default() };
        // treu-lint: allow(wall-clock, reason = "supervision timing sidecar, never hashed")
        let epoch = Instant::now();
        if tasks.is_empty() {
            return Ok((Vec::new(), stats));
        }
        debug_assert!(tasks.iter().enumerate().all(|(i, t)| t.index == i));
        let total = tasks.len();
        let mut results: Vec<Option<TaskOutput>> = (0..total).map(|_| None).collect();
        let shard_size = self.cfg.auto_shard_size(total);
        let shards: Vec<Vec<TaskSpec>> = tasks.chunks(shard_size).map(<[_]>::to_vec).collect();
        let mut queue: VecDeque<usize> = (0..shards.len()).collect();
        let hello = self.hello(plan);
        let (tx, rx) = mpsc::channel::<Wire>();
        let nslots = self.cfg.workers.min(shards.len());
        let mut slots: Vec<Slot> = Vec::with_capacity(nslots);
        for w in 0..nslots {
            let mut slot = Slot {
                live: None,
                inc: 0,
                spawned: 0,
                ready: false,
                killed: false,
                requeued: false,
                dispatched: 0,
                doom: None,
                busy: None,
                last_progress: epoch,
                dead: false,
            };
            self.respawn(w, &mut slot, &hello, &tx, &mut stats, seed, false);
            slots.push(slot);
        }
        let mut filled = 0usize;
        while filled < total {
            if slots.iter().all(|s| s.dead) {
                // Degradation ladder, final rung: every slot exhausted its
                // respawn budget. Finish the orphaned work in-process rather
                // than abort — same execute_task, so results are identical.
                stats.degraded = true;
                for (i, slot) in results.iter_mut().enumerate() {
                    if slot.is_none() {
                        *slot = Some(execute_task(
                            reg,
                            &tasks[i],
                            plan,
                            degraded_cache,
                            self.cfg.tracing,
                            epoch,
                        ));
                        stats.degraded_tasks += 1;
                    }
                }
                break;
            }
            // Dispatch queued shards to ready, idle, live slots.
            for w in 0..slots.len() {
                if queue.is_empty() {
                    break;
                }
                if slots[w].dead
                    || slots[w].live.is_none()
                    || !slots[w].ready
                    || slots[w].busy.is_some()
                {
                    continue;
                }
                let sh = queue.pop_front().expect("non-empty queue");
                slots[w].busy = Some(sh);
                slots[w].dispatched += 1;
                // treu-lint: allow(wall-clock, reason = "supervision watchdog")
                slots[w].last_progress = Instant::now();
                stats.shards += 1;
                let frame = render_shard(sh, &shards[sh]);
                let write_ok = {
                    let inc = slots[w].live.as_mut().expect("live incarnation");
                    write_frame(&mut inc.stdin, &frame).is_ok()
                };
                if !write_ok {
                    stats.crashes += 1;
                    self.fail_incarnation(
                        w,
                        &mut slots[w],
                        &mut queue,
                        &hello,
                        &tx,
                        &mut stats,
                        seed,
                    );
                    continue;
                }
                // Chaos drill: the kill plan said to SIGKILL this incarnation
                // during its doom-th dispatch. The shard frame was just
                // delivered, so the kill lands mid-shard.
                if slots[w].doom == Some(u64::from(slots[w].dispatched)) {
                    stats.kills += 1;
                    slots[w].killed = true;
                    self.fail_incarnation(
                        w,
                        &mut slots[w],
                        &mut queue,
                        &hello,
                        &tx,
                        &mut stats,
                        seed,
                    );
                }
            }
            // Watchdog tick: smallest remaining hang budget among slots that
            // owe us progress, clamped to keep the loop responsive.
            let mut tick = Duration::from_millis(250);
            for s in slots.iter() {
                if s.dead || s.live.is_none() {
                    continue;
                }
                if s.busy.is_some() || !s.ready {
                    let rem = self.cfg.hang_timeout.saturating_sub(s.last_progress.elapsed());
                    tick = tick.min(rem.max(Duration::from_millis(10)));
                }
            }
            match rx.recv_timeout(tick) {
                Ok(Wire::Frame { worker, inc, payload }) => {
                    let slot = &mut slots[worker];
                    if inc != slot.inc || slot.dead {
                        continue; // stale incarnation
                    }
                    // treu-lint: allow(wall-clock, reason = "supervision watchdog")
                    slot.last_progress = Instant::now();
                    match jfield(&payload, "msg") {
                        Some("ready") => slot.ready = true,
                        Some("beat") => stats.heartbeats += 1,
                        Some("done") => {
                            if let Some((sh, outputs)) = parse_done(&payload) {
                                if slot.busy == Some(sh) {
                                    slot.busy = None;
                                }
                                for out in outputs {
                                    let pos = out.index;
                                    if pos < total && results[pos].is_none() {
                                        results[pos] = Some(out);
                                        filled += 1;
                                    }
                                }
                            }
                        }
                        _ => {}
                    }
                }
                Ok(Wire::Eof { worker, inc }) => {
                    let slot = &mut slots[worker];
                    if inc == slot.inc && !slot.dead && slot.live.is_some() {
                        if !slot.killed {
                            stats.crashes += 1;
                        }
                        self.fail_incarnation(
                            worker, slot, &mut queue, &hello, &tx, &mut stats, seed,
                        );
                    }
                }
                Err(_) => {}
            }
            // Hang check: any live slot owing progress past the timeout.
            for w in 0..slots.len() {
                let hung = {
                    let s = &slots[w];
                    !s.dead
                        && s.live.is_some()
                        && (s.busy.is_some() || !s.ready)
                        && s.last_progress.elapsed() > self.cfg.hang_timeout
                };
                if hung {
                    stats.hangs += 1;
                    slots[w].killed = true;
                    self.fail_incarnation(
                        w,
                        &mut slots[w],
                        &mut queue,
                        &hello,
                        &tx,
                        &mut stats,
                        seed,
                    );
                }
            }
        }
        // Orderly shutdown: ask live workers to flush stats sidecars, then
        // give them a bounded grace period before reaping by force.
        for slot in slots.iter_mut() {
            if let Some(mut inc) = slot.live.take() {
                let _ = write_frame(&mut inc.stdin, "{\"msg\":\"shutdown\"}");
                drop(inc.stdin);
                // treu-lint: allow(wall-clock, reason = "shutdown grace period")
                let patience = Instant::now();
                loop {
                    match inc.child.try_wait() {
                        Ok(Some(_)) => break,
                        Ok(None) if patience.elapsed() < Duration::from_secs(5) => {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        _ => {
                            let _ = inc.child.kill();
                            let _ = inc.child.wait();
                            break;
                        }
                    }
                }
            }
        }
        let outputs: Vec<TaskOutput> =
            results.into_iter().map(|r| r.expect("coordinator filled every task")).collect();
        Ok((outputs, stats))
    }

    /// Kill (if needed) and reap the current incarnation, requeue its
    /// in-flight shard exactly once for this incarnation, then respawn —
    /// or mark the slot dead once the respawn budget is exhausted.
    #[allow(clippy::too_many_arguments)]
    fn fail_incarnation(
        &self,
        w: usize,
        slot: &mut Slot,
        queue: &mut VecDeque<usize>,
        hello: &str,
        tx: &mpsc::Sender<Wire>,
        stats: &mut SvcStats,
        seed: u64,
    ) {
        if let Some(sh) = slot.busy.take() {
            if !slot.requeued {
                slot.requeued = true;
                queue.push_front(sh);
                stats.requeues += 1;
            }
        }
        if let Some(mut inc) = slot.live.take() {
            let _ = inc.child.kill();
            let _ = inc.child.wait();
        }
        self.respawn(w, slot, hello, tx, stats, seed, true);
    }

    /// Spawn (or respawn) a worker into `slot`. Respawns sleep a seeded,
    /// deterministically doubling backoff first; a slot whose budget is
    /// exhausted is marked dead instead.
    #[allow(clippy::too_many_arguments)]
    fn respawn(
        &self,
        w: usize,
        slot: &mut Slot,
        hello: &str,
        tx: &mpsc::Sender<Wire>,
        stats: &mut SvcStats,
        seed: u64,
        is_respawn: bool,
    ) {
        slot.inc += 1;
        slot.ready = false;
        slot.killed = false;
        slot.requeued = false;
        slot.dispatched = 0;
        slot.busy = None;
        if slot.spawned > self.cfg.respawn_budget {
            slot.dead = true;
            return;
        }
        if is_respawn {
            let ms = backoff_millis(slot.spawned, &format!("svc-worker-{w}"), seed);
            std::thread::sleep(Duration::from_millis(ms));
        }
        let mut cmd = match self.worker_command() {
            Ok(cmd) => cmd,
            Err(_) => {
                slot.dead = true;
                return;
            }
        };
        let mut child = match cmd.spawn() {
            Ok(child) => child,
            Err(_) => {
                slot.dead = true;
                return;
            }
        };
        slot.spawned += 1;
        stats.spawned += 1;
        let stdout = child.stdout.take().expect("piped stdout");
        let mut stdin = child.stdin.take().expect("piped stdin");
        if write_frame(&mut stdin, hello).is_err() {
            let _ = child.kill();
            let _ = child.wait();
            self.respawn(w, slot, hello, tx, stats, seed, true);
            return;
        }
        let inc = slot.inc;
        let tx = tx.clone();
        std::thread::spawn(move || {
            let mut reader = io::BufReader::new(stdout);
            loop {
                match read_frame(&mut reader) {
                    Ok(Some(payload)) => {
                        if tx.send(Wire::Frame { worker: w, inc, payload }).is_err() {
                            break;
                        }
                    }
                    _ => {
                        let _ = tx.send(Wire::Eof { worker: w, inc });
                        break;
                    }
                }
            }
        });
        slot.doom = self.cfg.kill_plan.as_ref().and_then(|kp| kp.kill_on_dispatch(w, slot.inc));
        slot.live = Some(Incarnation { child, stdin });
        // treu-lint: allow(wall-clock, reason = "supervision watchdog")
        slot.last_progress = Instant::now();
    }
}

// ---------------------------------------------------------------------------
// High-level entry points (verify / run across the pool)
// ---------------------------------------------------------------------------

fn empty_sched(workers: usize) -> SchedStats {
    SchedStats {
        workers,
        chunk: 0,
        busy_seconds: Vec::new(),
        chunks_claimed: Vec::new(),
        items: Vec::new(),
    }
}

fn policy_deadline_us(policy: &SupervisePolicy) -> u64 {
    policy.deadline.map(|d| d.as_micros() as u64).unwrap_or(0)
}

/// Registry-wide verification across the worker pool. Mirrors
/// [`crate::exec::Executor::verify_all_supervised_with`] exactly: cache
/// lookups, cross-checks, and verdicts happen coordinator-side; workers only
/// compute the two fresh replicas per missed id. The resulting trace is
/// bitwise-identical to the in-process path at every topology.
pub fn verify_all_svc(
    reg: &ExperimentRegistry,
    seed: u64,
    cache: Option<&RunCache>,
    policy: &SupervisePolicy,
    plan: Option<&FaultPlan>,
    params: impl Fn(&str, Params) -> Params,
    cfg: SvcConfig,
) -> io::Result<(VerifyReport, SvcStats)> {
    // treu-lint: allow(wall-clock, reason = "verification timing reported outside the fingerprint")
    let start = Instant::now();
    let tracing = cfg.tracing;
    let jobs_total = cfg.workers * cfg.jobs;
    let ids: Vec<(String, Params)> =
        reg.iter().map(|(id, e)| (id.to_string(), params(id, e.defaults.clone()))).collect();
    let mut traces: Vec<RunTrace> = ids.iter().map(|(id, _)| RunTrace::new(id, seed)).collect();
    // Coordinator-side cache lookups, exactly as the in-process verifier.
    let looked: Vec<Lookup> = ids
        .iter()
        .zip(traces.iter_mut())
        .map(|((id, p), rt)| {
            let found = match cache {
                Some(c) => c.lookup_classified(id, seed, p),
                None => Lookup::Miss,
            };
            if tracing && cache.is_some() {
                rt.push(
                    TraceEvent::Cache { result: crate::exec::cache_result(&found) },
                    start.elapsed().as_secs_f64(),
                );
            }
            found
        })
        .collect();
    let misses: Vec<usize> =
        (0..ids.len()).filter(|&i| !matches!(looked[i], Lookup::Hit(_))).collect();
    // Both replicas of a missed id ship as independent tasks; replica = k % 2
    // preserves the in-process Claim numbering.
    let mut tasks: Vec<TaskSpec> = Vec::with_capacity(misses.len() * 2);
    for (k, mi) in misses.iter().flat_map(|&i| [i, i]).enumerate() {
        let (id, p) = &ids[mi];
        tasks.push(TaskSpec {
            index: k,
            id: id.clone(),
            seed,
            replica: (k % 2) as u32,
            params: p.clone(),
            retries: policy.retries,
            deadline_us: policy_deadline_us(policy),
            cache: false,
        });
    }
    let pool = WorkerPool::new(cfg);
    let (outputs, svc_stats) = pool.run_tasks(reg, tasks, plan, None, seed)?;
    // Rebuild per-replica traces and absorb them in (id, replica) order —
    // identical to the in-process index-ordered merge.
    let recomputed = misses.len();
    let mut fresh = outputs.into_iter();
    let outcomes: Vec<VerifyOutcome> = ids
        .iter()
        .zip(looked)
        .enumerate()
        .map(|(i, ((id, p), found))| match found {
            Lookup::Hit(rec) => {
                let outcome = VerifyOutcome {
                    id: id.clone(),
                    fingerprint: rec.fingerprint(),
                    reproduced: true,
                    cached: true,
                    attempts: 1,
                    healed_corruption: false,
                    failure: None,
                };
                if tracing && cache.is_some() {
                    traces[i].push(
                        TraceEvent::Verdict {
                            reproduced: true,
                            cached: true,
                            attempts: 1,
                            fingerprint: outcome.fingerprint,
                            failure: None,
                        },
                        start.elapsed().as_secs_f64(),
                    );
                }
                outcome
            }
            not_hit => {
                let was_corrupt = matches!(not_hit, Lookup::Corrupt);
                let a = fresh.next().expect("two replicas per miss");
                let b = fresh.next().expect("two replicas per miss");
                for out in [&a, &b] {
                    if tracing {
                        let mut sub = RunTrace::new(id, seed);
                        sub.dropped += out.dropped;
                        for (ev, at) in &out.events {
                            sub.push(ev.clone(), *at);
                        }
                        traces[i].absorb(sub);
                    }
                }
                crate::exec::cross_check(
                    id,
                    seed,
                    p,
                    &[a.outcome, b.outcome],
                    cache,
                    was_corrupt,
                    tracing.then_some((&mut traces[i], start)),
                )
            }
        })
        .collect();
    let wall = start.elapsed().as_secs_f64();
    let trace = crate::exec::batch_trace("verify", seed, traces, jobs_total, wall, &empty_sched(0));
    let counters = trace.counters();
    Ok((
        VerifyReport {
            jobs: jobs_total,
            outcomes,
            wall_seconds: wall,
            recomputed,
            trace,
            counters,
        },
        svc_stats,
    ))
}

/// What [`run_all_svc`] yields: per-experiment outcomes in registry
/// order, the merged batch report, and the service-layer stats.
pub type SvcRunAll = (Vec<(String, RunOutcome)>, ExecReport, SvcStats);

/// Registry-wide run across the worker pool. Workers consult and populate
/// the shared cache directly (atomic temp+rename keeps entries untorn);
/// hit/miss stats land in per-process sidecars the coordinator merges at
/// join, so concurrent writers never tear counts.
pub fn run_all_svc(
    reg: &ExperimentRegistry,
    seed: u64,
    cache: Option<&RunCache>,
    policy: &SupervisePolicy,
    plan: Option<&FaultPlan>,
    mut cfg: SvcConfig,
) -> io::Result<SvcRunAll> {
    // treu-lint: allow(wall-clock, reason = "batch timing reported outside the fingerprint")
    let start = Instant::now();
    if let Some(cache) = cache {
        cfg.cache_dir = Some(cache.dir().to_path_buf());
    }
    let tracing = cfg.tracing;
    let jobs_total = cfg.workers * cfg.jobs;
    let ids: Vec<(String, Params)> =
        reg.iter().map(|(id, e)| (id.to_string(), e.defaults.clone())).collect();
    let tasks: Vec<TaskSpec> = ids
        .iter()
        .enumerate()
        .map(|(i, (id, p))| TaskSpec {
            index: i,
            id: id.clone(),
            seed,
            replica: 0,
            params: p.clone(),
            retries: policy.retries,
            deadline_us: policy_deadline_us(policy),
            cache: cache.is_some(),
        })
        .collect();
    let pool = WorkerPool::new(cfg);
    let (outputs, svc_stats) = pool.run_tasks(reg, tasks, plan, cache, seed)?;
    if let Some(cache) = cache {
        let _ = cache.merge_stats_sidecars();
    }
    let mut traces: Vec<RunTrace> = Vec::with_capacity(ids.len());
    let mut pairs: Vec<(String, RunOutcome)> = Vec::with_capacity(ids.len());
    let mut cached_count = 0usize;
    for (out, (id, _)) in outputs.into_iter().zip(ids.iter()) {
        let mut rt = RunTrace::new(id, seed);
        if tracing {
            rt.dropped += out.dropped;
            for (ev, at) in &out.events {
                rt.push(ev.clone(), *at);
            }
        }
        traces.push(rt);
        if out.cached {
            cached_count += 1;
        }
        pairs.push((id.clone(), out.outcome));
    }
    let failed = pairs.iter().filter(|(_, o)| !matches!(o, RunOutcome::Ok { .. })).count();
    let wall = start.elapsed().as_secs_f64();
    let report = ExecReport::from_labelled(
        jobs_total,
        pairs.iter().filter_map(|(id, o)| o.record().map(|r| (id.clone(), r.wall_seconds))),
        wall,
    )
    .with_cached(cached_count)
    .with_failed(failed)
    .with_trace(crate::exec::batch_trace(
        "run",
        seed,
        traces,
        jobs_total,
        wall,
        &empty_sched(0),
    ));
    Ok((pairs, report, svc_stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Executor;
    use crate::experiment::{Experiment, RunContext};

    struct Echo;
    impl Experiment for Echo {
        fn name(&self) -> &str {
            "echo"
        }
        fn run(&self, ctx: &mut RunContext) {
            let gain = ctx.int("gain", 1);
            let mut rng = ctx.rng("echo");
            for i in 0..4 {
                let draw = rng.next_u64() >> 12;
                ctx.record(&format!("step{i}"), (draw as f64) * gain as f64);
            }
        }
    }

    fn small_registry() -> ExperimentRegistry {
        let mut reg = ExperimentRegistry::new();
        reg.register(
            "alpha",
            "svc::tests",
            "svc test experiment",
            Params::new().with_int("gain", 3),
            Box::new(Echo),
        );
        reg.register(
            "beta",
            "svc::tests",
            "svc test experiment",
            Params::new().with_int("gain", 5),
            Box::new(Echo),
        );
        reg.register("gamma", "svc::tests", "svc test experiment", Params::new(), Box::new(Echo));
        reg
    }

    #[test]
    fn frames_round_trip_and_reject_malformed_input() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "hello world").unwrap();
        write_frame(&mut buf, "").unwrap();
        let mut r = io::BufReader::new(&buf[..]);
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("hello world"));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(""));
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
        let huge = format!("{}\n", MAX_FRAME + 1);
        let mut r = io::BufReader::new(huge.as_bytes());
        assert!(read_frame(&mut r).is_err(), "oversize frame rejected");
        let mut r = io::BufReader::new(&b"notanumber\nxx"[..]);
        assert!(read_frame(&mut r).is_err(), "bad length rejected");
        let mut r = io::BufReader::new(&b"10\nshort"[..]);
        assert!(read_frame(&mut r).is_err(), "truncated payload rejected");
    }

    #[test]
    fn fault_plan_wire_round_trip_is_bitwise() {
        let plan = FaultPlan::with_menu(
            0xfeed,
            0.35,
            vec![
                FaultKind::Panic,
                FaultKind::Delay(40),
                FaultKind::CorruptTrail,
                FaultKind::TransientErr(2),
            ],
        )
        .and_panic_on("bad:colon\ttab")
        .and_panic_on("worse");
        let back = decode_plan(&encode_plan(&plan)).expect("decodes");
        assert_eq!(back.fingerprint(), plan.fingerprint());
        // Per-attempt faults must agree everywhere, not just the fingerprint.
        for attempt in 0..4 {
            assert_eq!(
                format!("{:?}", back.fault_at("probe", 99, attempt)),
                format!("{:?}", plan.fault_at("probe", 99, attempt))
            );
        }
        assert!(decode_plan("zz:0:p:").is_none(), "bad seed rejected");
    }

    #[test]
    fn shard_and_done_frames_round_trip() {
        let tasks = vec![
            TaskSpec {
                index: 0,
                id: "we\"ird\tid".into(),
                seed: 42,
                replica: 1,
                params: Params::new()
                    .with_int("n", -3)
                    .with_float("x", 0.1 + 0.2)
                    .with_text("label", "tab\there")
                    .with_bool("flag", true),
                retries: 2,
                deadline_us: 1_500_000,
                cache: true,
            },
            TaskSpec {
                index: 1,
                id: "plain".into(),
                seed: 43,
                replica: 0,
                params: Params::new(),
                retries: 0,
                deadline_us: 0,
                cache: false,
            },
        ];
        let (shard, parsed) = parse_shard(&render_shard(3, &tasks)).expect("parses");
        assert_eq!(shard, 3);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].id, tasks[0].id);
        assert_eq!(parsed[0].deadline_us, 1_500_000);
        assert!(parsed[0].cache && !parsed[1].cache);
        let canon = |p: &Params| {
            let mut kv: Vec<String> = p.iter().map(|(k, v)| format!("{k}={v}")).collect();
            kv.sort();
            kv.join(",")
        };
        assert_eq!(canon(&parsed[0].params), canon(&tasks[0].params));

        let reg = small_registry();
        // treu-lint: allow(wall-clock, reason = "test epoch for unhashed timestamps")
        let epoch = Instant::now();
        let spec = TaskSpec {
            index: 0,
            id: "alpha".into(),
            seed: 9,
            replica: 1,
            params: reg.get("alpha").unwrap().defaults.clone(),
            retries: 0,
            deadline_us: 0,
            cache: false,
        };
        let out = execute_task(&reg, &spec, None, None, true, epoch);
        let failed = TaskOutput {
            index: 1,
            outcome: RunOutcome::Failed(RunFailure {
                taxonomy: FailureKind::TimedOut,
                attempts: 3,
                last_error: "slow\tand\"bad".into(),
            }),
            cached: false,
            dropped: 2,
            events: Vec::new(),
        };
        let (shard, parsed) = parse_done(&render_done(5, &[out.clone(), failed])).expect("parses");
        assert_eq!(shard, 5);
        assert_eq!(parsed.len(), 2);
        let (
            RunOutcome::Ok { record: ra, attempts: aa },
            RunOutcome::Ok { record: rb, attempts: ab },
        ) = (&out.outcome, &parsed[0].outcome)
        else {
            panic!("ok outcome survives the wire");
        };
        assert_eq!(aa, ab);
        assert_eq!(ra.fingerprint(), rb.fingerprint(), "trail survives bitwise");
        assert_eq!(out.events.len(), parsed[0].events.len());
        assert!(!out.events.is_empty(), "traced execution produced events");
        for ((ea, ta), (eb, tb)) in out.events.iter().zip(parsed[0].events.iter()) {
            assert_eq!(ea.render_json(), eb.render_json());
            assert_eq!(ta.to_bits(), tb.to_bits());
        }
        match &parsed[1].outcome {
            RunOutcome::Failed(f) => {
                assert_eq!(f.taxonomy.name(), "TimedOut");
                assert_eq!(f.attempts, 3);
                assert_eq!(f.last_error, "slow\tand\"bad");
            }
            _ => panic!("failure survives the wire"),
        }
        assert_eq!(parsed[1].dropped, 2);
    }

    #[test]
    fn worker_loop_in_memory_matches_direct_execution() {
        let reg = small_registry();
        let mut inbox = Vec::new();
        write_frame(
            &mut inbox,
            &format!("{{\"msg\":\"hello\",\"proto\":{PROTO_VERSION},\"jobs\":2,\"tracing\":true}}"),
        )
        .unwrap();
        let tasks: Vec<TaskSpec> = ["alpha", "beta", "gamma"]
            .iter()
            .enumerate()
            .map(|(i, id)| TaskSpec {
                index: i,
                id: (*id).to_string(),
                seed: 17,
                replica: (i % 2) as u32,
                params: reg.get(id).unwrap().defaults.clone(),
                retries: 1,
                deadline_us: 0,
                cache: false,
            })
            .collect();
        write_frame(&mut inbox, &render_shard(0, &tasks)).unwrap();
        write_frame(&mut inbox, "{\"msg\":\"shutdown\"}").unwrap();
        let mut outbox = Vec::new();
        worker_loop(&reg, io::BufReader::new(&inbox[..]), &mut outbox).unwrap();
        let mut r = io::BufReader::new(&outbox[..]);
        let ready = read_frame(&mut r).unwrap().expect("ready frame");
        assert_eq!(jfield(&ready, "msg"), Some("ready"));
        let mut done = None;
        let mut beats = 0;
        let mut bye = false;
        while let Some(frame) = read_frame(&mut r).unwrap() {
            match jfield(&frame, "msg") {
                Some("beat") => beats += 1,
                Some("done") => done = Some(frame),
                Some("bye") => bye = true,
                other => panic!("unexpected frame {other:?}"),
            }
        }
        assert!(bye, "worker acknowledges shutdown");
        assert_eq!(beats, 3, "one heartbeat per completed task");
        let (shard, outputs) = parse_done(&done.expect("done frame")).expect("parses");
        assert_eq!(shard, 0);
        assert_eq!(outputs.len(), 3);
        // Parity with direct in-process execution: fingerprints and events.
        // treu-lint: allow(wall-clock, reason = "test epoch for unhashed timestamps")
        let epoch = Instant::now();
        for (t, out) in tasks.iter().zip(outputs.iter()) {
            let direct = execute_task(&reg, t, None, None, true, epoch);
            let (RunOutcome::Ok { record: a, .. }, RunOutcome::Ok { record: b, .. }) =
                (&direct.outcome, &out.outcome)
            else {
                panic!("both succeed");
            };
            assert_eq!(a.fingerprint(), b.fingerprint());
            assert_eq!(direct.events.len(), out.events.len());
            for ((ea, _), (eb, _)) in direct.events.iter().zip(out.events.iter()) {
                assert_eq!(ea.render_json(), eb.render_json());
            }
        }
    }

    #[test]
    fn worker_rejects_protocol_mismatch() {
        let reg = small_registry();
        let mut inbox = Vec::new();
        write_frame(&mut inbox, "{\"msg\":\"hello\",\"proto\":999,\"jobs\":1,\"tracing\":false}")
            .unwrap();
        let mut outbox = Vec::new();
        let err = worker_loop(&reg, io::BufReader::new(&inbox[..]), &mut outbox).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn instantly_dying_workers_degrade_to_in_process_with_identical_results() {
        let reg = small_registry();
        let seed = 23;
        // /bin/true exits immediately: every incarnation EOFs before ready,
        // the respawn budget burns down, and the coordinator finishes the
        // whole registry in-process.
        assert!(Path::new("/bin/true").exists(), "test needs /bin/true");
        let cfg = SvcConfig::new(2)
            .with_jobs(2)
            .with_tracing(true)
            .with_respawn_budget(1)
            .with_hang_timeout(Duration::from_millis(200))
            .with_worker_cmd(vec!["/bin/true".into()]);
        let policy = SupervisePolicy::new(1);
        let (report, stats) =
            verify_all_svc(&reg, seed, None, &policy, None, |_, p| p, cfg).unwrap();
        assert!(stats.degraded, "budget exhaustion must degrade, not abort");
        assert!(stats.crashes > 0);
        assert!(stats.degraded_tasks > 0);
        assert!(report.all_reproduced());
        // Bitwise parity with the plain in-process verifier.
        let exec = Executor::new(2).with_tracing(true);
        let baseline = exec.verify_all_supervised_with(&reg, seed, None, &policy, None, |_, p| p);
        assert_eq!(report.outcomes.len(), baseline.outcomes.len());
        for (a, b) in report.outcomes.iter().zip(baseline.outcomes.iter()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.fingerprint, b.fingerprint, "fingerprint parity for {}", a.id);
        }
        assert_eq!(
            report.trace.content_hash(),
            baseline.trace.content_hash(),
            "trace address parity"
        );
        assert_eq!(report.trace.file_name(), baseline.trace.file_name());
    }

    #[test]
    fn hung_workers_are_detected_and_the_registry_still_completes() {
        let reg = small_registry();
        assert!(Path::new("/bin/sleep").exists(), "test needs /bin/sleep");
        // /bin/sleep never speaks the protocol: the no-progress watchdog
        // fires, budget 0 means one incarnation per slot, then degradation.
        let cfg = SvcConfig::new(1)
            .with_tracing(true)
            .with_respawn_budget(0)
            .with_hang_timeout(Duration::from_millis(120))
            .with_worker_cmd(vec!["/bin/sleep".into(), "60".into()]);
        let policy = SupervisePolicy::new(0);
        let (report, stats) = verify_all_svc(&reg, 5, None, &policy, None, |_, p| p, cfg).unwrap();
        assert!(stats.hangs >= 1, "watchdog must fire");
        assert!(stats.degraded);
        assert!(report.all_reproduced());
    }

    #[test]
    fn degraded_run_mode_matches_in_process_fingerprints() {
        let reg = small_registry();
        let cfg = SvcConfig::new(2)
            .with_tracing(true)
            .with_respawn_budget(0)
            .with_hang_timeout(Duration::from_millis(150))
            .with_worker_cmd(vec!["/bin/true".into()]);
        let policy = SupervisePolicy::new(0);
        let (runs, report, stats) = run_all_svc(&reg, 31, None, &policy, None, cfg).unwrap();
        assert!(stats.degraded);
        assert_eq!(runs.len(), reg.len());
        assert_eq!(report.failed_runs, 0);
        let exec = Executor::new(2).with_tracing(true);
        let (base, base_report) = exec.run_all_supervised(&reg, 31, &policy, None);
        for ((id_a, out_a), (id_b, out_b)) in runs.iter().zip(base.iter()) {
            assert_eq!(id_a, id_b);
            let (RunOutcome::Ok { record: a, .. }, RunOutcome::Ok { record: b, .. }) =
                (out_a, out_b)
            else {
                panic!("both paths succeed");
            };
            assert_eq!(a.fingerprint(), b.fingerprint());
        }
        assert_eq!(
            report.trace.content_hash(),
            base_report.trace.content_hash(),
            "run-mode trace parity under degradation"
        );
    }
}
