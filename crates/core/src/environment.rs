//! Host environment capture.
//!
//! "Results are reproducible only when the exact setup conditions are
//! obeyed" — the paper's phrasing of why environment disclosure matters.
//! [`Environment::capture`] snapshots the parts of the setup the seed does
//! not control (OS, architecture, thread count, selected environment
//! variables) so a [`crate::RunRecord`] can be interpreted later. Two
//! captures can be diffed to explain why a numerically identical rerun was
//! or was not expected.

use std::collections::BTreeMap;

/// A snapshot of the execution environment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Environment {
    /// Operating system family (`std::env::consts::OS`).
    pub os: String,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub arch: String,
    /// Hardware threads available to the process.
    pub threads: usize,
    /// Package version of `treu-core` that captured the snapshot.
    pub harness_version: String,
    /// Selected environment variables (sorted map; only those named in
    /// `capture_with_vars` are included, to keep snapshots reviewable).
    pub vars: BTreeMap<String, String>,
}

impl Environment {
    /// Captures the current environment with no extra variables.
    pub fn capture() -> Self {
        Self::capture_with_vars(&[])
    }

    /// Captures the current environment plus the named variables (missing
    /// ones are recorded as absent by omission).
    pub fn capture_with_vars(var_names: &[&str]) -> Self {
        let mut vars = BTreeMap::new();
        for name in var_names {
            if let Ok(v) = std::env::var(name) {
                vars.insert((*name).to_string(), v);
            }
        }
        Self {
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            harness_version: env!("CARGO_PKG_VERSION").to_string(),
            vars,
        }
    }

    /// Stable fingerprint of the snapshot (FNV-1a over the canonical
    /// rendering).
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in self.render().bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Canonical plain-text rendering.
    pub fn render(&self) -> String {
        let mut s = format!(
            "os={} arch={} threads={} harness={}\n",
            self.os, self.arch, self.threads, self.harness_version
        );
        for (k, v) in &self.vars {
            s.push_str(&format!("var {k}={v}\n"));
        }
        s
    }

    /// Lists the fields on which two environments differ, as
    /// human-readable `field: a -> b` strings. Empty when identical.
    pub fn diff(&self, other: &Environment) -> Vec<String> {
        let mut out = Vec::new();
        if self.os != other.os {
            out.push(format!("os: {} -> {}", self.os, other.os));
        }
        if self.arch != other.arch {
            out.push(format!("arch: {} -> {}", self.arch, other.arch));
        }
        if self.threads != other.threads {
            out.push(format!("threads: {} -> {}", self.threads, other.threads));
        }
        if self.harness_version != other.harness_version {
            out.push(format!("harness: {} -> {}", self.harness_version, other.harness_version));
        }
        let keys: std::collections::BTreeSet<&String> =
            self.vars.keys().chain(other.vars.keys()).collect();
        for k in keys {
            let a = self.vars.get(k);
            let b = other.vars.get(k);
            if a != b {
                out.push(format!(
                    "var {k}: {} -> {}",
                    a.map_or("<unset>", |s| s.as_str()),
                    b.map_or("<unset>", |s| s.as_str())
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_is_selfconsistent() {
        let e = Environment::capture();
        assert!(!e.os.is_empty());
        assert!(!e.arch.is_empty());
        assert!(e.threads >= 1);
        assert_eq!(e.fingerprint(), Environment::capture().fingerprint());
    }

    #[test]
    fn diff_empty_for_identical() {
        let e = Environment::capture();
        assert!(e.diff(&e.clone()).is_empty());
    }

    #[test]
    fn diff_reports_changed_fields() {
        let a = Environment::capture();
        let mut b = a.clone();
        b.threads += 1;
        b.vars.insert("ONLY_IN_B".into(), "1".into());
        let d = a.diff(&b);
        assert_eq!(d.len(), 2);
        assert!(d.iter().any(|s| s.starts_with("threads:")));
        assert!(d.iter().any(|s| s.contains("ONLY_IN_B") && s.contains("<unset>")));
    }

    #[test]
    fn fingerprint_changes_with_vars() {
        let a = Environment::capture();
        let mut b = a.clone();
        b.vars.insert("X".into(), "1".into());
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn capture_with_known_var() {
        // PATH exists in any sane test environment.
        let e = Environment::capture_with_vars(&["PATH", "TREU_DOES_NOT_EXIST_12345"]);
        assert!(e.vars.contains_key("PATH"));
        assert!(!e.vars.contains_key("TREU_DOES_NOT_EXIST_12345"));
    }

    #[test]
    fn render_mentions_os_and_vars() {
        let mut e = Environment::capture();
        e.vars.insert("K".into(), "V".into());
        let r = e.render();
        assert!(r.contains(&format!("os={}", std::env::consts::OS)));
        assert!(r.contains("var K=V"));
    }
}
