//! Harnessed experiment E2.4: the controlled shape-vs-semantics comparison.

use crate::classify::KnnClassifier;
use crate::features::{combined_features, default_landmarks, landmark_features};
use crate::generate::{generate_dataset, PoiMap, Trajectory};
use treu_core::experiment::{Experiment, Params, RunContext};
use treu_core::ExperimentRegistry;
use treu_math::rng::{derive_seed, SplitMix64};

/// Result of one comparison run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComparisonResult {
    /// Test accuracy of the shape-only framework.
    pub shape_accuracy: f64,
    /// Test accuracy with semantic features added.
    pub semantic_accuracy: f64,
}

/// Runs the controlled experiment once: generate train/test sets, fit the
/// two feature pipelines, compare test accuracy.
pub fn compare(
    n_train_per_class: usize,
    n_test_per_class: usize,
    steps: usize,
    seed: u64,
) -> ComparisonResult {
    let map = PoiMap::standard();
    let landmarks = default_landmarks();
    let mut rng = SplitMix64::new(derive_seed(seed, "train"));
    let train = generate_dataset(n_train_per_class, steps, &map, &mut rng);
    let mut rng = SplitMix64::new(derive_seed(seed, "test"));
    let test = generate_dataset(n_test_per_class, steps, &map, &mut rng);

    let featurize = |ts: &[Trajectory], semantic: bool| -> (Vec<Vec<f64>>, Vec<usize>) {
        let xs = ts
            .iter()
            .map(|t| {
                if semantic {
                    combined_features(t, &landmarks, &map, 3.0)
                } else {
                    landmark_features(t, &landmarks)
                }
            })
            .collect();
        let ys = ts.iter().map(|t| t.class.label()).collect();
        (xs, ys)
    };

    let (sx, sy) = featurize(&train, false);
    let (tx, ty) = featurize(&test, false);
    let shape = KnnClassifier::fit(3, &sx, &sy).accuracy(&tx, &ty);

    let (sx, sy) = featurize(&train, true);
    let (tx, ty) = featurize(&test, true);
    let semantic = KnnClassifier::fit(3, &sx, &sy).accuracy(&tx, &ty);

    ComparisonResult { shape_accuracy: shape, semantic_accuracy: semantic }
}

/// E2.4: averaged comparison plus the class-pair confusion structure.
pub struct TrajectoryExperiment;

impl Experiment for TrajectoryExperiment {
    fn name(&self) -> &str {
        "traj/semantics"
    }

    fn run(&self, ctx: &mut RunContext) {
        let trials = ctx.int("trials", 3) as u64;
        let n_train = ctx.int("train_per_class", 12) as usize;
        let n_test = ctx.int("test_per_class", 6) as usize;
        let steps = ctx.int("steps", 150) as usize;
        let (mut shape, mut semantic) = (0.0, 0.0);
        for t in 0..trials {
            let r = compare(n_train, n_test, steps, derive_seed(ctx.seed(), &format!("t{t}")));
            shape += r.shape_accuracy;
            semantic += r.semantic_accuracy;
        }
        let k = trials as f64;
        ctx.record("shape_accuracy", shape / k);
        ctx.record("semantic_accuracy", semantic / k);
        ctx.record("improvement", (semantic - shape) / k);
    }
}

/// Registers E2.4.
pub fn register(reg: &mut ExperimentRegistry) {
    reg.register(
        "E2.4",
        "Section 2.4",
        "trajectory classification: shape-only vs shape+semantics",
        Params::new().with_int("trials", 3),
        Box::new(TrajectoryExperiment),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use treu_core::experiment::{assert_deterministic, run_once};

    #[test]
    fn semantics_give_clear_improvement() {
        let r = compare(12, 6, 150, 1);
        // Shape-only is stuck confusing the two pairs: at best ~0.5-0.7.
        assert!(r.shape_accuracy < 0.8, "shape acc {}", r.shape_accuracy);
        // Semantics resolve them.
        assert!(r.semantic_accuracy > 0.85, "semantic acc {}", r.semantic_accuracy);
        assert!(
            r.semantic_accuracy > r.shape_accuracy + 0.15,
            "clear improvement required: {} -> {}",
            r.shape_accuracy,
            r.semantic_accuracy
        );
    }

    #[test]
    fn shape_only_still_beats_chance() {
        // Shape separates the loop from the road (2 super-classes), so it
        // should sit well above 25% chance.
        let r = compare(12, 6, 150, 2);
        assert!(r.shape_accuracy > 0.4, "shape acc {}", r.shape_accuracy);
    }

    #[test]
    fn experiment_records_improvement() {
        let rec = run_once(&TrajectoryExperiment, 3, Params::new().with_int("trials", 2));
        assert!(rec.metric("improvement").unwrap() > 0.1);
    }

    #[test]
    fn experiment_is_deterministic() {
        assert_deterministic(
            &TrajectoryExperiment,
            5,
            &Params::new().with_int("trials", 1).with_int("train_per_class", 6),
        );
    }

    #[test]
    fn registry_id() {
        let mut reg = ExperimentRegistry::new();
        register(&mut reg);
        assert!(reg.get("E2.4").is_some());
    }
}
