//! k-nearest-neighbour classification over feature vectors.
//!
//! The trajectory framework reduces classification to vectors, so any
//! classifier applies; k-NN keeps the experiment about the *features*
//! (shape vs shape+semantics) rather than about model capacity. Features
//! are z-score standardized per dimension so landmark distances (tens of
//! units) cannot drown semantic fractions (~1).

/// A fitted k-NN classifier with per-dimension standardization.
#[derive(Debug, Clone)]
pub struct KnnClassifier {
    k: usize,
    train: Vec<Vec<f64>>,
    labels: Vec<usize>,
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl KnnClassifier {
    /// Fits the classifier (memorizes standardized training vectors).
    ///
    /// # Panics
    ///
    /// Panics if inputs are empty, ragged, or `k == 0`.
    pub fn fit(k: usize, xs: &[Vec<f64>], ys: &[usize]) -> Self {
        assert!(k > 0, "k must be positive");
        assert!(!xs.is_empty(), "empty training set");
        assert_eq!(xs.len(), ys.len(), "label count mismatch");
        let d = xs[0].len();
        assert!(xs.iter().all(|x| x.len() == d), "ragged feature vectors");
        let n = xs.len() as f64;
        let mut mean = vec![0.0; d];
        for x in xs {
            for (m, v) in mean.iter_mut().zip(x) {
                *m += v / n;
            }
        }
        let mut std = vec![0.0; d];
        for x in xs {
            for j in 0..d {
                std[j] += (x[j] - mean[j]).powi(2) / n;
            }
        }
        for s in &mut std {
            *s = s.sqrt().max(1e-9);
        }
        let train = xs
            .iter()
            .map(|x| x.iter().zip(&mean).zip(&std).map(|((v, m), s)| (v - m) / s).collect())
            .collect();
        Self { k, train, labels: ys.to_vec(), mean, std }
    }

    /// Predicts the label of one feature vector by majority vote among the
    /// `k` nearest standardized training vectors (ties to the smallest
    /// label).
    pub fn predict(&self, x: &[f64]) -> usize {
        assert_eq!(x.len(), self.mean.len(), "feature arity mismatch");
        let z: Vec<f64> =
            x.iter().zip(&self.mean).zip(&self.std).map(|((v, m), s)| (v - m) / s).collect();
        let mut dists: Vec<(f64, usize)> = self
            .train
            .iter()
            .zip(&self.labels)
            .map(|(t, &y)| (treu_math::vector::distance(t, &z), y))
            .collect();
        dists.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN distance"));
        let mut votes = std::collections::BTreeMap::new();
        for (_, y) in dists.iter().take(self.k) {
            *votes.entry(*y).or_insert(0usize) += 1;
        }
        votes
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .map(|(y, _)| y)
            .expect("non-empty votes")
    }

    /// Accuracy over a labelled set.
    pub fn accuracy(&self, xs: &[Vec<f64>], ys: &[usize]) -> f64 {
        assert_eq!(xs.len(), ys.len(), "label count mismatch");
        if xs.is_empty() {
            return 0.0;
        }
        let correct = xs.iter().zip(ys).filter(|(x, &y)| self.predict(x) == y).count();
        correct as f64 / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> (Vec<Vec<f64>>, Vec<usize>) {
        (vec![vec![0.0, 0.0], vec![0.1, 0.1], vec![5.0, 5.0], vec![5.1, 4.9]], vec![0, 0, 1, 1])
    }

    #[test]
    fn knn_separates_clusters() {
        let (xs, ys) = toy();
        let knn = KnnClassifier::fit(1, &xs, &ys);
        assert_eq!(knn.predict(&[0.05, 0.0]), 0);
        assert_eq!(knn.predict(&[4.9, 5.0]), 1);
        assert_eq!(knn.accuracy(&xs, &ys), 1.0);
    }

    #[test]
    fn standardization_balances_scales() {
        // Dimension 0 is huge but uninformative; dimension 1 separates.
        let xs = vec![vec![1000.0, 0.0], vec![-1000.0, 0.1], vec![1000.0, 1.0], vec![-1000.0, 0.9]];
        let ys = vec![0, 0, 1, 1];
        let knn = KnnClassifier::fit(1, &xs, &ys);
        assert_eq!(knn.predict(&[0.0, 0.05]), 0);
        assert_eq!(knn.predict(&[0.0, 0.95]), 1);
    }

    #[test]
    fn k_majority_voting() {
        let xs = vec![vec![0.0], vec![0.2], vec![0.4], vec![10.0]];
        let ys = vec![0, 0, 0, 1];
        let knn = KnnClassifier::fit(3, &xs, &ys);
        // Nearest three to 0.3 are all class 0.
        assert_eq!(knn.predict(&[0.3]), 0);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let (xs, ys) = toy();
        KnnClassifier::fit(0, &xs, &ys);
    }

    #[test]
    #[should_panic(expected = "feature arity mismatch")]
    fn wrong_arity_panics() {
        let (xs, ys) = toy();
        KnnClassifier::fit(1, &xs, &ys).predict(&[1.0]);
    }

    #[test]
    fn constant_dimension_does_not_nan() {
        let xs = vec![vec![1.0, 0.0], vec![1.0, 1.0]];
        let ys = vec![0, 1];
        let knn = KnnClassifier::fit(1, &xs, &ys);
        assert_eq!(knn.predict(&[1.0, 0.1]), 0);
    }
}
