//! `treu-traj` — semantic classification of spatial trajectories
//! (paper §2.4).
//!
//! The project: reproduce "a recent framework for classifying spatial
//! trajectories (e.g., a series of GPS way points)", then "extend the
//! method which only treated spatial trajectories as shapes to also include
//! semantic information about various spatial points of interest" and
//! "demonstrate clear improvement in a controlled experiment".
//!
//! The shape-only framework is the landmark feature map: a trajectory
//! becomes the vector of its minimum distances to a fixed set of landmark
//! points, after which any vector classifier applies
//! ([`features::landmark_features`]). The semantic extension appends
//! dwell-time features around typed points of interest
//! ([`features::semantic_features`]).
//!
//! The controlled experiment ([`experiment`]) generates classes that are
//! **geometrically confusable by construction** — tourists and commuters
//! walk the same loop; cars and buses drive the same road — and differ only
//! in where they dwell. Shape features top out near 50% on the confusable
//! pairs; adding semantics resolves them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classify;
pub mod experiment;
pub mod features;
pub mod generate;

pub use classify::KnnClassifier;
pub use generate::{PoiKind, PoiMap, Trajectory, TrajectoryClass};
