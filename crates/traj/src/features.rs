//! Feature maps: the shape-only landmark framework and its semantic
//! extension.

use crate::generate::{PoiKind, PoiMap, Point, Trajectory};

/// The landmark set used by the shape-only framework: a deterministic grid
/// over the city, mirroring the landmark-based distance feature maps of
/// the trajectory-classification literature.
pub fn default_landmarks() -> Vec<Point> {
    let mut out = Vec::new();
    for gx in 0..4 {
        for gy in 0..4 {
            out.push(Point { x: 12.5 + 25.0 * gx as f64, y: 12.5 + 25.0 * gy as f64 });
        }
    }
    out
}

/// Shape-only features: for each landmark, the minimum distance from the
/// trajectory to it. Treats the trajectory purely as a set of points in
/// the plane — "only treated spatial trajectories as shapes".
pub fn landmark_features(t: &Trajectory, landmarks: &[Point]) -> Vec<f64> {
    landmarks
        .iter()
        .map(|lm| t.points.iter().map(|p| p.distance(*lm)).fold(f64::INFINITY, f64::min))
        .collect()
}

/// Semantic features: per POI kind, the fraction of waypoints dwelling
/// within `radius` of a POI of that kind, plus two kinematic summaries
/// (mean step speed and stop fraction).
pub fn semantic_features(t: &Trajectory, map: &PoiMap, radius: f64) -> Vec<f64> {
    let n = t.points.len().max(1) as f64;
    let mut out: Vec<f64> = PoiKind::all()
        .iter()
        .map(|&kind| {
            let pois = map.of_kind(kind);
            let near = t
                .points
                .iter()
                .filter(|p| pois.iter().any(|poi| poi.at.distance(**p) < radius))
                .count();
            near as f64 / n
        })
        .collect();
    // Kinematics.
    let mut speed_sum = 0.0;
    let mut stops = 0usize;
    for w in t.points.windows(2) {
        let v = w[0].distance(w[1]);
        speed_sum += v;
        if v < 0.3 {
            stops += 1;
        }
    }
    let segs = (t.points.len().saturating_sub(1)).max(1) as f64;
    out.push(speed_sum / segs);
    out.push(stops as f64 / segs);
    out
}

/// The extended framework: shape features followed by semantic features.
pub fn combined_features(
    t: &Trajectory,
    landmarks: &[Point],
    map: &PoiMap,
    radius: f64,
) -> Vec<f64> {
    let mut f = landmark_features(t, landmarks);
    f.extend(semantic_features(t, map, radius));
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_trajectory, TrajectoryClass};
    use treu_math::rng::SplitMix64;

    #[test]
    fn landmark_grid_covers_city() {
        let lms = default_landmarks();
        assert_eq!(lms.len(), 16);
        assert!(lms.iter().all(|p| (0.0..=100.0).contains(&p.x) && (0.0..=100.0).contains(&p.y)));
    }

    #[test]
    fn landmark_features_are_min_distances() {
        let t = Trajectory {
            points: vec![Point { x: 0.0, y: 0.0 }, Point { x: 10.0, y: 0.0 }],
            class: TrajectoryClass::Car,
        };
        let f = landmark_features(&t, &[Point { x: 10.0, y: 5.0 }]);
        assert_eq!(f, vec![5.0]);
    }

    #[test]
    fn semantic_features_have_fixed_arity() {
        let map = PoiMap::standard();
        let mut rng = SplitMix64::new(1);
        let t = generate_trajectory(TrajectoryClass::Bus, &map, 80, &mut rng);
        let f = semantic_features(&t, &map, 3.0);
        assert_eq!(f.len(), 6); // 4 POI kinds + speed + stop fraction
        assert!(f.iter().all(|&v| v >= 0.0 && v.is_finite()));
        // Dwell fractions are fractions.
        assert!(f[..4].iter().all(|&v| v <= 1.0));
    }

    #[test]
    fn tourists_and_commuters_differ_semantically_not_geometrically() {
        let map = PoiMap::standard();
        let lms = default_landmarks();
        let mut rng = SplitMix64::new(2);
        let mut shape_gap = 0.0;
        let mut sem_gap = 0.0;
        for _ in 0..5 {
            let a = generate_trajectory(TrajectoryClass::Tourist, &map, 150, &mut rng);
            let b = generate_trajectory(TrajectoryClass::Commuter, &map, 150, &mut rng);
            shape_gap += treu_math::vector::distance(
                &landmark_features(&a, &lms),
                &landmark_features(&b, &lms),
            );
            sem_gap += treu_math::vector::distance(
                &semantic_features(&a, &map, 3.0),
                &semantic_features(&b, &map, 3.0),
            );
        }
        // Normalize by typical feature magnitudes: shape features are tens
        // of units, semantic fractions are ~1. Compare *relative* gaps.
        let shape_rel = shape_gap / 5.0 / 30.0;
        let sem_rel = sem_gap / 5.0 / 0.5;
        assert!(
            sem_rel > shape_rel,
            "semantic separation ({sem_rel}) must exceed shape separation ({shape_rel})"
        );
    }

    #[test]
    fn cars_are_faster_than_tourists() {
        let map = PoiMap::standard();
        let mut rng = SplitMix64::new(3);
        let car = generate_trajectory(TrajectoryClass::Car, &map, 100, &mut rng);
        let tourist = generate_trajectory(TrajectoryClass::Tourist, &map, 100, &mut rng);
        let speed = |t: &Trajectory| semantic_features(t, &map, 3.0)[4];
        assert!(speed(&car) > speed(&tourist));
    }

    #[test]
    fn combined_concatenates() {
        let map = PoiMap::standard();
        let lms = default_landmarks();
        let mut rng = SplitMix64::new(4);
        let t = generate_trajectory(TrajectoryClass::Car, &map, 60, &mut rng);
        let c = combined_features(&t, &lms, &map, 3.0);
        assert_eq!(c.len(), 16 + 6);
        assert_eq!(&c[..16], landmark_features(&t, &lms).as_slice());
    }
}
