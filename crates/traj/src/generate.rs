//! Synthetic GPS trajectories over a semantic map.
//!
//! The map is a 100×100 unit city with typed points of interest. Four
//! trajectory classes move through it; the generator is constructed so two
//! pairs of classes share geometry and differ only semantically:
//!
//! * [`TrajectoryClass::Tourist`] and [`TrajectoryClass::Commuter`] both
//!   walk the *park loop*; tourists dwell at parks and shops, commuters at
//!   bus stops.
//! * [`TrajectoryClass::Car`] and [`TrajectoryClass::Bus`] both drive the
//!   *main road*; cars dwell near parking, buses stop at bus stops.

use treu_math::rng::SplitMix64;

/// A 2-D waypoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// East coordinate.
    pub x: f64,
    /// North coordinate.
    pub y: f64,
}

impl Point {
    /// Euclidean distance.
    pub fn distance(self, other: Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// Semantic category of a point of interest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PoiKind {
    /// Green space.
    Park,
    /// Retail.
    Shop,
    /// Transit stop.
    BusStop,
    /// Parking structure.
    Parking,
}

impl PoiKind {
    /// All kinds, in feature order.
    pub fn all() -> [PoiKind; 4] {
        [PoiKind::Park, PoiKind::Shop, PoiKind::BusStop, PoiKind::Parking]
    }
}

/// A typed point of interest.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poi {
    /// Location.
    pub at: Point,
    /// Category.
    pub kind: PoiKind,
}

/// The city's POI map.
#[derive(Debug, Clone, PartialEq)]
pub struct PoiMap {
    /// All POIs.
    pub pois: Vec<Poi>,
}

impl PoiMap {
    /// The standard map: parks and shops along the park loop, bus stops
    /// and parking along the main road (plus bus stops near the loop for
    /// commuters).
    pub fn standard() -> Self {
        let p = |x, y, kind| Poi { at: Point { x, y }, kind };
        Self {
            pois: vec![
                // Park loop neighbourhood (upper-left quadrant).
                p(20.0, 70.0, PoiKind::Park),
                p(30.0, 80.0, PoiKind::Park),
                p(25.0, 60.0, PoiKind::Shop),
                p(35.0, 72.0, PoiKind::Shop),
                p(15.0, 65.0, PoiKind::BusStop),
                p(32.0, 64.0, PoiKind::BusStop),
                // Main road (y = 20 corridor).
                p(10.0, 20.0, PoiKind::BusStop),
                p(40.0, 20.0, PoiKind::BusStop),
                p(70.0, 20.0, PoiKind::BusStop),
                p(25.0, 18.0, PoiKind::Parking),
                p(55.0, 22.0, PoiKind::Parking),
                p(85.0, 18.0, PoiKind::Parking),
            ],
        }
    }

    /// POIs of one kind.
    pub fn of_kind(&self, kind: PoiKind) -> Vec<&Poi> {
        self.pois.iter().filter(|p| p.kind == kind).collect()
    }
}

/// Ground-truth trajectory class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrajectoryClass {
    /// Walks the park loop, dwells at parks/shops.
    Tourist,
    /// Walks the same park loop, dwells at bus stops.
    Commuter,
    /// Drives the main road, dwells at parking.
    Car,
    /// Drives the same road, dwells at bus stops.
    Bus,
}

impl TrajectoryClass {
    /// All classes, in label order.
    pub fn all() -> [TrajectoryClass; 4] {
        [
            TrajectoryClass::Tourist,
            TrajectoryClass::Commuter,
            TrajectoryClass::Car,
            TrajectoryClass::Bus,
        ]
    }

    /// Numeric label.
    pub fn label(self) -> usize {
        match self {
            TrajectoryClass::Tourist => 0,
            TrajectoryClass::Commuter => 1,
            TrajectoryClass::Car => 2,
            TrajectoryClass::Bus => 3,
        }
    }

    /// The kinds this class dwells near.
    fn dwell_kinds(self) -> &'static [PoiKind] {
        match self {
            TrajectoryClass::Tourist => &[PoiKind::Park, PoiKind::Shop],
            TrajectoryClass::Commuter => &[PoiKind::BusStop],
            TrajectoryClass::Car => &[PoiKind::Parking],
            TrajectoryClass::Bus => &[PoiKind::BusStop],
        }
    }

    /// Whether this class moves along the park loop (else the main road).
    fn on_loop(self) -> bool {
        matches!(self, TrajectoryClass::Tourist | TrajectoryClass::Commuter)
    }
}

/// A generated trajectory with its ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    /// Waypoints in time order (fixed 1-unit sampling interval).
    pub points: Vec<Point>,
    /// Ground-truth class.
    pub class: TrajectoryClass,
}

/// Generates one trajectory of `steps` waypoints.
pub fn generate_trajectory(
    class: TrajectoryClass,
    map: &PoiMap,
    steps: usize,
    rng: &mut SplitMix64,
) -> Trajectory {
    // Route templates.
    let route: Vec<Point> = if class.on_loop() {
        // A rounded loop through the park quadrant.
        (0..16)
            .map(|i| {
                let theta = i as f64 / 16.0 * std::f64::consts::TAU;
                Point { x: 25.0 + 10.0 * theta.cos(), y: 70.0 + 10.0 * theta.sin() }
            })
            .collect()
    } else {
        // Straight main road, west to east.
        (0..16).map(|i| Point { x: 5.0 + i as f64 * 6.0, y: 20.0 }).collect()
    };
    // Dwell targets: POIs of the class's preferred kinds near the route.
    let dwell: Vec<Point> = class
        .dwell_kinds()
        .iter()
        .flat_map(|&k| map.of_kind(k))
        .map(|p| p.at)
        .filter(|p| route.iter().any(|r| r.distance(*p) < 15.0))
        .collect();

    let mut points = Vec::with_capacity(steps);
    let mut leg = 0usize;
    let mut pos = route[0];
    let mut dwell_left = 0usize;
    let mut dwell_at = pos;
    let jitter = 0.4;
    for step in 0..steps {
        if dwell_left > 0 {
            dwell_left -= 1;
            points.push(Point {
                x: dwell_at.x + rng.next_gaussian() * 0.2,
                y: dwell_at.y + rng.next_gaussian() * 0.2,
            });
            continue;
        }
        // Move toward the next route vertex.
        let target = route[(leg + 1) % route.len()];
        let d = pos.distance(target);
        let speed = if class.on_loop() { 1.0 } else { 3.0 };
        if d <= speed {
            pos = target;
            leg = (leg + 1) % route.len();
        } else {
            pos = Point {
                x: pos.x + (target.x - pos.x) / d * speed,
                y: pos.y + (target.y - pos.y) / d * speed,
            };
        }
        points.push(Point {
            x: pos.x + rng.next_gaussian() * jitter,
            y: pos.y + rng.next_gaussian() * jitter,
        });
        // Occasionally start a dwell near a preferred POI.
        if !dwell.is_empty() && step % 12 == 11 {
            // Dwell at the nearest preferred POI if close enough.
            let nearest = dwell
                .iter()
                .min_by(|a, b| pos.distance(**a).partial_cmp(&pos.distance(**b)).unwrap())
                .copied()
                .expect("dwell non-empty");
            if pos.distance(nearest) < 12.0 {
                dwell_at = nearest;
                dwell_left = 6 + rng.next_bounded(5) as usize;
            }
        }
    }
    Trajectory { points, class }
}

/// Generates a balanced labelled dataset: `n_per_class` trajectories per
/// class, `steps` waypoints each.
pub fn generate_dataset(
    n_per_class: usize,
    steps: usize,
    map: &PoiMap,
    rng: &mut SplitMix64,
) -> Vec<Trajectory> {
    let mut out = Vec::with_capacity(4 * n_per_class);
    for class in TrajectoryClass::all() {
        for _ in 0..n_per_class {
            out.push(generate_trajectory(class, map, steps, rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_map_has_all_kinds() {
        let m = PoiMap::standard();
        for k in PoiKind::all() {
            assert!(!m.of_kind(k).is_empty(), "{k:?} missing");
        }
    }

    #[test]
    fn trajectories_have_requested_length() {
        let m = PoiMap::standard();
        let mut rng = SplitMix64::new(1);
        let t = generate_trajectory(TrajectoryClass::Car, &m, 120, &mut rng);
        assert_eq!(t.points.len(), 120);
        assert_eq!(t.class, TrajectoryClass::Car);
    }

    #[test]
    fn loop_and_road_classes_occupy_different_regions() {
        let m = PoiMap::standard();
        let mut rng = SplitMix64::new(2);
        let tourist = generate_trajectory(TrajectoryClass::Tourist, &m, 100, &mut rng);
        let car = generate_trajectory(TrajectoryClass::Car, &m, 100, &mut rng);
        let mean_y =
            |t: &Trajectory| t.points.iter().map(|p| p.y).sum::<f64>() / t.points.len() as f64;
        assert!(mean_y(&tourist) > 50.0, "tourist stays in the park quadrant");
        assert!(mean_y(&car) < 30.0, "car stays on the road");
    }

    #[test]
    fn tourists_and_commuters_share_geometry() {
        // Mean positions of the two walking classes are close — the
        // designed geometric confusability.
        let m = PoiMap::standard();
        let mut rng = SplitMix64::new(3);
        let mut centroid = |class| {
            let mut cx = 0.0;
            let mut cy = 0.0;
            let mut n = 0.0;
            for _ in 0..5 {
                let t = generate_trajectory(class, &m, 150, &mut rng);
                for p in &t.points {
                    cx += p.x;
                    cy += p.y;
                    n += 1.0;
                }
            }
            (cx / n, cy / n)
        };
        let (tx, ty) = centroid(TrajectoryClass::Tourist);
        let (cx, cy) = centroid(TrajectoryClass::Commuter);
        let d = ((tx - cx).powi(2) + (ty - cy).powi(2)).sqrt();
        assert!(d < 8.0, "walking classes should overlap geometrically; centroid gap {d}");
    }

    #[test]
    fn commuters_dwell_near_bus_stops() {
        let m = PoiMap::standard();
        let mut rng = SplitMix64::new(4);
        let t = generate_trajectory(TrajectoryClass::Commuter, &m, 200, &mut rng);
        let stops = m.of_kind(PoiKind::BusStop);
        let near =
            t.points.iter().filter(|p| stops.iter().any(|s| s.at.distance(**p) < 3.0)).count();
        assert!(near > 10, "commuter should dwell near bus stops; {near} near points");
    }

    #[test]
    fn dataset_is_balanced_and_deterministic() {
        let m = PoiMap::standard();
        let mut r1 = SplitMix64::new(5);
        let d1 = generate_dataset(3, 50, &m, &mut r1);
        assert_eq!(d1.len(), 12);
        let mut r2 = SplitMix64::new(5);
        let d2 = generate_dataset(3, 50, &m, &mut r2);
        assert_eq!(d1, d2);
    }
}
