//! The workspace's one FNV-1a implementation.
//!
//! Every content address in the workspace — trace addresses, run-cache
//! keys, fault-plan draws, soak traffic shapes, derived seeds — is built
//! on the same 64-bit FNV-1a fold. Until ISSUE 7 the fold was copy-pasted
//! into five modules, which is exactly the drift hazard the analyzer's
//! R12 (`duplicate-primitive`) rule exists to catch: two "identical"
//! hashes that diverge by one constant silently partition the cache and
//! break cross-machine address agreement. This module is the single
//! definition; `treu-core::hash` re-exports it as the canonical path for
//! the crates above the math layer.
//!
//! Two entry points share the constants:
//!
//! * [`fnv64`] — the plain fold over one byte stream (trace addresses,
//!   seed derivation tags).
//! * [`fnv64_parts`] — the fold over a sequence of parts with an `0xFF`
//!   separator mixed in after each, so `("ab", "c")` never collides with
//!   `("a", "bc")` (cache keys, fault draws).
//!
//! [`unit`] maps a hash to a uniform draw in `[0, 1)` using the top 53
//! bits — the same construction `SplitMix64::next_f64` uses — so seeded
//! probability draws are one hash away everywhere.

/// FNV-1a offset basis (64-bit).
pub const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
/// FNV-1a prime (64-bit).
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// FNV-1a over a byte stream.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a over byte parts, mixing an `0xFF` separator after each part so
/// part boundaries are part of the address.
pub fn fnv64_parts(parts: &[&[u8]]) -> u64 {
    let mut h = FNV_OFFSET;
    for part in parts {
        for &b in *part {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        h ^= 0xFF;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A uniform draw in `[0, 1)` from a hash — 53 mantissa bits, matching
/// `SplitMix64::next_f64`.
pub fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_is_the_offset_basis() {
        assert_eq!(fnv64(&[]), FNV_OFFSET);
    }

    #[test]
    fn known_vector() {
        // FNV-1a("a") = basis ^ 0x61 then * prime.
        let want = (FNV_OFFSET ^ 0x61).wrapping_mul(FNV_PRIME);
        assert_eq!(fnv64(b"a"), want);
    }

    #[test]
    fn parts_separator_prevents_boundary_collisions() {
        assert_ne!(fnv64_parts(&[b"ab", b"c"]), fnv64_parts(&[b"a", b"bc"]));
        assert_ne!(fnv64_parts(&[b"ab"]), fnv64_parts(&[b"ab", b""]));
    }

    #[test]
    fn parts_of_one_differs_from_plain_by_the_separator_only() {
        // The parts fold is the plain fold plus one separator mix.
        let plain = fnv64(b"xyz");
        let parts = fnv64_parts(&[b"xyz"]);
        assert_eq!(parts, (plain ^ 0xFF).wrapping_mul(FNV_PRIME));
    }

    #[test]
    fn unit_is_in_half_open_interval() {
        for h in [0u64, 1, u64::MAX, FNV_OFFSET, 0x8000_0000_0000_0000] {
            let u = unit(h);
            assert!((0.0..1.0).contains(&u), "unit({h:#x}) = {u}");
        }
        assert_eq!(unit(0), 0.0);
    }
}
