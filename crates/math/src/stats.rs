//! Descriptive statistics.
//!
//! These functions back both the survey analysis (`treu-surveys` reproduces
//! the paper's Tables 1–3, all of which are means, modes and boosts) and the
//! quantitative experiments (medians, quantiles, covariance for PCA and the
//! robust-statistics project).

use crate::matrix::Matrix;

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    x.iter().sum::<f64>() / x.len() as f64
}

/// Unbiased (n-1) sample variance; `0.0` if fewer than two samples.
pub fn variance(x: &[f64]) -> f64 {
    if x.len() < 2 {
        return 0.0;
    }
    let m = mean(x);
    x.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (x.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(x: &[f64]) -> f64 {
    variance(x).sqrt()
}

/// Median via sorting a copy; `0.0` for an empty slice.
///
/// For even lengths, the average of the two central order statistics.
pub fn median(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let mut v = x.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("median: NaN in input"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

/// Empirical quantile with linear interpolation (type-7, the R/NumPy
/// default). `q` is clamped to `[0, 1]`.
pub fn quantile(x: &[f64], q: f64) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let mut v = x.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("quantile: NaN in input"));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = pos - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// Mode of an integer-valued sample (the paper reports modal Likert scores).
///
/// Ties resolve to the smallest value, matching the convention of reporting
/// the most conservative modal response. Returns `None` for an empty slice.
pub fn mode_int(x: &[i64]) -> Option<i64> {
    if x.is_empty() {
        return None;
    }
    let mut sorted = x.to_vec();
    sorted.sort_unstable();
    let mut best_val = sorted[0];
    let mut best_count = 0usize;
    let mut i = 0;
    while i < sorted.len() {
        let mut j = i;
        while j < sorted.len() && sorted[j] == sorted[i] {
            j += 1;
        }
        if j - i > best_count {
            best_count = j - i;
            best_val = sorted[i];
        }
        i = j;
    }
    Some(best_val)
}

/// Minimum and maximum of a slice; `None` for an empty slice.
pub fn min_max(x: &[f64]) -> Option<(f64, f64)> {
    if x.is_empty() {
        return None;
    }
    let mut lo = x[0];
    let mut hi = x[0];
    for &v in &x[1..] {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    Some((lo, hi))
}

/// Pearson correlation coefficient; `0.0` when either variance is zero.
///
/// # Panics
///
/// Panics if slices have different lengths.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "pearson: length mismatch");
    if x.len() < 2 {
        return 0.0;
    }
    let mx = mean(x);
    let my = mean(y);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (a, b) in x.iter().zip(y) {
        let dx = a - mx;
        let dy = b - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        0.0
    } else {
        sxy / (sxx * syy).sqrt()
    }
}

/// Sample covariance matrix of row-sample data (`n x d` → `d x d`),
/// using the unbiased `1/(n-1)` normalizer.
///
/// Returns the zero matrix when `n < 2`.
pub fn covariance_matrix(samples: &Matrix) -> Matrix {
    let (n, d) = samples.shape();
    let mut cov = Matrix::zeros(d, d);
    if n < 2 {
        return cov;
    }
    let mut mu = vec![0.0; d];
    for r in 0..n {
        for (j, m) in mu.iter_mut().enumerate() {
            *m += samples[(r, j)];
        }
    }
    for m in mu.iter_mut() {
        *m /= n as f64;
    }
    for r in 0..n {
        let row = samples.row(r);
        for i in 0..d {
            let di = row[i] - mu[i];
            for j in i..d {
                cov[(i, j)] += di * (row[j] - mu[j]);
            }
        }
    }
    let norm = 1.0 / (n - 1) as f64;
    for i in 0..d {
        for j in i..d {
            let v = cov[(i, j)] * norm;
            cov[(i, j)] = v;
            cov[(j, i)] = v;
        }
    }
    cov
}

/// Column means of a row-sample matrix.
pub fn column_means(samples: &Matrix) -> Vec<f64> {
    let (n, d) = samples.shape();
    let mut mu = vec![0.0; d];
    if n == 0 {
        return mu;
    }
    for r in 0..n {
        for (j, m) in mu.iter_mut().enumerate() {
            *m += samples[(r, j)];
        }
    }
    for m in mu.iter_mut() {
        *m /= n as f64;
    }
    mu
}

/// A fixed-width histogram over `[lo, hi)` with `bins` buckets.
///
/// Values outside the range clamp into the first/last bucket, so the counts
/// always sum to the sample size.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Self { lo, hi, counts: vec![0; bins] }
    }

    /// Adds a sample.
    pub fn add(&mut self, v: f64) {
        let bins = self.counts.len();
        let t = (v - self.lo) / (self.hi - self.lo);
        let idx = ((t * bins as f64) as isize).clamp(0, bins as isize - 1) as usize;
        self.counts[idx] += 1;
    }

    /// Bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total samples observed.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Midpoint of bucket `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + w * (i as f64 + 0.5)
    }
}

/// Welford online mean/variance accumulator, for streaming statistics in
/// the simulators where storing every sample would be wasteful.
#[derive(Debug, Clone, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one sample.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean; `0.0` before any sample.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased running variance; `0.0` with fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Running standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merges another accumulator (Chan's parallel combination).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / n as f64;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_median_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn variance_matches_hand_computation() {
        // Var of {2,4,4,4,5,5,7,9} with n-1 norm = 32/7.
        let x = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((variance(&x) - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(variance(&[5.0]), 0.0);
    }

    #[test]
    fn quantile_interpolates() {
        let x = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(quantile(&x, 0.0), 10.0);
        assert_eq!(quantile(&x, 1.0), 40.0);
        assert_eq!(quantile(&x, 0.5), 25.0);
        assert!((quantile(&x, 1.0 / 3.0) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn mode_ties_take_smallest() {
        assert_eq!(mode_int(&[3, 1, 3, 1, 2]), Some(1));
        assert_eq!(mode_int(&[4, 4, 2]), Some(4));
        assert_eq!(mode_int(&[]), None);
    }

    #[test]
    fn pearson_perfect_and_zero() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let anti: Vec<f64> = y.iter().map(|v| -v).collect();
        assert!((pearson(&x, &anti) + 1.0).abs() < 1e-12);
        let constant = [5.0; 4];
        assert_eq!(pearson(&x, &constant), 0.0);
    }

    #[test]
    fn covariance_of_known_data() {
        // Two perfectly correlated columns.
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        let c = covariance_matrix(&m);
        assert!((c[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((c[(1, 1)] - 4.0).abs() < 1e-12);
        assert!((c[(0, 1)] - 2.0).abs() < 1e-12);
        assert_eq!(c[(0, 1)], c[(1, 0)]);
    }

    #[test]
    fn covariance_degenerate() {
        let m = Matrix::from_rows(&[&[1.0, 2.0]]);
        let c = covariance_matrix(&m);
        assert_eq!(c.max_abs_diff(&Matrix::zeros(2, 2)), 0.0);
    }

    #[test]
    fn histogram_clamps_and_counts() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for v in [-1.0, 0.0, 3.0, 9.9, 10.0, 100.0] {
            h.add(v);
        }
        assert_eq!(h.total(), 6);
        assert_eq!(h.counts()[0], 2); // -1 clamps in, 0.0 lands here
        assert_eq!(h.counts()[4], 3); // 9.9, 10.0 and 100.0 clamp into last
        assert_eq!(h.bin_center(0), 1.0);
    }

    #[test]
    fn welford_matches_batch() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 3.0 + 1.0).collect();
        let mut w = Welford::new();
        for &x in &xs {
            w.add(x);
        }
        assert!((w.mean() - mean(&xs)).abs() < 1e-12);
        assert!((w.variance() - variance(&xs)).abs() < 1e-10);
    }

    #[test]
    fn welford_merge_matches_single_stream() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64 * 0.7).collect();
        let ys: Vec<f64> = (0..70).map(|i| (i as f64) - 10.0).collect();
        let mut all = Welford::new();
        for v in xs.iter().chain(&ys) {
            all.add(*v);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for v in &xs {
            a.add(*v);
        }
        for v in &ys {
            b.add(*v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-10);
        assert!((a.variance() - all.variance()).abs() < 1e-8);
    }

    #[test]
    fn min_max_works() {
        assert_eq!(min_max(&[3.0, -1.0, 2.0]), Some((-1.0, 3.0)));
        assert_eq!(min_max(&[]), None);
    }
}
