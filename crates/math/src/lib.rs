//! `treu-math` — numerical substrate for the TREU workspace.
//!
//! This crate provides the dense linear algebra, decompositions, statistics
//! and deterministic-randomness utilities that every other TREU crate builds
//! on. Everything is pure Rust, allocation-conscious, and deterministic: the
//! same seed always produces bitwise-identical results, which is the
//! foundation of the reproducibility harness in `treu-core`.
//!
//! # Modules
//!
//! * [`rng`] — seed derivation and deterministic RNG construction.
//! * [`vector`] — free functions over `&[f64]` slices (dot, axpy, norms).
//! * [`matrix`] — a row-major dense [`matrix::Matrix`] with blocked and
//!   parallel multiplication.
//! * [`gemm`] — shape classes, blocking plans and the installed-plan table
//!   the autotuner feeds (`Matrix::matmul` dispatches through it).
//! * [`decomp`] — Jacobi eigendecomposition and one-sided Jacobi SVD.
//! * [`pca`] — principal component analysis on row-sample matrices.
//! * [`stats`] — descriptive statistics (mean, mode, quantiles, covariance).
//! * [`scaling`] — parallel performance measurement and Amdahl fitting
//!   (the paper's §4 reusable HPC lesson module).
//! * [`parallel`] — crossbeam-scoped data-parallel helpers.
//!
//! # Example
//!
//! ```
//! use treu_math::matrix::Matrix;
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! assert_eq!(a.matmul(&b), a);
//! ```

#![forbid(unsafe_code)]
// Indexed loops over multiple parallel arrays are the clearest idiom in
// this crate's numeric kernels; the zip-chain rewrite the lint suggests
// obscures them.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod decomp;
pub mod gemm;
pub mod hash;
pub mod matrix;
pub mod parallel;
pub mod pca;
pub mod rng;
pub mod scaling;
pub mod stats;
pub mod vector;

pub use matrix::Matrix;
