//! Row-major dense matrices.
//!
//! [`Matrix`] is the workhorse container of the workspace: a contiguous
//! row-major `Vec<f64>` with shape metadata. Multiplication comes in
//! several flavours — naive (`matmul_naive`, kept for testing and as the
//! autotuner's reference point), schedule-driven cache-blocked (`matmul`,
//! dispatching through the [`crate::gemm`] plan table), thread-parallel
//! (`matmul_parallel`, crossbeam-scoped over row bands), and the
//! transpose-free variants `matmul_tn` / `matmul_nt` that read one operand
//! through its transpose without materializing it.
//!
//! # The ascending-k rule
//!
//! Every multiplication path computes each output element as **one
//! sequential ascending-k chain**: `acc = ((0 + a·b|k=0) + a·b|k=1) + …`.
//! Blocking (MC/KC/NC) reorders only which elements are visited when and
//! what gets packed — never the per-element accumulation order — so naive,
//! blocked, packed and parallel results are bitwise-identical at every
//! plan and thread count. Spilling a partial accumulator to the output
//! buffer between KC panels and reloading it is exact (each f64 add rounds
//! once either way), so KC blocking preserves the chain too. What would
//! *break* the rule: multiple interleaved accumulators per element (as in
//! `vector::dot`'s 4-way unroll) or skipping zero terms (`0.0` terms still
//! move signed zeros and NaNs). Neither is used on any matmul path.

use crate::gemm::{self, GemmPlan, ShapeClass};
use crate::parallel;
use crate::vector;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            writeln!(f, "  {:?}", &self.row(r)[..self.cols.min(8)])?;
        }
        if self.rows > 8 || self.cols > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "from_vec: shape/buffer mismatch");
        Self { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have unequal lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        Self { rows: r, cols: c, data }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow of row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy of column `c`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// The flat row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning its buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Transpose into a fresh matrix.
    pub fn transpose(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        // Blocked transpose for cache friendliness on larger matrices.
        const B: usize = 32;
        for rb in (0..self.rows).step_by(B) {
            for cb in (0..self.cols).step_by(B) {
                for r in rb..(rb + B).min(self.rows) {
                    for c in cb..(cb + B).min(self.cols) {
                        out[(c, r)] = self[(r, c)];
                    }
                }
            }
        }
        out
    }

    /// Matrix–vector product `self * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec: dimension mismatch");
        (0..self.rows).map(|r| vector::dot(self.row(r), x)).collect()
    }

    /// Naive triple-loop multiplication; the reference implementation used
    /// by tests, the conformance suite and the autotuner baseline.
    ///
    /// Note there is deliberately no `a == 0.0` fast path: skipping zero
    /// terms would change signed-zero and NaN propagation, breaking the
    /// bitwise tuned ≡ naive contract.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul: dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                let brow = other.row(k);
                let orow = out.row_mut(i);
                vector::axpy(a, brow, orow);
            }
        }
        out
    }

    /// Schedule-driven multiplication: classifies the shape, looks up the
    /// plan table ([`gemm::plan_for`] — tuned plan if `treu tune` installed
    /// one, hand-written default otherwise) and runs the cache-blocked
    /// kernel single-threaded.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul: dimension mismatch");
        let plan = gemm::plan_for(ShapeClass::of(self.rows, self.cols, other.cols)).sequential();
        self.matmul_with_plan(other, &plan)
    }

    /// Multiplication under an explicit [`GemmPlan`] — the entry point the
    /// autotuner times candidate schedules through. `plan.threads > 1`
    /// band-parallelizes over output rows via [`parallel::for_each_band`].
    ///
    /// Bitwise-identical to [`Matrix::matmul_naive`] for every plan and
    /// thread count (the ascending-k rule).
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul_with_plan(&self, other: &Matrix, plan: &GemmPlan) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul: dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        if out.data.is_empty() {
            return out;
        }
        let threads = plan.threads.max(1);
        if threads <= 1 || self.rows <= 1 {
            Self::mul_into_range(self, other, out.as_mut_slice(), 0, self.rows, plan);
        } else {
            let ocols = other.cols;
            parallel::for_each_band(out.as_mut_slice(), ocols, threads, |band_start, band| {
                let rows = band.len() / ocols;
                Self::mul_into_range(self, other, band, band_start, band_start + rows, plan);
            });
        }
        out
    }

    /// Thread-parallel multiplication over horizontal bands of the output.
    ///
    /// Uses `crossbeam::scope`; each worker owns a disjoint `&mut` band of
    /// the output, so no synchronization is needed. Falls back to the
    /// single-threaded path below the spawn-overhead crossover
    /// ([`gemm::parallel_crossover`] — measured by the schedule book when
    /// available, a 64×64-output constant otherwise).
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul_parallel(&self, other: &Matrix, threads: usize) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul: dimension mismatch");
        let threads = threads.max(1);
        if threads == 1 || self.rows * other.cols < gemm::parallel_crossover() {
            return self.matmul(other);
        }
        let plan =
            gemm::plan_for(ShapeClass::of(self.rows, self.cols, other.cols)).with_threads(threads);
        self.matmul_with_plan(other, &plan)
    }

    /// Transpose-free `selfᵀ · other`: `self` is stored `k×m` and read
    /// column-wise, so callers holding an activation they would otherwise
    /// `transpose()` (every backward pass) skip the allocation + copy.
    ///
    /// Bitwise-identical to `self.transpose().matmul(other)`.
    ///
    /// # Panics
    ///
    /// Panics if the shared `k` extents disagree (`self.rows != other.rows`).
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "matmul_tn: dimension mismatch");
        let (kdim, m, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        if out.data.is_empty() || kdim == 0 {
            return out;
        }
        let plan = gemm::plan_for(ShapeClass::of(m, kdim, n)).clamped(m, kdim, n);
        let mut bpack = vec![0.0; kdim * plan.nc];
        // A's logical row i is the stored column i: gather it per KC panel
        // into a contiguous buffer so the same ascending-k microkernel runs.
        let mut apack = vec![0.0; plan.kc];
        for jc in (0..n).step_by(plan.nc) {
            let ncur = plan.nc.min(n - jc);
            pack_b_strip(&other.data, n, kdim, jc, ncur, &mut bpack);
            for ic in (0..m).step_by(plan.mc) {
                let iend = (ic + plan.mc).min(m);
                for pc in (0..kdim).step_by(plan.kc) {
                    let kcur = plan.kc.min(kdim - pc);
                    let bpanel = &bpack[pc * ncur..(pc + kcur) * ncur];
                    for i in ic..iend {
                        for kk in 0..kcur {
                            apack[kk] = self.data[(pc + kk) * m + i];
                        }
                        let crow = &mut out.data[i * n + jc..i * n + jc + ncur];
                        microkernel_row(&apack[..kcur], bpanel, crow, ncur, plan.nr);
                    }
                }
            }
        }
        out
    }

    /// Transpose-free `self · otherᵀ`: `other` is stored `n×k`, so both
    /// operands are read along contiguous rows and each output element is
    /// one sequential dot chain — no packing needed, no `transpose()`
    /// allocation for callers multiplying by a weight transpose.
    ///
    /// Bitwise-identical to `self.matmul(&other.transpose())`.
    ///
    /// # Panics
    ///
    /// Panics if the shared `k` extents disagree (`self.cols != other.cols`).
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_nt: dimension mismatch");
        let (m, kdim, n) = (self.rows, self.cols, other.rows);
        let mut out = Matrix::zeros(m, n);
        if out.data.is_empty() {
            return out;
        }
        for i in 0..m {
            let arow = self.row(i);
            let orow = &mut out.data[i * n..(i + 1) * n];
            let mut j = 0;
            // Four independent per-element chains at a time for ILP; each
            // chain is still one ascending-k reduction.
            while j + 4 <= n {
                let b0 = other.row(j);
                let b1 = other.row(j + 1);
                let b2 = other.row(j + 2);
                let b3 = other.row(j + 3);
                let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
                for kk in 0..kdim {
                    let av = arow[kk];
                    a0 += av * b0[kk];
                    a1 += av * b1[kk];
                    a2 += av * b2[kk];
                    a3 += av * b3[kk];
                }
                orow[j] = a0;
                orow[j + 1] = a1;
                orow[j + 2] = a2;
                orow[j + 3] = a3;
                j += 4;
            }
            while j < n {
                orow[j] = vector::dot_chain(arow, other.row(j));
                j += 1;
            }
        }
        out
    }

    /// Computes rows `[r0, r1)` of `self * other` into `out_band`, a buffer
    /// whose first element corresponds to `(r0, 0)` of the product, blocked
    /// and packed per `plan`.
    ///
    /// Loop nest: NC strips of B are packed contiguous once per strip; MC
    /// row blocks keep a C block hot across the KC panel loop; the NR-wide
    /// microkernel keeps per-element accumulator chains in registers for a
    /// full panel. Per output element the reduction order is ascending k
    /// regardless of all three block extents.
    fn mul_into_range(
        a: &Matrix,
        b: &Matrix,
        out_band: &mut [f64],
        r0: usize,
        r1: usize,
        plan: &GemmPlan,
    ) {
        let n = b.cols;
        let kdim = a.cols;
        if n == 0 || kdim == 0 || r1 <= r0 {
            return;
        }
        let p = plan.clamped(r1 - r0, kdim, n);
        let mut bpack = vec![0.0; kdim * p.nc];
        for jc in (0..n).step_by(p.nc) {
            let ncur = p.nc.min(n - jc);
            pack_b_strip(&b.data, n, kdim, jc, ncur, &mut bpack);
            for ic in (r0..r1).step_by(p.mc) {
                let iend = (ic + p.mc).min(r1);
                for pc in (0..kdim).step_by(p.kc) {
                    let kcur = p.kc.min(kdim - pc);
                    let bpanel = &bpack[pc * ncur..(pc + kcur) * ncur];
                    for i in ic..iend {
                        let arow = &a.data[i * kdim + pc..i * kdim + pc + kcur];
                        let crow = &mut out_band[(i - r0) * n + jc..(i - r0) * n + jc + ncur];
                        microkernel_row(arow, bpanel, crow, ncur, p.nr);
                    }
                }
            }
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        vector::dot(&self.data, &self.data).sqrt()
    }

    /// Element-wise maximum absolute difference to another matrix.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.shape(), other.shape(), "max_abs_diff: shape mismatch");
        self.data.iter().zip(&other.data).fold(0.0, |m, (a, b)| m.max((a - b).abs()))
    }

    /// `self + other` into a fresh matrix.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "add: shape mismatch");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a + b).collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// `self - other` into a fresh matrix.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "sub: shape mismatch");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a - b).collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Scales every element by `alpha` in place.
    pub fn scale_in_place(&mut self, alpha: f64) {
        vector::scale(alpha, &mut self.data);
    }

    /// Returns `true` if every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

/// Packs B's column strip `[0..kdim) × [jc, jc+ncur)` into `bpack` as a
/// contiguous row-major `kdim × ncur` panel. The pack is an index-ordered
/// copy — row `kk` of the panel is row `kk` of the strip — so it cannot
/// reorder any reduction.
fn pack_b_strip(bdata: &[f64], n: usize, kdim: usize, jc: usize, ncur: usize, bpack: &mut [f64]) {
    for (kk, dst) in bpack.chunks_mut(ncur).take(kdim).enumerate() {
        let src = &bdata[kk * n + jc..kk * n + jc + ncur];
        dst[..ncur].copy_from_slice(src);
    }
}

/// One output row segment against a packed `kcur × ncur` B panel: NR-wide
/// register tiles, with the tail cascading down through every narrower
/// supported width (so a 23-column panel at `nr = 16` runs one 16-wide
/// tile, one 4-wide, one 2-wide and one scalar column — never a long
/// scalar crawl). Each output element's partial sum is loaded once,
/// extended by `kcur` ascending-k adds in a register, and stored once —
/// the spill/reload between KC panels rounds identically to a
/// register-resident chain, so the tile width never changes a bit.
fn microkernel_row(arow: &[f64], bpanel: &[f64], crow: &mut [f64], ncur: usize, nr: usize) {
    let mut j = 0;
    for w in gemm::NR_CHOICES.into_iter().filter(|&w| w <= nr) {
        while j + w <= ncur {
            let cseg = &mut crow[j..j + w];
            match w {
                16 => microkernel_tile::<16>(arow, bpanel, ncur, j, cseg),
                8 => microkernel_tile::<8>(arow, bpanel, ncur, j, cseg),
                4 => microkernel_tile::<4>(arow, bpanel, ncur, j, cseg),
                2 => microkernel_tile::<2>(arow, bpanel, ncur, j, cseg),
                _ => microkernel_tile::<1>(arow, bpanel, ncur, j, cseg),
            }
            j += w;
        }
    }
}

/// NR independent accumulator chains (one per output element) advanced in
/// lockstep over ascending k. Const-generic width so the accumulators stay
/// in registers.
#[inline]
fn microkernel_tile<const NR: usize>(
    arow: &[f64],
    bpanel: &[f64],
    ncur: usize,
    j: usize,
    cseg: &mut [f64],
) {
    let mut acc = [0.0f64; NR];
    acc.copy_from_slice(&cseg[..NR]);
    for (kk, &av) in arow.iter().enumerate() {
        let b = &bpanel[kk * ncur + j..kk * ncur + j + NR];
        for t in 0..NR {
            acc[t] += av * b[t];
        }
    }
    cseg.copy_from_slice(&acc);
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    fn random_matrix(rng: &mut SplitMix64, r: usize, c: usize) -> Matrix {
        Matrix::from_fn(r, c, |_, _| rng.next_gaussian())
    }

    fn assert_bitwise_eq(a: &Matrix, b: &Matrix, ctx: &str) {
        assert_eq!(a.shape(), b.shape(), "{ctx}: shape");
        for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: element {i}: {x} vs {y}");
        }
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = SplitMix64::new(1);
        let a = random_matrix(&mut rng, 5, 5);
        let i = Matrix::identity(5);
        assert!(a.matmul(&i).max_abs_diff(&a) < 1e-12);
        assert!(i.matmul(&a).max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn blocked_is_bitwise_naive() {
        let mut rng = SplitMix64::new(2);
        for &(m, k, n) in &[(1, 1, 1), (3, 4, 5), (17, 31, 9), (65, 64, 70), (70, 130, 40)] {
            let a = random_matrix(&mut rng, m, k);
            let b = random_matrix(&mut rng, k, n);
            assert_bitwise_eq(&a.matmul(&b), &a.matmul_naive(&b), &format!("({m},{k},{n})"));
        }
    }

    #[test]
    fn every_plan_is_bitwise_naive() {
        let mut rng = SplitMix64::new(7);
        let a = random_matrix(&mut rng, 37, 53);
        let b = random_matrix(&mut rng, 53, 29);
        let want = a.matmul_naive(&b);
        for &(mc, kc, nc, nr) in &[
            (1, 1, 1, 1),
            (2, 3, 5, 2),
            (8, 16, 8, 4),
            (64, 64, 64, 8),
            (37, 53, 29, 16),
            (usize::MAX, usize::MAX, usize::MAX, 8),
        ] {
            for threads in [1, 2, 4] {
                let plan = GemmPlan { mc, kc, nc, nr, threads };
                let got = a.matmul_with_plan(&b, &plan);
                assert_bitwise_eq(&got, &want, &format!("plan {plan:?}"));
            }
        }
    }

    #[test]
    fn zero_terms_keep_bitwise_parity() {
        // Rows of zeros and a NaN exercise the no-zero-skip contract: a
        // skipped 0.0 · NaN term would diverge from the blocked kernel.
        let mut a = Matrix::zeros(4, 4);
        a[(1, 2)] = -0.0;
        a[(2, 1)] = 3.5;
        let mut b = Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f64 - 5.0);
        b[(3, 0)] = f64::NAN;
        let naive = a.matmul_naive(&b);
        let blocked = a.matmul(&b);
        for (x, y) in naive.as_slice().iter().zip(blocked.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits(), "{x} vs {y}");
        }
    }

    #[test]
    fn parallel_matches_sequential_bitwise() {
        let mut rng = SplitMix64::new(3);
        let a = random_matrix(&mut rng, 97, 83);
        let b = random_matrix(&mut rng, 83, 101);
        let seq = a.matmul(&b);
        for threads in [1, 2, 3, 8] {
            let par = a.matmul_parallel(&b, threads);
            assert_bitwise_eq(&par, &seq, &format!("threads={threads}"));
        }
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose_bitwise() {
        let mut rng = SplitMix64::new(11);
        for &(k, m, n) in &[(1, 1, 1), (5, 3, 4), (31, 17, 9), (64, 70, 65), (130, 40, 70)] {
            let at = random_matrix(&mut rng, k, m); // stores Aᵀ
            let b = random_matrix(&mut rng, k, n);
            let want = at.transpose().matmul(&b);
            assert_bitwise_eq(&at.matmul_tn(&b), &want, &format!("tn ({k},{m},{n})"));
        }
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose_bitwise() {
        let mut rng = SplitMix64::new(12);
        for &(m, k, n) in &[(1, 1, 1), (5, 3, 4), (31, 17, 9), (64, 70, 65), (40, 130, 70)] {
            let a = random_matrix(&mut rng, m, k);
            let bt = random_matrix(&mut rng, n, k); // stores Bᵀ
            let want = a.matmul(&bt.transpose());
            assert_bitwise_eq(&a.matmul_nt(&bt), &want, &format!("nt ({m},{k},{n})"));
        }
    }

    #[test]
    fn degenerate_shapes_multiply() {
        let a = Matrix::zeros(0, 3);
        let b = Matrix::zeros(3, 4);
        assert_eq!(a.matmul(&b).shape(), (0, 4));
        let a = Matrix::zeros(2, 0);
        let b = Matrix::zeros(0, 4);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 4));
        assert!(c.as_slice().iter().all(|&v| v == 0.0));
        let a = Matrix::zeros(3, 2);
        let b = Matrix::zeros(3, 2);
        assert_eq!(a.matmul_tn(&b).shape(), (2, 2));
        assert_eq!(a.matmul_nt(&b).shape(), (3, 3));
    }

    #[test]
    fn transpose_involution() {
        let mut rng = SplitMix64::new(4);
        let a = random_matrix(&mut rng, 40, 33);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn transpose_swaps_indices() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t[(0, 1)], 4.0);
    }

    #[test]
    fn matvec_matches_matmul() {
        let mut rng = SplitMix64::new(5);
        let a = random_matrix(&mut rng, 12, 7);
        let x: Vec<f64> = (0..7).map(|i| i as f64).collect();
        let xm = Matrix::from_vec(7, 1, x.clone());
        let via_mm = a.matmul(&xm);
        let via_mv = a.matvec(&x);
        for (i, v) in via_mv.iter().enumerate() {
            assert!((v - via_mm[(i, 0)]).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "matmul_tn: dimension mismatch")]
    fn matmul_tn_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(3, 3);
        let _ = a.matmul_tn(&b);
    }

    #[test]
    #[should_panic(expected = "matmul_nt: dimension mismatch")]
    fn matmul_nt_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(3, 4);
        let _ = a.matmul_nt(&b);
    }

    #[test]
    fn add_sub_scale() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[0.5, 0.5]]);
        let mut s = a.add(&b);
        assert_eq!(s.row(0), &[1.5, 2.5]);
        s = s.sub(&b);
        assert_eq!(s.row(0), &[1.0, 2.0]);
        s.scale_in_place(2.0);
        assert_eq!(s.row(0), &[2.0, 4.0]);
    }

    #[test]
    fn frobenius() {
        let a = Matrix::from_rows(&[&[3.0], &[4.0]]);
        assert_eq!(a.frobenius_norm(), 5.0);
    }

    #[test]
    fn from_fn_layout() {
        let a = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f64);
        assert_eq!(a.row(1), &[10.0, 11.0, 12.0]);
        assert_eq!(a.col(2), vec![2.0, 12.0]);
    }

    #[test]
    fn is_finite_detects_nan() {
        let mut a = Matrix::zeros(2, 2);
        assert!(a.is_finite());
        a[(1, 1)] = f64::NAN;
        assert!(!a.is_finite());
    }
}
