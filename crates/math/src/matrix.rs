//! Row-major dense matrices.
//!
//! [`Matrix`] is the workhorse container of the workspace: a contiguous
//! row-major `Vec<f64>` with shape metadata. Multiplication comes in three
//! flavours — naive (`matmul_naive`, kept for testing and as the autotuner's
//! reference point), cache-blocked (`matmul`) and thread-parallel
//! (`matmul_parallel`, crossbeam-scoped over row bands).

use crate::parallel;
use crate::vector;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            writeln!(f, "  {:?}", &self.row(r)[..self.cols.min(8)])?;
        }
        if self.rows > 8 || self.cols > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "from_vec: shape/buffer mismatch");
        Self { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have unequal lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        Self { rows: r, cols: c, data }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow of row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy of column `c`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// The flat row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning its buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Transpose into a fresh matrix.
    pub fn transpose(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        // Blocked transpose for cache friendliness on larger matrices.
        const B: usize = 32;
        for rb in (0..self.rows).step_by(B) {
            for cb in (0..self.cols).step_by(B) {
                for r in rb..(rb + B).min(self.rows) {
                    for c in cb..(cb + B).min(self.cols) {
                        out[(c, r)] = self[(r, c)];
                    }
                }
            }
        }
        out
    }

    /// Matrix–vector product `self * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec: dimension mismatch");
        (0..self.rows).map(|r| vector::dot(self.row(r), x)).collect()
    }

    /// Naive triple-loop multiplication; the reference implementation used
    /// by tests and by the autotuner baseline.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul: dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let brow = other.row(k);
                let orow = out.row_mut(i);
                vector::axpy(a, brow, orow);
            }
        }
        out
    }

    /// Cache-blocked multiplication (ikj loop order, 64-wide tiles).
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul: dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        Self::mul_into_range(self, other, out.as_mut_slice(), 0, self.rows);
        out
    }

    /// Thread-parallel multiplication over horizontal bands of the output.
    ///
    /// Uses `crossbeam::scope`; each worker owns a disjoint `&mut` band of
    /// the output, so no synchronization is needed. Falls back to the
    /// single-threaded path for small outputs where spawn overhead would
    /// dominate.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul_parallel(&self, other: &Matrix, threads: usize) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul: dimension mismatch");
        let threads = threads.max(1);
        if threads == 1 || self.rows * other.cols < 64 * 64 {
            return self.matmul(other);
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        let ocols = other.cols;
        parallel::for_each_band(out.as_mut_slice(), ocols, threads, |band_start, band| {
            let rows = band.len() / ocols;
            Self::mul_into_range(self, other, band, band_start, band_start + rows);
        });
        out
    }

    /// Computes rows `[r0, r1)` of `self * other` into `out_band`, a buffer
    /// whose first element corresponds to `(r0, 0)` of the product.
    fn mul_into_range(a: &Matrix, b: &Matrix, out_band: &mut [f64], r0: usize, r1: usize) {
        const KB: usize = 64;
        let n = b.cols;
        for i in r0..r1 {
            let orow = &mut out_band[(i - r0) * n..(i - r0 + 1) * n];
            for kb in (0..a.cols).step_by(KB) {
                let kend = (kb + KB).min(a.cols);
                for k in kb..kend {
                    let aik = a[(i, k)];
                    if aik != 0.0 {
                        vector::axpy(aik, b.row(k), orow);
                    }
                }
            }
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        vector::dot(&self.data, &self.data).sqrt()
    }

    /// Element-wise maximum absolute difference to another matrix.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.shape(), other.shape(), "max_abs_diff: shape mismatch");
        self.data.iter().zip(&other.data).fold(0.0, |m, (a, b)| m.max((a - b).abs()))
    }

    /// `self + other` into a fresh matrix.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "add: shape mismatch");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a + b).collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// `self - other` into a fresh matrix.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "sub: shape mismatch");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a - b).collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Scales every element by `alpha` in place.
    pub fn scale_in_place(&mut self, alpha: f64) {
        vector::scale(alpha, &mut self.data);
    }

    /// Returns `true` if every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    fn random_matrix(rng: &mut SplitMix64, r: usize, c: usize) -> Matrix {
        Matrix::from_fn(r, c, |_, _| rng.next_gaussian())
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = SplitMix64::new(1);
        let a = random_matrix(&mut rng, 5, 5);
        let i = Matrix::identity(5);
        assert!(a.matmul(&i).max_abs_diff(&a) < 1e-12);
        assert!(i.matmul(&a).max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn blocked_matches_naive() {
        let mut rng = SplitMix64::new(2);
        for &(m, k, n) in &[(1, 1, 1), (3, 4, 5), (17, 31, 9), (65, 64, 70)] {
            let a = random_matrix(&mut rng, m, k);
            let b = random_matrix(&mut rng, k, n);
            let d = a.matmul(&b).max_abs_diff(&a.matmul_naive(&b));
            assert!(d < 1e-10, "({m},{k},{n}) diff {d}");
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut rng = SplitMix64::new(3);
        let a = random_matrix(&mut rng, 97, 83);
        let b = random_matrix(&mut rng, 83, 101);
        let seq = a.matmul(&b);
        for threads in [1, 2, 3, 8] {
            let par = a.matmul_parallel(&b, threads);
            assert!(par.max_abs_diff(&seq) < 1e-10, "threads={threads}");
        }
    }

    #[test]
    fn transpose_involution() {
        let mut rng = SplitMix64::new(4);
        let a = random_matrix(&mut rng, 40, 33);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn transpose_swaps_indices() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t[(0, 1)], 4.0);
    }

    #[test]
    fn matvec_matches_matmul() {
        let mut rng = SplitMix64::new(5);
        let a = random_matrix(&mut rng, 12, 7);
        let x: Vec<f64> = (0..7).map(|i| i as f64).collect();
        let xm = Matrix::from_vec(7, 1, x.clone());
        let via_mm = a.matmul(&xm);
        let via_mv = a.matvec(&x);
        for (i, v) in via_mv.iter().enumerate() {
            assert!((v - via_mm[(i, 0)]).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn add_sub_scale() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[0.5, 0.5]]);
        let mut s = a.add(&b);
        assert_eq!(s.row(0), &[1.5, 2.5]);
        s = s.sub(&b);
        assert_eq!(s.row(0), &[1.0, 2.0]);
        s.scale_in_place(2.0);
        assert_eq!(s.row(0), &[2.0, 4.0]);
    }

    #[test]
    fn frobenius() {
        let a = Matrix::from_rows(&[&[3.0], &[4.0]]);
        assert_eq!(a.frobenius_norm(), 5.0);
    }

    #[test]
    fn from_fn_layout() {
        let a = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f64);
        assert_eq!(a.row(1), &[10.0, 11.0, 12.0]);
        assert_eq!(a.col(2), vec![2.0, 12.0]);
    }

    #[test]
    fn is_finite_detects_nan() {
        let mut a = Matrix::zeros(2, 2);
        assert!(a.is_finite());
        a[(1, 1)] = f64::NAN;
        assert!(!a.is_finite());
    }
}
