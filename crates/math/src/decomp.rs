//! Matrix decompositions: symmetric Jacobi eigendecomposition, one-sided
//! Jacobi SVD, and power iteration.
//!
//! The robust-statistics project (§2.10 of the paper) reports that its
//! "main computational bottlenecks were in linear algebra (SVD)"; this
//! module is the substrate that makes those experiments runnable without an
//! external LAPACK. Jacobi methods are chosen for their simplicity,
//! unconditional convergence on symmetric/general inputs, and high relative
//! accuracy — properties that matter more here than peak speed.

use crate::matrix::Matrix;
use crate::vector;

/// Result of a symmetric eigendecomposition: `a = V diag(values) V^T`.
///
/// Eigenvalues are sorted in descending order; `vectors.row(i)` is the unit
/// eigenvector paired with `values[i]`.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Eigenvectors as rows, aligned with `values`.
    pub vectors: Matrix,
}

/// Result of a singular value decomposition `a = U diag(sigma) V^T`.
///
/// Singular values are sorted descending. `u` is `m x k` and `vt` is
/// `k x n` where `k = min(m, n)` (thin SVD).
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors (columns of `U`), stored as an `m x k` matrix.
    pub u: Matrix,
    /// Singular values, descending.
    pub sigma: Vec<f64>,
    /// Right singular vectors transposed (`k x n`).
    pub vt: Matrix,
}

/// Cyclic Jacobi eigendecomposition of a symmetric matrix.
///
/// Sweeps all off-diagonal pairs until the off-diagonal Frobenius mass drops
/// below `tol * ||a||_F`, or `max_sweeps` is reached (convergence is
/// guaranteed; the cap only bounds worst-case time).
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn symmetric_eigen(a: &Matrix, tol: f64, max_sweeps: usize) -> SymmetricEigen {
    assert_eq!(a.rows(), a.cols(), "symmetric_eigen: matrix must be square");
    let n = a.rows();
    let mut m = a.clone();
    let mut v = Matrix::identity(n);
    let anorm = a.frobenius_norm().max(f64::MIN_POSITIVE);

    for _ in 0..max_sweeps {
        let mut off = 0.0;
        for p in 0..n {
            for q in (p + 1)..n {
                off += m[(p, q)] * m[(p, q)];
            }
        }
        if (2.0 * off).sqrt() <= tol * anorm {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= f64::MIN_POSITIVE {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    1.0 / (theta - (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // Apply the rotation to rows/cols p and q of m, and to v.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| m[(j, j)].partial_cmp(&m[(i, i)]).unwrap());
    let values: Vec<f64> = order.iter().map(|&i| m[(i, i)]).collect();
    let vectors = Matrix::from_fn(n, n, |r, c| v[(c, order[r])]);
    SymmetricEigen { values, vectors }
}

/// One-sided Jacobi SVD (Hestenes method).
///
/// Orthogonalizes the columns of `a` by plane rotations; on convergence the
/// column norms are the singular values, the normalized columns are `U`, and
/// the accumulated rotations give `V`. Works for `m >= n` and `m < n`
/// (the wide case is handled by transposing).
pub fn svd(a: &Matrix, tol: f64, max_sweeps: usize) -> Svd {
    if a.rows() < a.cols() {
        // Wide: decompose the transpose and swap factors.
        let t = svd(&a.transpose(), tol, max_sweeps);
        return Svd { u: t.vt.transpose(), sigma: t.sigma, vt: t.u.transpose() };
    }
    let (m, n) = a.shape();
    // Work on columns: store as column-major list of vectors for locality.
    let mut cols: Vec<Vec<f64>> = (0..n).map(|c| a.col(c)).collect();
    let mut v = Matrix::identity(n);

    for _ in 0..max_sweeps {
        let mut converged = true;
        for p in 0..n {
            for q in (p + 1)..n {
                let alpha = vector::dot(&cols[p], &cols[p]);
                let beta = vector::dot(&cols[q], &cols[q]);
                let gamma = vector::dot(&cols[p], &cols[q]);
                if gamma.abs() > tol * (alpha * beta).sqrt() && gamma.abs() > f64::MIN_POSITIVE {
                    converged = false;
                    let zeta = (beta - alpha) / (2.0 * gamma);
                    let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = c * t;
                    for k in 0..m {
                        let cp = cols[p][k];
                        let cq = cols[q][k];
                        cols[p][k] = c * cp - s * cq;
                        cols[q][k] = s * cp + c * cq;
                    }
                    for k in 0..n {
                        let vp = v[(k, p)];
                        let vq = v[(k, q)];
                        v[(k, p)] = c * vp - s * vq;
                        v[(k, q)] = s * vp + c * vq;
                    }
                }
            }
        }
        if converged {
            break;
        }
    }

    let mut sigma: Vec<f64> = cols.iter().map(|c| vector::norm2(c)).collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| sigma[j].partial_cmp(&sigma[i]).unwrap());
    let sigma_sorted: Vec<f64> = order.iter().map(|&i| sigma[i]).collect();
    sigma = sigma_sorted;

    let mut u = Matrix::zeros(m, n);
    for (new_c, &old_c) in order.iter().enumerate() {
        let nrm = sigma[new_c];
        for r in 0..m {
            u[(r, new_c)] = if nrm > 0.0 { cols[old_c][r] / nrm } else { 0.0 };
        }
    }
    let vt = Matrix::from_fn(n, n, |r, c| v[(c, order[r])]);
    Svd { u, sigma, vt }
}

/// Power iteration for the dominant eigenpair of a symmetric matrix.
///
/// Returns `(eigenvalue, eigenvector)`. The start vector is deterministic
/// (derived from `seed`), so results are reproducible. Converges when the
/// Rayleigh quotient stabilizes within `tol` or after `max_iters`.
///
/// # Panics
///
/// Panics if `a` is not square or is empty.
pub fn power_iteration(a: &Matrix, seed: u64, tol: f64, max_iters: usize) -> (f64, Vec<f64>) {
    assert_eq!(a.rows(), a.cols(), "power_iteration: matrix must be square");
    let n = a.rows();
    assert!(n > 0, "power_iteration: empty matrix");
    let mut rng = crate::rng::SplitMix64::new(seed);
    let mut x: Vec<f64> = (0..n).map(|_| rng.next_gaussian()).collect();
    vector::normalize(&mut x);
    let mut lambda = 0.0;
    for _ in 0..max_iters {
        let mut y = a.matvec(&x);
        let norm = vector::normalize(&mut y);
        if norm == 0.0 {
            // x was in the null space; restart from a fresh direction.
            for v in x.iter_mut() {
                *v = rng.next_gaussian();
            }
            vector::normalize(&mut x);
            continue;
        }
        let new_lambda = vector::dot(&y, &a.matvec(&y));
        x = y;
        if (new_lambda - lambda).abs() <= tol * new_lambda.abs().max(1.0) {
            lambda = new_lambda;
            break;
        }
        lambda = new_lambda;
    }
    (lambda, x)
}

/// Reconstructs `U diag(sigma) V^T`; used by tests and by callers that need
/// low-rank approximations.
pub fn reconstruct(svd: &Svd) -> Matrix {
    let k = svd.sigma.len();
    let mut us = svd.u.clone();
    for r in 0..us.rows() {
        for c in 0..k {
            us[(r, c)] *= svd.sigma[c];
        }
    }
    us.matmul(&svd.vt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    fn random_symmetric(seed: u64, n: usize) -> Matrix {
        let mut rng = SplitMix64::new(seed);
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let v = rng.next_gaussian();
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        a
    }

    #[test]
    fn eigen_of_diagonal() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 1.0]]);
        let e = symmetric_eigen(&a, 1e-12, 50);
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn eigen_reconstructs_matrix() {
        let a = random_symmetric(10, 8);
        let e = symmetric_eigen(&a, 1e-12, 100);
        // Rebuild V^T diag V and compare. vectors are rows.
        let n = a.rows();
        let mut recon = Matrix::zeros(n, n);
        for k in 0..n {
            let vk = e.vectors.row(k);
            for i in 0..n {
                for j in 0..n {
                    recon[(i, j)] += e.values[k] * vk[i] * vk[j];
                }
            }
        }
        assert!(recon.max_abs_diff(&a) < 1e-8, "diff {}", recon.max_abs_diff(&a));
    }

    #[test]
    fn eigen_vectors_are_orthonormal() {
        let a = random_symmetric(11, 6);
        let e = symmetric_eigen(&a, 1e-12, 100);
        for i in 0..6 {
            for j in 0..6 {
                let d = vector::dot(e.vectors.row(i), e.vectors.row(j));
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((d - expect).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn svd_reconstructs_tall_matrix() {
        let mut rng = SplitMix64::new(12);
        let a = Matrix::from_fn(9, 5, |_, _| rng.next_gaussian());
        let d = svd(&a, 1e-14, 60);
        assert!(reconstruct(&d).max_abs_diff(&a) < 1e-8);
    }

    #[test]
    fn svd_reconstructs_wide_matrix() {
        let mut rng = SplitMix64::new(13);
        let a = Matrix::from_fn(4, 11, |_, _| rng.next_gaussian());
        let d = svd(&a, 1e-14, 60);
        assert_eq!(d.u.shape(), (4, 4));
        assert_eq!(d.vt.shape(), (4, 11));
        assert!(reconstruct(&d).max_abs_diff(&a) < 1e-8);
    }

    #[test]
    fn svd_values_sorted_and_nonnegative() {
        let mut rng = SplitMix64::new(14);
        let a = Matrix::from_fn(10, 7, |_, _| rng.next_gaussian());
        let d = svd(&a, 1e-14, 60);
        for w in d.sigma.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert!(d.sigma.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn svd_matches_eigen_of_gram_matrix() {
        let mut rng = SplitMix64::new(15);
        let a = Matrix::from_fn(12, 6, |_, _| rng.next_gaussian());
        let d = svd(&a, 1e-14, 60);
        let gram = a.transpose().matmul(&a);
        let e = symmetric_eigen(&gram, 1e-12, 100);
        for k in 0..6 {
            let expect = e.values[k].max(0.0).sqrt();
            assert!((d.sigma[k] - expect).abs() < 1e-7, "k={k}");
        }
    }

    #[test]
    fn power_iteration_finds_top_eigenpair() {
        let a = random_symmetric(16, 10);
        // Shift to make it PSD-dominant so power iteration targets the max.
        let shifted = a.add(&{
            let mut i = Matrix::identity(10);
            i.scale_in_place(20.0);
            i
        });
        let e = symmetric_eigen(&shifted, 1e-12, 100);
        let (lam, vec) = power_iteration(&shifted, 7, 1e-12, 10_000);
        assert!((lam - e.values[0]).abs() < 1e-6, "lam {lam} vs {}", e.values[0]);
        // Eigenvector matches up to sign.
        let cos = vector::dot(&vec, e.vectors.row(0)).abs();
        assert!(cos > 1.0 - 1e-6, "cos {cos}");
    }

    #[test]
    fn svd_of_rank_one() {
        // a = u v^T has exactly one nonzero singular value = |u||v|.
        let u = [1.0, 2.0, 2.0];
        let v = [3.0, 4.0];
        let a = Matrix::from_fn(3, 2, |r, c| u[r] * v[c]);
        let d = svd(&a, 1e-14, 60);
        assert!((d.sigma[0] - 15.0).abs() < 1e-9); // |u|=3, |v|=5
        assert!(d.sigma[1].abs() < 1e-9);
    }
}
