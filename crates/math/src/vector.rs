//! Free functions over `&[f64]` slices.
//!
//! These are the innermost kernels of the workspace: dot products, norms and
//! axpy updates written as straight loops over slices so the compiler can
//! vectorize them. Per the perf-book guidance, all take `&[f64]` / `&mut
//! [f64]` rather than `&Vec<f64>`.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    // Four-way unrolled accumulation: breaks the sequential FP dependency
    // chain so LLVM can keep multiple FMAs in flight.
    let mut acc = [0.0f64; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let k = i * 4;
        acc[0] += a[k] * b[k];
        acc[1] += a[k + 1] * b[k + 1];
        acc[2] += a[k + 2] * b[k + 2];
        acc[3] += a[k + 3] * b[k + 3];
    }
    let mut tail = 0.0;
    for k in chunks * 4..a.len() {
        tail += a[k] * b[k];
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// Dot product as **one sequential ascending-index chain** — the
/// order-pinned counterpart of [`dot`]. Slower (a serial FP dependency
/// chain), but its accumulation order is exactly the ascending-k order the
/// GEMM determinism rule fixes, so tuned matmul paths that need bitwise
/// parity with the naive kernel must use this, never [`dot`].
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn dot_chain(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot_chain: length mismatch");
    let mut acc = 0.0f64;
    for (x, y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}

/// `y += alpha * x` (the BLAS `axpy` update).
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Scales a slice in place: `x *= alpha`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Euclidean (L2) norm.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// L1 norm (sum of absolute values).
#[inline]
pub fn norm1(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// L∞ norm (maximum absolute value); `0.0` for an empty slice.
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0, |m, v| m.max(v.abs()))
}

/// Euclidean distance between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "distance: length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

/// Normalizes `x` to unit L2 norm in place; leaves the zero vector unchanged.
///
/// Returns the original norm.
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = norm2(x);
    if n > 0.0 {
        scale(1.0 / n, x);
    }
    n
}

/// Element-wise addition into a fresh vector.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "add: length mismatch");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Element-wise subtraction into a fresh vector (`a - b`).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Index of the maximum element; `None` for an empty slice.
///
/// Ties resolve to the earliest index, and NaN entries are never selected
/// unless every entry is NaN (in which case index 0 is returned).
pub fn argmax(x: &[f64]) -> Option<usize> {
    if x.is_empty() {
        return None;
    }
    let mut best = 0;
    for (i, v) in x.iter().enumerate().skip(1) {
        if *v > x[best] || x[best].is_nan() {
            best = i;
        }
    }
    Some(best)
}

/// Index of the minimum element; `None` for an empty slice.
pub fn argmin(x: &[f64]) -> Option<usize> {
    if x.is_empty() {
        return None;
    }
    let mut best = 0;
    for (i, v) in x.iter().enumerate().skip(1) {
        if *v < x[best] || x[best].is_nan() {
            best = i;
        }
    }
    Some(best)
}

/// Numerically-stable softmax into a fresh vector.
///
/// Subtracts the maximum before exponentiating, so inputs of any magnitude
/// produce a valid probability vector.
pub fn softmax(x: &[f64]) -> Vec<f64> {
    if x.is_empty() {
        return Vec::new();
    }
    let m = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = x.iter().map(|v| (v - m).exp()).collect();
    let z: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / z).collect()
}

/// Kahan-compensated sum, for long accumulations where naive summation
/// would lose low-order bits.
pub fn kahan_sum(x: &[f64]) -> f64 {
    let mut sum = 0.0;
    let mut c = 0.0;
    for &v in x {
        let y = v - c;
        let t = sum + y;
        c = (t - sum) - y;
        sum = t;
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn dot_unrolled_matches_naive() {
        let a: Vec<f64> = (0..37).map(|i| i as f64 * 0.3).collect();
        let b: Vec<f64> = (0..37).map(|i| (i as f64).sin()).collect();
        let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - naive).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn dot_chain_is_the_sequential_order() {
        let a: Vec<f64> = (0..41).map(|i| (i as f64).cos() * 3.0).collect();
        let b: Vec<f64> = (0..41).map(|i| (i as f64).sin() - 0.5).collect();
        let mut seq = 0.0f64;
        for (x, y) in a.iter().zip(&b) {
            seq += x * y;
        }
        assert_eq!(dot_chain(&a, &b).to_bits(), seq.to_bits());
        assert_eq!(dot_chain(&[], &[]), 0.0);
    }

    #[test]
    fn axpy_updates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn norms() {
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(norm1(&[-1.0, 2.0]), 3.0);
        assert_eq!(norm_inf(&[-5.0, 2.0]), 5.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn normalize_unit() {
        let mut x = vec![3.0, 4.0];
        let n = normalize(&mut x);
        assert_eq!(n, 5.0);
        assert!((norm2(&x) - 1.0).abs() < 1e-12);
        let mut z = vec![0.0, 0.0];
        assert_eq!(normalize(&mut z), 0.0);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn argmax_argmin() {
        assert_eq!(argmax(&[1.0, 3.0, 2.0]), Some(1));
        assert_eq!(argmin(&[1.0, 3.0, 2.0]), Some(0));
        assert_eq!(argmax(&[]), None);
        // Ties pick first.
        assert_eq!(argmax(&[2.0, 2.0]), Some(0));
        // NaN never wins over a real value.
        assert_eq!(argmax(&[f64::NAN, 1.0]), Some(1));
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let p = softmax(&[1000.0, 1000.0, 999.0]);
        let s: f64 = p.iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
        assert!(p.iter().all(|v| v.is_finite()));
        assert!(p[0] > p[2]);
    }

    #[test]
    fn kahan_beats_naive_on_pathological_input() {
        // 1.0 followed by many tiny values that naive summation drops.
        let mut xs = vec![1.0];
        xs.extend(std::iter::repeat_n(1e-16, 10_000));
        let k = kahan_sum(&xs);
        assert!((k - (1.0 + 1e-12)).abs() < 1e-15);
    }

    #[test]
    fn distance_symmetric() {
        let a = [1.0, 2.0];
        let b = [4.0, 6.0];
        assert_eq!(distance(&a, &b), 5.0);
        assert_eq!(distance(&a, &b), distance(&b, &a));
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = [1.0, 2.0, 3.0];
        let b = [0.5, 0.25, 0.125];
        let s = add(&a, &b);
        let d = sub(&s, &b);
        for (x, y) in d.iter().zip(&a) {
            assert!((x - y).abs() < 1e-12);
        }
    }
}
