//! Principal component analysis.
//!
//! Used by the shape-atlas project (§2.11: "analyze the modes of variation
//! ... using principal component analysis") and by the trajectory and
//! robust-statistics crates. Computed from the eigendecomposition of the
//! sample covariance, which is exact and deterministic — preferable here to
//! randomized sketching since cohort-scale data is small.

use crate::decomp::{symmetric_eigen, SymmetricEigen};
use crate::matrix::Matrix;
use crate::stats;

/// A fitted PCA model.
#[derive(Debug, Clone)]
pub struct Pca {
    /// Column means of the training data (the model's origin).
    pub mean: Vec<f64>,
    /// Principal axes as rows, sorted by explained variance (descending).
    pub components: Matrix,
    /// Variance explained by each component (eigenvalues of the covariance).
    pub explained_variance: Vec<f64>,
}

impl Pca {
    /// Fits PCA to row-sample data (`n x d`), keeping `k` components.
    ///
    /// `k` is clamped to `min(d, n)` informative directions. With fewer
    /// than two samples all variances are zero and the components are the
    /// canonical basis. When `d > n` the fit uses the Gram-matrix trick
    /// (eigendecompose the `n x n` inner-product matrix instead of the
    /// `d x d` covariance), which keeps high-dimensional, few-sample fits —
    /// the shape-atlas regime — fast and exact.
    pub fn fit(samples: &Matrix, k: usize) -> Self {
        let (n, d) = samples.shape();
        let k = k.min(d);
        let mean = stats::column_means(samples);
        if n >= 2 && d > n {
            return Self::fit_gram(samples, mean, k);
        }
        let cov = stats::covariance_matrix(samples);
        let SymmetricEigen { values, vectors } = symmetric_eigen(&cov, 1e-12, 100);
        let components = Matrix::from_fn(k, d, |r, c| vectors[(r, c)]);
        let explained_variance = values.into_iter().take(k).map(|v| v.max(0.0)).collect();
        Self { mean, components, explained_variance }
    }

    /// Gram-trick fit for the `d > n` regime: the covariance has rank at
    /// most `n - 1`, and its nonzero eigenpairs are recoverable from the
    /// `n x n` matrix `X Xᵀ / (n-1)` of the centered data `X` as
    /// `λ_k` with feature-space directions `Xᵀ u_k / ‖Xᵀ u_k‖`.
    fn fit_gram(samples: &Matrix, mean: Vec<f64>, k: usize) -> Self {
        let (n, d) = samples.shape();
        let mut centered = samples.clone();
        for r in 0..n {
            let row = centered.row_mut(r);
            for (v, m) in row.iter_mut().zip(&mean) {
                *v -= m;
            }
        }
        let mut gram = centered.matmul(&centered.transpose());
        gram.scale_in_place(1.0 / (n - 1) as f64);
        let SymmetricEigen { values, vectors } = symmetric_eigen(&gram, 1e-12, 100);
        let k = k.min(n);
        let mut components = Matrix::zeros(k, d);
        let mut explained_variance = Vec::with_capacity(k);
        for r in 0..k {
            let lambda = values[r].max(0.0);
            explained_variance.push(lambda);
            // Feature-space direction: Xᵀ u_r, normalized.
            let u = vectors.row(r);
            let mut dir = vec![0.0; d];
            for (i, &ui) in u.iter().enumerate() {
                crate::vector::axpy(ui, centered.row(i), &mut dir);
            }
            crate::vector::normalize(&mut dir);
            components.row_mut(r).copy_from_slice(&dir);
        }
        Self { mean, components, explained_variance }
    }

    /// Number of retained components.
    pub fn n_components(&self) -> usize {
        self.components.rows()
    }

    /// Projects a single observation into component space.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the training dimension.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.mean.len(), "transform: dimension mismatch");
        let centered: Vec<f64> = x.iter().zip(&self.mean).map(|(v, m)| v - m).collect();
        self.components.matvec(&centered)
    }

    /// Projects every row of `samples`.
    pub fn transform_all(&self, samples: &Matrix) -> Matrix {
        let n = samples.rows();
        let k = self.n_components();
        let mut out = Matrix::zeros(n, k);
        for r in 0..n {
            let t = self.transform(samples.row(r));
            out.row_mut(r).copy_from_slice(&t);
        }
        out
    }

    /// Reconstructs an observation from its component-space coordinates.
    pub fn inverse_transform(&self, z: &[f64]) -> Vec<f64> {
        assert_eq!(z.len(), self.n_components(), "inverse_transform: dimension mismatch");
        let mut x = self.mean.clone();
        for (i, &zi) in z.iter().enumerate() {
            crate::vector::axpy(zi, self.components.row(i), &mut x);
        }
        x
    }

    /// Fraction of total variance explained by each retained component.
    ///
    /// Normalized by the *total* variance (sum over all `d` eigenvalues is
    /// unavailable after truncation, so this uses the retained sum — callers
    /// that need the global ratio should fit with `k = d`).
    pub fn explained_variance_ratio(&self) -> Vec<f64> {
        let total: f64 = self.explained_variance.iter().sum();
        if total <= 0.0 {
            return vec![0.0; self.explained_variance.len()];
        }
        self.explained_variance.iter().map(|v| v / total).collect()
    }

    /// Compactness curve: cumulative explained-variance ratio, the standard
    /// shape-model evaluation metric used by the §2.11 project.
    pub fn compactness(&self) -> Vec<f64> {
        let ratios = self.explained_variance_ratio();
        let mut acc = 0.0;
        ratios
            .into_iter()
            .map(|r| {
                acc += r;
                acc
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    /// Data concentrated along a single known direction.
    fn one_mode_data(seed: u64, n: usize) -> Matrix {
        let mut rng = SplitMix64::new(seed);
        let axis = [3.0 / 5.0, 4.0 / 5.0, 0.0];
        Matrix::from_fn(n, 3, |_, _| 0.0).clone_with(|m| {
            for r in 0..n {
                let t = rng.next_gaussian() * 5.0;
                let noise = [
                    rng.next_gaussian() * 0.01,
                    rng.next_gaussian() * 0.01,
                    rng.next_gaussian() * 0.01,
                ];
                for c in 0..3 {
                    m[(r, c)] = t * axis[c] + noise[c] + 10.0;
                }
            }
        })
    }

    trait CloneWith {
        fn clone_with(self, f: impl FnOnce(&mut Matrix)) -> Matrix;
    }
    impl CloneWith for Matrix {
        fn clone_with(mut self, f: impl FnOnce(&mut Matrix)) -> Matrix {
            f(&mut self);
            self
        }
    }

    #[test]
    fn recovers_dominant_axis() {
        let data = one_mode_data(42, 500);
        let pca = Pca::fit(&data, 3);
        let c0 = pca.components.row(0);
        let cos = (c0[0] * 0.6 + c0[1] * 0.8).abs();
        assert!(cos > 0.999, "cos {cos}");
        // First mode dominates.
        let ratio = pca.explained_variance_ratio();
        assert!(ratio[0] > 0.99, "ratio {:?}", ratio);
    }

    #[test]
    fn transform_then_inverse_is_identity_on_full_rank() {
        let data = one_mode_data(43, 100);
        let pca = Pca::fit(&data, 3);
        let x = data.row(7);
        let z = pca.transform(x);
        let back = pca.inverse_transform(&z);
        for (a, b) in x.iter().zip(&back) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn compactness_is_monotone_and_ends_at_one() {
        let data = one_mode_data(44, 200);
        let pca = Pca::fit(&data, 3);
        let c = pca.compactness();
        for w in c.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
        assert!((c.last().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn transform_all_shape() {
        let data = one_mode_data(45, 20);
        let pca = Pca::fit(&data, 2);
        let z = pca.transform_all(&data);
        assert_eq!(z.shape(), (20, 2));
    }

    #[test]
    fn degenerate_single_sample() {
        let data = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        let pca = Pca::fit(&data, 3);
        assert!(pca.explained_variance.iter().all(|&v| v == 0.0));
        assert_eq!(pca.transform(&[1.0, 2.0, 3.0]), vec![0.0; 3]);
    }
}
