//! GEMM planning: shape classes, blocking plans, and the installed-plan
//! table that `Matrix::matmul` dispatches through.
//!
//! The autotuner (`treu-autotune`) searches a schedule space per **shape
//! class** — a deterministic bucketing of `(m, k, n)` by size/aspect — and
//! installs the winning [`GemmPlan`] here. `Matrix::matmul` looks its
//! operands' class up at call time: hit → tuned cache-blocked kernel, miss
//! → the hand-written default plan for that class. Plans change only *how*
//! the loop nest is blocked and packed, never the per-output accumulation
//! order, so results are bitwise-identical for every plan (the ascending-k
//! rule; see DESIGN.md §14 and the conformance suite).
//!
//! The table is process-global mutable state, which is safe under the
//! workspace determinism rules precisely because of that invariant: a plan
//! swap can move wall-clock time, never a result bit.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{OnceLock, RwLock};

/// Size bucket for one GEMM extent. Boundaries are powers of two so the
/// bucket of a dimension is stable under small perturbations and the
/// bucket triple captures aspect (e.g. tall-skinny = `Large`/`Tiny`/...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SizeBucket {
    /// `0..16`
    Tiny,
    /// `16..64`
    Small,
    /// `64..256`
    Medium,
    /// `256..1024`
    Large,
    /// `1024..`
    Huge,
}

impl SizeBucket {
    /// Buckets one extent.
    pub fn of(extent: usize) -> Self {
        match extent {
            0..=15 => Self::Tiny,
            16..=63 => Self::Small,
            64..=255 => Self::Medium,
            256..=1023 => Self::Large,
            _ => Self::Huge,
        }
    }

    /// Single-letter tag used in class keys (`t`/`s`/`m`/`l`/`h`).
    pub fn tag(self) -> &'static str {
        match self {
            Self::Tiny => "t",
            Self::Small => "s",
            Self::Medium => "m",
            Self::Large => "l",
            Self::Huge => "h",
        }
    }

    /// Parses a tag written by [`SizeBucket::tag`].
    pub fn parse_tag(tag: &str) -> Option<Self> {
        match tag {
            "t" => Some(Self::Tiny),
            "s" => Some(Self::Small),
            "m" => Some(Self::Medium),
            "l" => Some(Self::Large),
            "h" => Some(Self::Huge),
            _ => None,
        }
    }

    /// A representative extent inside the bucket (used by `treu tune` to
    /// synthesize a workload for a class).
    pub fn representative(self) -> usize {
        match self {
            Self::Tiny => 8,
            Self::Small => 32,
            Self::Medium => 128,
            Self::Large => 320,
            Self::Huge => 1280,
        }
    }
}

/// Deterministic shape class of a GEMM `C[m×n] = A[m×k] · B[k×n]`: the
/// bucket triple of the three extents. This is the key tuned schedules are
/// stored and dispatched under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShapeClass {
    /// Bucket of the output row count `m`.
    pub m: SizeBucket,
    /// Bucket of the reduction depth `k`.
    pub k: SizeBucket,
    /// Bucket of the output column count `n`.
    pub n: SizeBucket,
}

impl ShapeClass {
    /// Classifies a GEMM by its three extents.
    pub fn of(m: usize, k: usize, n: usize) -> Self {
        Self { m: SizeBucket::of(m), k: SizeBucket::of(k), n: SizeBucket::of(n) }
    }

    /// Stable three-letter key (`m` tag, `k` tag, `n` tag), e.g. `"mml"`.
    /// This string is what the schedule book persists under.
    pub fn key(&self) -> String {
        format!("{}{}{}", self.m.tag(), self.k.tag(), self.n.tag())
    }

    /// Parses a key written by [`ShapeClass::key`].
    pub fn parse_key(key: &str) -> Option<Self> {
        let mut it = key.chars();
        let (a, b, c) = (it.next()?, it.next()?, it.next()?);
        if it.next().is_some() {
            return None;
        }
        Some(Self {
            m: SizeBucket::parse_tag(&a.to_string())?,
            k: SizeBucket::parse_tag(&b.to_string())?,
            n: SizeBucket::parse_tag(&c.to_string())?,
        })
    }

    /// A representative `(m, k, n)` inside the class, for tuning workloads.
    pub fn representative(&self) -> (usize, usize, usize) {
        (self.m.representative(), self.k.representative(), self.n.representative())
    }
}

/// A concrete blocking plan for the GEMM loop nest: NC-wide packed B
/// strips, MC-tall row blocks, KC-deep reduction panels, and an NR-wide
/// register microkernel. `threads` is the band-parallel worker count.
///
/// Every plan computes the bitwise-identical result: blocking reorders the
/// i/j traversal and the packing only; each output element's reduction is
/// always one ascending-k chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmPlan {
    /// Row-block height (output rows per C block held hot across KC panels).
    pub mc: usize,
    /// Reduction panel depth (k extent per accumulation pass).
    pub kc: usize,
    /// Packed B strip width (output columns per pass).
    pub nc: usize,
    /// Microkernel width: independent per-element accumulator chains kept
    /// in registers. Normalized to {1, 2, 4, 8, 16}.
    pub nr: usize,
    /// Worker threads for the row-band outer loop.
    pub threads: usize,
}

/// Supported microkernel widths, largest first.
pub const NR_CHOICES: [usize; 5] = [16, 8, 4, 2, 1];

impl GemmPlan {
    /// The degenerate single-block plan: one strip, one panel, scalar
    /// microkernel. Useful as a worst-case anchor in tuning sweeps.
    pub fn naive() -> Self {
        Self { mc: usize::MAX, kc: usize::MAX, nc: usize::MAX, nr: 1, threads: 1 }
    }

    /// Hand-written default for a shape class — what a miss in the plan
    /// table dispatches to. Small shapes run as a single block (blocking
    /// overhead would dominate); larger shapes get a compact packed panel
    /// (~72 KiB of B, comfortably L2-resident) and the widest microkernel,
    /// whose sixteen independent per-element chains keep the vector units
    /// fed without touching the ascending-k reduction order.
    pub fn default_for(class: ShapeClass) -> Self {
        let small = |b: SizeBucket| b <= SizeBucket::Small;
        if small(class.m) && small(class.k) && small(class.n) {
            Self { mc: usize::MAX, kc: usize::MAX, nc: usize::MAX, nr: 16, threads: 1 }
        } else {
            Self { mc: 64, kc: 96, nc: 96, nr: 16, threads: 1 }
        }
    }

    /// Clamps block extents into `[1, dim]` and normalizes `nr` to the
    /// nearest supported width at or below the requested one.
    pub fn clamped(mut self, m: usize, k: usize, n: usize) -> Self {
        self.mc = self.mc.clamp(1, m.max(1));
        self.kc = self.kc.clamp(1, k.max(1));
        self.nc = self.nc.clamp(1, n.max(1));
        self.nr = NR_CHOICES.iter().copied().find(|&w| w <= self.nr.max(1)).unwrap_or(1);
        self.threads = self.threads.max(1);
        self
    }

    /// The same plan with a different worker count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The same plan forced single-threaded.
    pub fn sequential(self) -> Self {
        self.with_threads(1)
    }
}

/// Output-element count below which `matmul_parallel` runs sequentially
/// when no measured crossover has been installed. The historical constant:
/// spawn overhead dominates under ~64×64 outputs on typical hardware.
pub const FALLBACK_PARALLEL_CROSSOVER: usize = 64 * 64;

static PLAN_TABLE: OnceLock<RwLock<BTreeMap<ShapeClass, GemmPlan>>> = OnceLock::new();
// 0 means "not measured": parallel_crossover() then reports the fallback.
static PARALLEL_CROSSOVER: AtomicUsize = AtomicUsize::new(0);

fn table() -> &'static RwLock<BTreeMap<ShapeClass, GemmPlan>> {
    PLAN_TABLE.get_or_init(|| RwLock::new(BTreeMap::new()))
}

/// Installs (or replaces) the tuned plan for a shape class.
pub fn install_plan(class: ShapeClass, plan: GemmPlan) {
    table().write().expect("plan table poisoned").insert(class, plan);
}

/// The installed plan for a class, if any.
pub fn installed_plan(class: ShapeClass) -> Option<GemmPlan> {
    table().read().expect("plan table poisoned").get(&class).copied()
}

/// The plan `matmul` dispatches to for a class: the installed (tuned) plan
/// if present, else the hand-written default.
pub fn plan_for(class: ShapeClass) -> GemmPlan {
    installed_plan(class).unwrap_or_else(|| GemmPlan::default_for(class))
}

/// Snapshot of every installed plan, in class order.
pub fn installed_plans() -> Vec<(ShapeClass, GemmPlan)> {
    table().read().expect("plan table poisoned").iter().map(|(c, p)| (*c, *p)).collect()
}

/// Clears all installed plans (test isolation / `treu tune --reset`).
pub fn clear_installed_plans() {
    table().write().expect("plan table poisoned").clear();
}

/// Installs the measured spawn-overhead crossover: the output-element
/// count at which band-parallel GEMM starts beating sequential. `0`
/// clears the measurement (back to the fallback constant).
pub fn install_parallel_crossover(min_output_elems: usize) {
    PARALLEL_CROSSOVER.store(min_output_elems, Ordering::SeqCst);
}

/// The crossover `matmul_parallel` gates on: the installed measurement if
/// one exists, else [`FALLBACK_PARALLEL_CROSSOVER`].
pub fn parallel_crossover() -> usize {
    match PARALLEL_CROSSOVER.load(Ordering::SeqCst) {
        0 => FALLBACK_PARALLEL_CROSSOVER,
        v => v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_have_stable_boundaries() {
        assert_eq!(SizeBucket::of(0), SizeBucket::Tiny);
        assert_eq!(SizeBucket::of(15), SizeBucket::Tiny);
        assert_eq!(SizeBucket::of(16), SizeBucket::Small);
        assert_eq!(SizeBucket::of(63), SizeBucket::Small);
        assert_eq!(SizeBucket::of(64), SizeBucket::Medium);
        assert_eq!(SizeBucket::of(255), SizeBucket::Medium);
        assert_eq!(SizeBucket::of(256), SizeBucket::Large);
        assert_eq!(SizeBucket::of(1023), SizeBucket::Large);
        assert_eq!(SizeBucket::of(1024), SizeBucket::Huge);
    }

    #[test]
    fn class_key_roundtrips() {
        for (m, k, n) in [(1, 1, 1), (17, 64, 1000), (256, 8, 2048), (128, 128, 128)] {
            let c = ShapeClass::of(m, k, n);
            assert_eq!(ShapeClass::parse_key(&c.key()), Some(c), "key {}", c.key());
        }
        assert_eq!(ShapeClass::of(128, 128, 128).key(), "mmm");
        assert_eq!(ShapeClass::of(300, 8, 64).key(), "ltm");
        assert!(ShapeClass::parse_key("xx").is_none());
        assert!(ShapeClass::parse_key("mmmm").is_none());
        assert!(ShapeClass::parse_key("mxm").is_none());
    }

    #[test]
    fn representatives_land_in_their_own_bucket() {
        for b in [
            SizeBucket::Tiny,
            SizeBucket::Small,
            SizeBucket::Medium,
            SizeBucket::Large,
            SizeBucket::Huge,
        ] {
            assert_eq!(SizeBucket::of(b.representative()), b);
        }
    }

    #[test]
    fn clamping_normalizes_plans() {
        let p = GemmPlan { mc: 0, kc: 1000, nc: 7, nr: 5, threads: 0 }.clamped(10, 20, 30);
        assert_eq!(p, GemmPlan { mc: 1, kc: 20, nc: 7, nr: 4, threads: 1 });
        let q = GemmPlan::naive().clamped(3, 4, 5);
        assert_eq!((q.mc, q.kc, q.nc, q.nr), (3, 4, 5, 1));
        // nr snaps down to a supported width.
        for (want, got) in [(1, 1), (2, 2), (3, 2), (4, 4), (7, 4), (8, 8), (100, 16)] {
            let p = GemmPlan { mc: 1, kc: 1, nc: 1, nr: want, threads: 1 }.clamped(1, 1, 1);
            assert_eq!(p.nr, got, "nr {want}");
        }
    }

    #[test]
    fn plan_table_roundtrip_and_fallback() {
        // A class no other test tunes, so parallel test execution can't race.
        let class = ShapeClass { m: SizeBucket::Huge, k: SizeBucket::Tiny, n: SizeBucket::Huge };
        assert_eq!(plan_for(class), GemmPlan::default_for(class));
        let tuned = GemmPlan { mc: 32, kc: 128, nc: 512, nr: 8, threads: 2 };
        install_plan(class, tuned);
        assert_eq!(installed_plan(class), Some(tuned));
        assert_eq!(plan_for(class), tuned);
        assert!(installed_plans().iter().any(|&(c, p)| c == class && p == tuned));
    }

    #[test]
    fn crossover_defaults_and_installs() {
        // Serialized within this test: install, observe, restore.
        assert!(parallel_crossover() >= 1);
        install_parallel_crossover(1234);
        assert_eq!(parallel_crossover(), 1234);
        install_parallel_crossover(0);
        assert_eq!(parallel_crossover(), FALLBACK_PARALLEL_CROSSOVER);
    }

    #[test]
    fn default_plans_are_single_block_for_small_shapes() {
        let tiny = GemmPlan::default_for(ShapeClass::of(8, 8, 8));
        assert_eq!(tiny.nc, usize::MAX);
        let big = GemmPlan::default_for(ShapeClass::of(512, 512, 512));
        assert!(big.nc < usize::MAX && big.threads == 1);
    }
}
