//! Deterministic random-number utilities.
//!
//! Reproducibility in TREU rests on one discipline: every source of
//! randomness is an explicitly seeded generator, and sub-components derive
//! their own independent streams from a parent seed plus a textual tag. This
//! module provides that derivation ([`derive_seed`]) plus a small,
//! well-understood generator ([`SplitMix64`]) used throughout the
//! workspace as the sole source of randomness.

/// A [SplitMix64](https://prng.di.unimi.it/splitmix64.c) generator.
///
/// SplitMix64 passes BigCrush, is trivially seedable from a single `u64`,
/// and — crucially for reproducibility — has a specification small enough to
/// re-derive from this file alone. TREU uses it for seed derivation and for
/// inner loops where constructing a `StdRng` would dominate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator with the given seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a float uniformly distributed in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits scaled into [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns an integer uniformly distributed in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method; unbiased for every
    /// `bound > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= (bound.wrapping_neg() % bound) {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a standard normal deviate via the Box–Muller transform.
    pub fn next_gaussian(&mut self) -> f64 {
        // Draw u1 in (0,1] so the log is finite.
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

/// Derives an independent child seed from a parent seed and a textual tag.
///
/// The derivation is an FNV-1a hash of the tag folded into a SplitMix64
/// scramble of the parent. Distinct tags yield (with overwhelming
/// probability) statistically independent streams, so components can be
/// added or reordered without perturbing each other's randomness — the core
/// requirement for stable, reviewable experiment provenance.
///
/// ```
/// use treu_math::rng::derive_seed;
/// assert_ne!(derive_seed(42, "weights"), derive_seed(42, "data"));
/// assert_eq!(derive_seed(42, "weights"), derive_seed(42, "weights"));
/// ```
pub fn derive_seed(parent: u64, tag: &str) -> u64 {
    let h = crate::hash::fnv64(tag.as_bytes());
    let mut mix = SplitMix64::new(parent ^ h);
    mix.next_u64()
}

/// Expands a 64-bit seed into a 32-byte key with SplitMix64, matching the
/// seeding approach recommended by the xoshiro authors. Useful when a
/// component needs more seed material than one `u64`.
pub fn expand_seed(seed: u64) -> [u8; 32] {
    let mut mix = SplitMix64::new(seed);
    let mut bytes = [0u8; 32];
    for chunk in bytes.chunks_exact_mut(8) {
        chunk.copy_from_slice(&mix.next_u64().to_le_bytes());
    }
    bytes
}

/// Fills `out` with i.i.d. standard normal deviates from `rng`.
pub fn fill_gaussian(rng: &mut SplitMix64, out: &mut [f64]) {
    for v in out {
        *v = rng.next_gaussian();
    }
}

/// Fills `out` with i.i.d. `U[lo, hi)` deviates from `rng`.
pub fn fill_uniform(rng: &mut SplitMix64, out: &mut [f64], lo: f64, hi: f64) {
    debug_assert!(hi >= lo);
    for v in out {
        *v = lo + (hi - lo) * rng.next_f64();
    }
}

/// Produces a random permutation of `0..n` (Fisher–Yates).
pub fn permutation(rng: &mut SplitMix64, n: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.next_bounded(i as u64 + 1) as usize;
        idx.swap(i, j);
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // First outputs of splitmix64 with seed 0, from the reference C code.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SplitMix64::new(123);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_bounded_is_in_range_and_hits_all_values() {
        let mut r = SplitMix64::new(7);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = r.next_bounded(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_bounded_zero_panics() {
        SplitMix64::new(1).next_bounded(0);
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut r = SplitMix64::new(99);
        let n = 100_000;
        let (mut sum, mut sumsq) = (0.0, 0.0);
        for _ in 0..n {
            let x = r.next_gaussian();
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn derive_seed_distinct_tags() {
        let s = 42;
        let a = derive_seed(s, "a");
        let b = derive_seed(s, "b");
        let c = derive_seed(s, "ab");
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn derive_seed_depends_on_parent() {
        assert_ne!(derive_seed(1, "x"), derive_seed(2, "x"));
    }

    #[test]
    fn expand_seed_deterministic_and_seed_sensitive() {
        assert_eq!(expand_seed(5), expand_seed(5));
        assert_ne!(expand_seed(5), expand_seed(6));
        // The expansion is not the identity embedding of the seed.
        assert_ne!(&expand_seed(0)[..8], &0u64.to_le_bytes()[..]);
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut r = SplitMix64::new(3);
        let p = permutation(&mut r, 100);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fill_uniform_respects_bounds() {
        let mut r = SplitMix64::new(11);
        let mut buf = vec![0.0; 1000];
        fill_uniform(&mut r, &mut buf, -2.0, 3.0);
        assert!(buf.iter().all(|&x| (-2.0..3.0).contains(&x)));
    }
}
