//! Parallel performance measurement — the paper's reusable lesson module
//! ("one on how to conduct performance measurement of parallel
//! computations", §4) as a library.
//!
//! Three pieces: [`measure_speedup`] runs a workload at increasing thread
//! counts with repetition-minimum timing (the standard defence against
//! scheduler noise); [`fit_amdahl`] fits Amdahl's law
//! `S(t) = 1 / (f + (1-f)/t)` to a measured curve by one-dimensional
//! search over the serial fraction `f`; and [`amdahl_speedup`] evaluates
//! the model for lesson plots.

use std::time::Instant;

/// Amdahl's-law speedup at `threads` for serial fraction `f`.
pub fn amdahl_speedup(f: f64, threads: usize) -> f64 {
    assert!((0.0..=1.0).contains(&f), "serial fraction must be in [0,1]");
    assert!(threads >= 1, "need at least one thread");
    1.0 / (f + (1.0 - f) / threads as f64)
}

/// One measured point of a scaling curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingPoint {
    /// Worker threads used.
    pub threads: usize,
    /// Best-of-repetitions wall time in seconds.
    pub seconds: f64,
    /// Speedup relative to the measured single-thread time.
    pub speedup: f64,
}

/// Measures a workload's speedup curve over the given thread counts.
///
/// `workload(threads)` must perform the same total work regardless of
/// `threads`. Each point is the minimum of `reps` runs — minimum, not
/// mean, because timing noise is strictly additive.
///
/// # Panics
///
/// Panics if `thread_counts` does not start with 1 (the baseline) or
/// `reps == 0`.
pub fn measure_speedup(
    thread_counts: &[usize],
    reps: usize,
    mut workload: impl FnMut(usize),
) -> Vec<ScalingPoint> {
    assert!(thread_counts.first() == Some(&1), "curve must start at 1 thread");
    assert!(reps > 0, "need at least one repetition");
    let mut points = Vec::with_capacity(thread_counts.len());
    let mut t1 = 0.0;
    for &t in thread_counts {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            // treu-lint: allow(wall-clock, reason = "speedup measurement is inherently wall-clock")
            let start = Instant::now();
            workload(t);
            best = best.min(start.elapsed().as_secs_f64());
        }
        if t == 1 {
            t1 = best;
        }
        points.push(ScalingPoint { threads: t, seconds: best, speedup: t1 / best.max(1e-12) });
    }
    points
}

/// Fits the serial fraction `f` of Amdahl's law to a measured curve by
/// golden-section search on the squared error of log-speedups.
///
/// Returns `(f, rmse)`; `f = 0` is perfect scaling, `f = 1` no scaling.
pub fn fit_amdahl(points: &[ScalingPoint]) -> (f64, f64) {
    assert!(!points.is_empty(), "no points to fit");
    let err = |f: f64| -> f64 {
        points
            .iter()
            .map(|p| {
                let model = amdahl_speedup(f, p.threads);
                let d = p.speedup.max(1e-9).ln() - model.ln();
                d * d
            })
            .sum::<f64>()
            / points.len() as f64
    };
    // Golden-section search over f in [0, 1].
    let phi = (5.0f64.sqrt() - 1.0) / 2.0;
    let (mut a, mut b) = (0.0f64, 1.0f64);
    let mut c = b - phi * (b - a);
    let mut d = a + phi * (b - a);
    for _ in 0..100 {
        if err(c) < err(d) {
            b = d;
        } else {
            a = c;
        }
        c = b - phi * (b - a);
        d = a + phi * (b - a);
    }
    let f = (a + b) / 2.0;
    (f, err(f).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amdahl_endpoints() {
        assert_eq!(amdahl_speedup(1.0, 64), 1.0);
        assert_eq!(amdahl_speedup(0.0, 8), 8.0);
        assert!((amdahl_speedup(0.5, 2) - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "serial fraction")]
    fn bad_fraction_panics() {
        amdahl_speedup(1.5, 2);
    }

    #[test]
    fn fit_recovers_known_fraction() {
        for true_f in [0.05, 0.2, 0.5] {
            let points: Vec<ScalingPoint> = [1usize, 2, 4, 8, 16]
                .iter()
                .map(|&t| ScalingPoint {
                    threads: t,
                    seconds: 1.0 / amdahl_speedup(true_f, t),
                    speedup: amdahl_speedup(true_f, t),
                })
                .collect();
            let (f, rmse) = fit_amdahl(&points);
            assert!((f - true_f).abs() < 0.01, "f {f} vs true {true_f}");
            assert!(rmse < 1e-6);
        }
    }

    #[test]
    fn measure_speedup_runs_and_baselines() {
        // A workload whose runtime genuinely falls with threads: parallel
        // sum via this crate's own par_reduce.
        let points = measure_speedup(&[1, 2], 3, |t| {
            let s = crate::parallel::par_reduce(200_000, t, 0u64, |i| i as u64, |a, b| a + b);
            assert!(s > 0);
        });
        assert_eq!(points.len(), 2);
        assert!((points[0].speedup - 1.0).abs() < 1e-9, "baseline speedup is 1");
        assert!(points.iter().all(|p| p.seconds > 0.0));
    }

    #[test]
    #[should_panic(expected = "start at 1 thread")]
    fn missing_baseline_panics() {
        measure_speedup(&[2, 4], 1, |_| {});
    }

    #[test]
    fn fit_handles_noisy_curves() {
        // Perturb a true curve by ±5%; the fit should stay close.
        let noise = [1.03, 0.97, 1.04, 0.96];
        let points: Vec<ScalingPoint> = [1usize, 2, 4, 8]
            .iter()
            .zip(noise.iter())
            .map(|(&t, &n)| {
                let s = amdahl_speedup(0.1, t) * n;
                ScalingPoint { threads: t, seconds: 1.0 / s, speedup: s }
            })
            .collect();
        let (f, _) = fit_amdahl(&points);
        assert!((f - 0.1).abs() < 0.06, "f {f}");
    }
}
