//! Crossbeam-scoped data-parallel helpers.
//!
//! The HPC guides for this workspace present two idioms: rayon-style
//! parallel iterators, and scoped threads over disjoint chunks. The offline
//! dependency set includes crossbeam but not rayon, so this module provides
//! the scoped-chunk equivalent: split a buffer (or an index range) into
//! bands, hand each band to a scoped worker, and join. Workers own disjoint
//! `&mut` regions, so the compiler proves data-race freedom — no locks, no
//! atomics on the hot path.
//!
//! Two scheduling policies are provided for index-range maps:
//!
//! * **static** ([`par_map`]) — contiguous bands, one per worker, fixed up
//!   front. Zero coordination, but a worker whose band holds the expensive
//!   items becomes the critical path while the others idle.
//! * **dynamic** ([`par_map_dynamic`]) — a self-scheduling work queue:
//!   workers repeatedly claim the next chunk of indices from a shared
//!   atomic counter, compute out of order, and the results are merged back
//!   in **index order** after the join. Output is therefore bitwise
//!   identical to the sequential map regardless of which worker computed
//!   what, or in what order — scheduling moves wall-clock time, never
//!   results.
//!
//! Both are deterministic in the only sense that matters here (output ==
//! sequential output); dynamic additionally keeps workers busy under
//! skewed per-item costs, and reports per-worker load via [`SchedStats`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Splits `buf` into `threads` near-equal bands of whole rows (each row is
/// `row_len` elements) and runs `f(first_row_index, band)` on each band in
/// its own scoped thread.
///
/// Bands are maximal prefixes: band `t` starts at row
/// `t * ceil(rows / threads)`. If `buf` is empty or `threads <= 1`, `f` runs
/// inline on the whole buffer.
///
/// # Panics
///
/// Panics if `row_len == 0` or `buf.len()` is not a multiple of `row_len`.
pub fn for_each_band(
    buf: &mut [f64],
    row_len: usize,
    threads: usize,
    f: impl Fn(usize, &mut [f64]) + Sync,
) {
    assert!(row_len > 0, "row_len must be positive");
    assert_eq!(buf.len() % row_len, 0, "buffer not a whole number of rows");
    let rows = buf.len() / row_len;
    if threads <= 1 || rows <= 1 {
        f(0, buf);
        return;
    }
    let band_rows = rows.div_ceil(threads);
    crossbeam::scope(|s| {
        let mut rest = buf;
        let mut row0 = 0;
        while !rest.is_empty() {
            let take = (band_rows * row_len).min(rest.len());
            let (band, tail) = rest.split_at_mut(take);
            let fr = &f;
            let start = row0;
            s.spawn(move |_| fr(start, band));
            row0 += take / row_len;
            rest = tail;
        }
    })
    .expect("parallel band worker panicked");
}

/// Applies `f` to every index in `0..n` across `threads` scoped workers and
/// collects the results in index order — **static** scheduling.
///
/// Work is split into contiguous ranges, one per worker; each worker fills
/// its own disjoint band of `Option<T>` slots, so any `Send` result type
/// works (no `Default + Clone` required). Deterministic: output order
/// never depends on thread scheduling.
pub fn par_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let band = n.div_ceil(threads);
    crossbeam::scope(|s| {
        let mut rest = out.as_mut_slice();
        let mut i0 = 0;
        while !rest.is_empty() {
            let take = band.min(rest.len());
            let (chunk, tail) = rest.split_at_mut(take);
            let fr = &f;
            let start = i0;
            s.spawn(move |_| {
                for (k, slot) in chunk.iter_mut().enumerate() {
                    *slot = Some(fr(start + k));
                }
            });
            i0 += take;
            rest = tail;
        }
    })
    .expect("parallel map worker panicked");
    out.into_iter().map(|o| o.expect("worker filled every slot")).collect()
}

/// Alias of [`par_map`], kept for callers written against the old split
/// API (`par_map` once required `T: Default + Clone`; this was the
/// unbounded variant before the two merged).
pub fn par_map_into<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_map(n, threads, f)
}

/// Per-worker load accounting for one [`par_map_dynamic_stats`] call.
///
/// Busy seconds are measured inside each worker (claim loop entry to
/// exit), so the vector exposes load imbalance directly: a static
/// schedule over skewed costs shows one hot worker and idle peers, a
/// dynamic schedule shows near-equal entries. Timing is environment, not
/// result — nothing here feeds fingerprints.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedStats {
    /// Workers actually spawned (≤ the requested thread count; never more
    /// than the number of chunks).
    pub workers: usize,
    /// Chunk size used (indices claimed per atomic increment).
    pub chunk: usize,
    /// Per-worker busy seconds, in worker-spawn order.
    pub busy_seconds: Vec<f64>,
    /// Per-worker count of chunks claimed.
    pub chunks_claimed: Vec<usize>,
    /// Per-worker count of items computed.
    pub items: Vec<usize>,
}

impl SchedStats {
    fn sequential(n: usize, chunk: usize, busy: f64) -> Self {
        Self {
            workers: 1,
            chunk,
            busy_seconds: vec![busy],
            chunks_claimed: vec![n.div_ceil(chunk.max(1))],
            items: vec![n],
        }
    }

    /// Sum of per-worker busy seconds — the measured parallel cost.
    pub fn total_busy_seconds(&self) -> f64 {
        self.busy_seconds.iter().sum()
    }

    /// Busiest worker's seconds.
    pub fn max_busy_seconds(&self) -> f64 {
        self.busy_seconds.iter().copied().fold(0.0, f64::max)
    }

    /// Least-busy worker's seconds.
    pub fn min_busy_seconds(&self) -> f64 {
        self.busy_seconds.iter().copied().fold(f64::INFINITY, f64::min).min(self.max_busy_seconds())
    }

    /// Load-imbalance ratio: busiest over least-busy worker (1.0 =
    /// perfectly balanced; large = one worker was the critical path).
    pub fn imbalance_ratio(&self) -> f64 {
        let max = self.max_busy_seconds();
        let min = self.min_busy_seconds();
        if max <= 0.0 {
            return 1.0;
        }
        max / min.max(1e-12)
    }

    /// Worker utilization against a measured batch wall time: total busy
    /// seconds over `workers * wall` (1.0 = no idle time anywhere).
    pub fn utilization(&self, wall_seconds: f64) -> f64 {
        if self.workers == 0 || wall_seconds <= 0.0 {
            return 0.0;
        }
        (self.total_busy_seconds() / (self.workers as f64 * wall_seconds)).clamp(0.0, 1.0)
    }
}

/// Chunk size for [`par_map_dynamic`]: aims for ~8 claims per worker, so
/// imbalance is bounded by roughly an eighth of a static band while the
/// shared counter is touched rarely enough not to matter. Always ≥ 1.
pub fn adaptive_chunk(n: usize, threads: usize) -> usize {
    (n / (threads.max(1) * 8)).max(1)
}

/// Cache-line size the false-sharing floor pads against.
pub const CACHE_LINE_BYTES: usize = 64;

/// [`adaptive_chunk`] with a **false-sharing floor** for small elements:
/// when more than one worker will run, the chunk never goes below one
/// cache line's worth of `elem_bytes`-sized results (8 for `f64`/`u64`),
/// so two workers claiming adjacent chunks are never both writing into
/// the same 64-byte line of the merged output slab. Larger elements
/// (`elem_bytes >= 64`, or `0` for unsized/indirect results) get no extra
/// floor — each result already spans a full line.
///
/// Only wall-clock time depends on the chunk size; the index-ordered merge
/// keeps results bitwise-identical either way.
pub fn adaptive_chunk_sized(n: usize, threads: usize, elem_bytes: usize) -> usize {
    let base = adaptive_chunk(n, threads);
    // One worker (or one item per worker anyway) cannot false-share.
    if threads.max(1) == 1 {
        return base;
    }
    let floor = match elem_bytes {
        0 => 1,
        b => CACHE_LINE_BYTES.div_ceil(b),
    };
    base.max(floor)
}

/// Applies `f` to every index in `0..n` with **deterministic dynamic
/// scheduling**: workers claim chunks of indices from a shared atomic
/// counter (so expensive items never strand their band-mates on one
/// worker), compute out of order, and results are merged back in index
/// order after the join.
///
/// The output is bitwise-identical to `(0..n).map(f).collect()` for every
/// thread count and chunk size — only wall-clock time depends on the
/// schedule. Chunk size is chosen by [`adaptive_chunk_sized`] with the
/// result type's size, so small-element maps (`f64`, `u64`) never hand two
/// workers chunks that land in the same cache line of the output.
pub fn par_map_dynamic<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let chunk = adaptive_chunk_sized(n, threads, std::mem::size_of::<T>());
    par_map_dynamic_stats(n, threads, chunk, f).0
}

/// [`par_map_dynamic`] with an explicit chunk size, returning per-worker
/// [`SchedStats`] alongside the (index-ordered, scheduling-independent)
/// results.
///
/// # Panics
///
/// Panics if `chunk == 0`.
pub fn par_map_dynamic_stats<T, F>(
    n: usize,
    threads: usize,
    chunk: usize,
    f: F,
) -> (Vec<T>, SchedStats)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(chunk > 0, "chunk size must be positive");
    if threads <= 1 || n <= 1 {
        // treu-lint: allow(wall-clock, reason = "per-worker busy time is report-only load accounting")
        let t0 = Instant::now();
        let out: Vec<T> = (0..n).map(f).collect();
        return (out, SchedStats::sequential(n, chunk, t0.elapsed().as_secs_f64()));
    }
    // Each worker returns (claimed parts, chunks claimed, busy seconds);
    // parts carry their start index so the merge below is order-free.
    type WorkerYield<T> = (Vec<(usize, Vec<T>)>, usize, f64);
    // Never spawn more workers than there are chunks to claim.
    let workers = threads.min(n.div_ceil(chunk)).max(1);
    let counter = AtomicUsize::new(0);
    let mut per_worker: Vec<WorkerYield<T>> = Vec::with_capacity(workers);
    crossbeam::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let fr = &f;
                let ctr = &counter;
                s.spawn(move |_| {
                    // treu-lint: allow(wall-clock, reason = "per-worker busy time is report-only load accounting")
                    let t0 = Instant::now();
                    let mut parts: Vec<(usize, Vec<T>)> = Vec::new();
                    let mut claimed = 0usize;
                    loop {
                        let start = ctr.fetch_add(chunk, Ordering::SeqCst);
                        if start >= n {
                            break;
                        }
                        let end = (start + chunk).min(n);
                        parts.push((start, (start..end).map(fr).collect()));
                        claimed += 1;
                    }
                    (parts, claimed, t0.elapsed().as_secs_f64())
                })
            })
            .collect();
        for h in handles {
            per_worker.push(h.join().expect("dynamic map worker panicked"));
        }
    })
    .expect("dynamic map scope failed");
    // Index-ordered merge: placement depends only on each part's start
    // index, so completion order cannot influence the output.
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let mut stats = SchedStats {
        workers,
        chunk,
        busy_seconds: Vec::with_capacity(workers),
        chunks_claimed: Vec::with_capacity(workers),
        items: Vec::with_capacity(workers),
    };
    for (parts, claimed, busy) in per_worker {
        stats.items.push(parts.iter().map(|(_, vals)| vals.len()).sum());
        stats.chunks_claimed.push(claimed);
        stats.busy_seconds.push(busy);
        for (start, vals) in parts {
            for (k, v) in vals.into_iter().enumerate() {
                slots[start + k] = Some(v);
            }
        }
    }
    let out = slots.into_iter().map(|o| o.expect("every index claimed exactly once")).collect();
    (out, stats)
}

/// Reduces `0..n` with `map` then `combine`, in parallel, with a
/// deterministic combination order (band 0 first, then band 1, ...).
///
/// `combine` must be associative for the result to equal the sequential
/// reduction; TREU uses this only for associative-and-commutative folds
/// (sums, maxima, counts).
pub fn par_reduce<T, M, C>(n: usize, threads: usize, identity: T, map: M, combine: C) -> T
where
    T: Send + Clone,
    M: Fn(usize) -> T + Sync,
    C: Fn(T, T) -> T + Send + Sync,
{
    if threads <= 1 || n <= 1 {
        let mut acc = identity;
        for i in 0..n {
            acc = combine(acc, map(i));
        }
        return acc;
    }
    let band = n.div_ceil(threads);
    let mut partials: Vec<Option<T>> = Vec::new();
    crossbeam::scope(|s| {
        let mut handles = Vec::new();
        let mut i0 = 0;
        while i0 < n {
            let i1 = (i0 + band).min(n);
            let mr = &map;
            let cr = &combine;
            let idc = identity.clone();
            handles.push(s.spawn(move |_| {
                let mut acc = idc;
                for i in i0..i1 {
                    acc = cr(acc, mr(i));
                }
                acc
            }));
            i0 = i1;
        }
        for h in handles {
            partials.push(Some(h.join().expect("reduce worker panicked")));
        }
    })
    .expect("parallel reduce scope failed");
    let mut acc = identity;
    for p in partials.into_iter().flatten() {
        acc = combine(acc, p);
    }
    acc
}

/// Recommended worker count for this machine: the number of available
/// hardware threads, minimum 1.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bands_cover_everything_once() {
        let mut buf = vec![0.0; 7 * 3]; // 7 rows of 3
        for_each_band(&mut buf, 3, 3, |row0, band| {
            for (k, v) in band.iter_mut().enumerate() {
                *v += (row0 * 3 + k) as f64 + 1.0;
            }
        });
        let expect: Vec<f64> = (0..21).map(|i| i as f64 + 1.0).collect();
        assert_eq!(buf, expect);
    }

    #[test]
    fn single_thread_runs_inline() {
        let mut buf = vec![0.0; 4];
        for_each_band(&mut buf, 2, 1, |row0, band| {
            assert_eq!(row0, 0);
            assert_eq!(band.len(), 4);
            band.fill(9.0);
        });
        assert_eq!(buf, vec![9.0; 4]);
    }

    #[test]
    #[should_panic(expected = "whole number of rows")]
    fn ragged_buffer_panics() {
        let mut buf = vec![0.0; 5];
        for_each_band(&mut buf, 2, 2, |_, _| {});
    }

    #[test]
    fn par_map_is_in_order() {
        for threads in [1, 2, 5, 16] {
            let v = par_map(23, threads, |i| i * i);
            let expect: Vec<usize> = (0..23).map(|i| i * i).collect();
            assert_eq!(v, expect, "threads={threads}");
        }
    }

    #[test]
    fn par_map_empty() {
        let v: Vec<u64> = par_map(0, 4, |_| 1);
        assert!(v.is_empty());
    }

    #[test]
    fn adaptive_chunk_is_positive_for_every_input_shape() {
        // n == 0, threads == 0, threads > n, threads * 8 > n: all the
        // degenerate shapes an empty or tiny registry produces. A zero
        // chunk would trip par_map_dynamic_stats' assert and panic the
        // whole batch.
        for n in [0usize, 1, 2, 7, 8, 63, 64, 1000] {
            for threads in [0usize, 1, 2, 3, 8, 64, 1000] {
                let chunk = adaptive_chunk(n, threads);
                assert!(chunk >= 1, "adaptive_chunk({n}, {threads}) = {chunk}");
            }
        }
    }

    #[test]
    fn par_map_dynamic_handles_empty_and_oversubscribed_inputs() {
        // Property sweep over the edge shapes: empty input, more threads
        // than items, zero threads. Output must equal the sequential map
        // in every case — no panic, no dropped or duplicated index.
        for (n, threads) in [(0usize, 8usize), (0, 0), (1, 8), (3, 64), (5, 0), (7, 7), (2, 1000)] {
            let got = par_map_dynamic(n, threads, |i| i * 2 + 1);
            let expect: Vec<usize> = (0..n).map(|i| i * 2 + 1).collect();
            assert_eq!(got, expect, "n={n} threads={threads}");
        }
    }

    #[test]
    fn par_map_dynamic_stats_covers_all_items_when_oversubscribed() {
        // threads > n: only min(threads, ceil(n/chunk)) workers spawn,
        // and the per-worker item counts still sum to n.
        let (v, sched) = par_map_dynamic_stats(3, 16, 1, |i| i);
        assert_eq!(v, vec![0, 1, 2]);
        assert!(sched.workers >= 1 && sched.workers <= 3);
        assert_eq!(sched.items.iter().sum::<usize>(), 3);
    }

    /// A result type that is deliberately neither `Default` nor `Clone`:
    /// the satellite fix is that `par_map` no longer needs either.
    struct NoDefaultNoClone(String);

    #[test]
    fn par_map_works_without_default_or_clone() {
        for threads in [1, 2, 5, 16] {
            let v = par_map(23, threads, |i| NoDefaultNoClone(format!("r{i}")));
            let got: Vec<&str> = v.iter().map(|x| x.0.as_str()).collect();
            let expect: Vec<String> = (0..23).map(|i| format!("r{i}")).collect();
            assert_eq!(
                got,
                expect.iter().map(String::as_str).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn par_map_into_is_in_order_without_default() {
        // String is Clone but the point is the missing Default-based
        // preallocation: a non-trivial, heap-owning type round-trips.
        for threads in [1, 2, 5, 16] {
            let v = par_map_into(23, threads, |i| format!("r{i}"));
            let expect: Vec<String> = (0..23).map(|i| format!("r{i}")).collect();
            assert_eq!(v, expect, "threads={threads}");
        }
    }

    #[test]
    fn par_map_into_empty_and_oversubscribed() {
        let v: Vec<String> = par_map_into(0, 4, |_| String::new());
        assert!(v.is_empty());
        let v = par_map_into(3, 64, |i| i * 10);
        assert_eq!(v, vec![0, 10, 20]);
    }

    #[test]
    fn par_map_dynamic_matches_sequential_everywhere() {
        let expect: Vec<usize> = (0..97).map(|i| i * i + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let v = par_map_dynamic(97, threads, |i| i * i + 1);
            assert_eq!(v, expect, "threads={threads}");
        }
        for chunk in [1, 2, 7, 97, 1000] {
            let (v, stats) = par_map_dynamic_stats(97, 4, chunk, |i| i * i + 1);
            assert_eq!(v, expect, "chunk={chunk}");
            assert_eq!(stats.items.iter().sum::<usize>(), 97, "chunk={chunk}");
            assert_eq!(stats.chunks_claimed.iter().sum::<usize>(), 97usize.div_ceil(chunk));
        }
    }

    #[test]
    fn par_map_dynamic_empty_and_single() {
        let v: Vec<String> = par_map_dynamic(0, 4, |_| String::new());
        assert!(v.is_empty());
        let v = par_map_dynamic(1, 8, |i| i + 41);
        assert_eq!(v, vec![41]);
    }

    #[test]
    fn par_map_dynamic_handles_nondefault_types() {
        let v = par_map_dynamic(17, 3, |i| NoDefaultNoClone(format!("x{i}")));
        assert_eq!(v[16].0, "x16");
        assert_eq!(v.len(), 17);
    }

    #[test]
    fn dynamic_stats_account_every_worker() {
        let (_, stats) = par_map_dynamic_stats(40, 4, 2, |i| i);
        assert!(stats.workers >= 1 && stats.workers <= 4);
        assert_eq!(stats.busy_seconds.len(), stats.workers);
        assert_eq!(stats.chunks_claimed.len(), stats.workers);
        assert_eq!(stats.items.len(), stats.workers);
        assert!(stats.busy_seconds.iter().all(|&b| b >= 0.0));
        assert!(stats.imbalance_ratio() >= 1.0);
        assert!((0.0..=1.0).contains(&stats.utilization(stats.max_busy_seconds())));
        assert!(stats.total_busy_seconds() >= stats.max_busy_seconds());
    }

    #[test]
    fn dynamic_never_spawns_more_workers_than_chunks() {
        let (v, stats) = par_map_dynamic_stats(5, 64, 2, |i| i);
        assert_eq!(v, vec![0, 1, 2, 3, 4]);
        assert!(stats.workers <= 3, "5 items at chunk 2 is 3 chunks, got {}", stats.workers);
    }

    #[test]
    fn sized_chunk_floor_prevents_false_sharing_for_small_elements() {
        // Satellite sweep: at every (n, jobs) in the stated range, an
        // 8-byte-element map must never split one cache line of output
        // across two workers. We assert through the stats of the same
        // chunk par_map_dynamic would use, and that the output still
        // equals the sequential map bitwise.
        let line_elems = CACHE_LINE_BYTES / std::mem::size_of::<f64>(); // 8
        for n in 1..=257usize {
            for jobs in [1usize, 2, 4] {
                let chunk = adaptive_chunk_sized(n, jobs, std::mem::size_of::<f64>());
                assert!(chunk >= 1, "n={n} jobs={jobs}");
                if jobs > 1 {
                    assert!(
                        chunk >= line_elems,
                        "n={n} jobs={jobs}: chunk {chunk} splits a cache line"
                    );
                }
                let (got, stats) =
                    par_map_dynamic_stats(n, jobs, chunk, |i| (i as f64).sqrt() + 0.5);
                let expect: Vec<f64> = (0..n).map(|i| (i as f64).sqrt() + 0.5).collect();
                assert_eq!(got, expect, "n={n} jobs={jobs}");
                assert_eq!(stats.chunk, chunk);
                assert_eq!(stats.items.iter().sum::<usize>(), n, "n={n} jobs={jobs}");
                assert_eq!(
                    stats.chunks_claimed.iter().sum::<usize>(),
                    n.div_ceil(chunk),
                    "n={n} jobs={jobs}"
                );
                // With the floor in force, a worker count that could
                // false-share never exceeds the number of full lines.
                assert!(stats.workers <= jobs.max(1), "n={n} jobs={jobs}");
                if jobs > 1 {
                    assert!(
                        stats.workers <= n.div_ceil(line_elems),
                        "n={n} jobs={jobs}: {} workers over {} output lines",
                        stats.workers,
                        n.div_ceil(line_elems)
                    );
                }
            }
        }
    }

    #[test]
    fn sized_chunk_leaves_large_elements_alone() {
        // A 64-byte (or larger) element already owns its cache line; the
        // floor must not inflate chunks and cost balancing granularity.
        assert_eq!(adaptive_chunk_sized(1000, 4, 64), adaptive_chunk(1000, 4));
        assert_eq!(adaptive_chunk_sized(1000, 4, 128), adaptive_chunk(1000, 4));
        // elem_bytes == 0 (ZST or indirect) gets no floor either.
        assert_eq!(adaptive_chunk_sized(1000, 4, 0), adaptive_chunk(1000, 4));
        // Single-threaded maps cannot false-share: floor off.
        assert_eq!(adaptive_chunk_sized(20, 1, 8), adaptive_chunk(20, 1));
        // Small elements at multiple workers get the line floor.
        assert_eq!(adaptive_chunk_sized(20, 8, 8), 8);
        assert_eq!(adaptive_chunk_sized(20, 8, 16), 4);
        assert_eq!(adaptive_chunk_sized(20, 8, 1), 64);
        // The floor never shrinks an already-large adaptive chunk.
        assert!(adaptive_chunk_sized(100_000, 2, 8) >= adaptive_chunk(100_000, 2));
    }

    #[test]
    fn adaptive_chunk_is_positive_and_scales() {
        assert_eq!(adaptive_chunk(0, 4), 1);
        assert_eq!(adaptive_chunk(20, 8), 1);
        assert!(adaptive_chunk(100_000, 8) > 1);
        // More threads → smaller chunks (finer balancing).
        assert!(adaptive_chunk(100_000, 16) <= adaptive_chunk(100_000, 2));
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_panics() {
        let _ = par_map_dynamic_stats(4, 2, 0, |i| i);
    }

    #[test]
    fn par_reduce_sum_matches_sequential() {
        let seq: u64 = (0..1000u64).sum();
        for threads in [1, 3, 8] {
            let par = par_reduce(1000, threads, 0u64, |i| i as u64, |a, b| a + b);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn par_reduce_max() {
        let m = par_reduce(100, 4, f64::NEG_INFINITY, |i| ((i as f64) - 50.0).abs(), f64::max);
        assert_eq!(m, 50.0);
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }
}
