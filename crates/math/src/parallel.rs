//! Crossbeam-scoped data-parallel helpers.
//!
//! The HPC guides for this workspace present two idioms: rayon-style
//! parallel iterators, and scoped threads over disjoint chunks. The offline
//! dependency set includes crossbeam but not rayon, so this module provides
//! the scoped-chunk equivalent: split a buffer (or an index range) into
//! bands, hand each band to a scoped worker, and join. Workers own disjoint
//! `&mut` regions, so the compiler proves data-race freedom — no locks, no
//! atomics on the hot path.

/// Splits `buf` into `threads` near-equal bands of whole rows (each row is
/// `row_len` elements) and runs `f(first_row_index, band)` on each band in
/// its own scoped thread.
///
/// Bands are maximal prefixes: band `t` starts at row
/// `t * ceil(rows / threads)`. If `buf` is empty or `threads <= 1`, `f` runs
/// inline on the whole buffer.
///
/// # Panics
///
/// Panics if `row_len == 0` or `buf.len()` is not a multiple of `row_len`.
pub fn for_each_band(
    buf: &mut [f64],
    row_len: usize,
    threads: usize,
    f: impl Fn(usize, &mut [f64]) + Sync,
) {
    assert!(row_len > 0, "row_len must be positive");
    assert_eq!(buf.len() % row_len, 0, "buffer not a whole number of rows");
    let rows = buf.len() / row_len;
    if threads <= 1 || rows <= 1 {
        f(0, buf);
        return;
    }
    let band_rows = rows.div_ceil(threads);
    crossbeam::scope(|s| {
        let mut rest = buf;
        let mut row0 = 0;
        while !rest.is_empty() {
            let take = (band_rows * row_len).min(rest.len());
            let (band, tail) = rest.split_at_mut(take);
            let fr = &f;
            let start = row0;
            s.spawn(move |_| fr(start, band));
            row0 += take / row_len;
            rest = tail;
        }
    })
    .expect("parallel band worker panicked");
}

/// Applies `f` to every index in `0..n` across `threads` scoped workers and
/// collects the results in index order.
///
/// Work is split into contiguous ranges, one per worker; each worker fills
/// its own output band. Deterministic: output order never depends on thread
/// scheduling.
pub fn par_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send + Default + Clone,
    F: Fn(usize) -> T + Sync,
{
    let mut out = vec![T::default(); n];
    if threads <= 1 || n <= 1 {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = f(i);
        }
        return out;
    }
    let band = n.div_ceil(threads);
    crossbeam::scope(|s| {
        let mut rest = out.as_mut_slice();
        let mut i0 = 0;
        while !rest.is_empty() {
            let take = band.min(rest.len());
            let (chunk, tail) = rest.split_at_mut(take);
            let fr = &f;
            let start = i0;
            s.spawn(move |_| {
                for (k, slot) in chunk.iter_mut().enumerate() {
                    *slot = fr(start + k);
                }
            });
            i0 += take;
            rest = tail;
        }
    })
    .expect("parallel map worker panicked");
    out
}

/// Like [`par_map`] but without the `Default + Clone` bound on `T`:
/// workers fill disjoint bands of `Option<T>` slots, so any `Send` result
/// type works. Deterministic: output order never depends on thread
/// scheduling.
pub fn par_map_into<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let band = n.div_ceil(threads);
    crossbeam::scope(|s| {
        let mut rest = out.as_mut_slice();
        let mut i0 = 0;
        while !rest.is_empty() {
            let take = band.min(rest.len());
            let (chunk, tail) = rest.split_at_mut(take);
            let fr = &f;
            let start = i0;
            s.spawn(move |_| {
                for (k, slot) in chunk.iter_mut().enumerate() {
                    *slot = Some(fr(start + k));
                }
            });
            i0 += take;
            rest = tail;
        }
    })
    .expect("parallel map worker panicked");
    out.into_iter().map(|o| o.expect("worker filled every slot")).collect()
}

/// Reduces `0..n` with `map` then `combine`, in parallel, with a
/// deterministic combination order (band 0 first, then band 1, ...).
///
/// `combine` must be associative for the result to equal the sequential
/// reduction; TREU uses this only for associative-and-commutative folds
/// (sums, maxima, counts).
pub fn par_reduce<T, M, C>(n: usize, threads: usize, identity: T, map: M, combine: C) -> T
where
    T: Send + Clone,
    M: Fn(usize) -> T + Sync,
    C: Fn(T, T) -> T + Send + Sync,
{
    if threads <= 1 || n <= 1 {
        let mut acc = identity;
        for i in 0..n {
            acc = combine(acc, map(i));
        }
        return acc;
    }
    let band = n.div_ceil(threads);
    let mut partials: Vec<Option<T>> = Vec::new();
    crossbeam::scope(|s| {
        let mut handles = Vec::new();
        let mut i0 = 0;
        while i0 < n {
            let i1 = (i0 + band).min(n);
            let mr = &map;
            let cr = &combine;
            let idc = identity.clone();
            handles.push(s.spawn(move |_| {
                let mut acc = idc;
                for i in i0..i1 {
                    acc = cr(acc, mr(i));
                }
                acc
            }));
            i0 = i1;
        }
        for h in handles {
            partials.push(Some(h.join().expect("reduce worker panicked")));
        }
    })
    .expect("parallel reduce scope failed");
    let mut acc = identity;
    for p in partials.into_iter().flatten() {
        acc = combine(acc, p);
    }
    acc
}

/// Recommended worker count for this machine: the number of available
/// hardware threads, minimum 1.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bands_cover_everything_once() {
        let mut buf = vec![0.0; 7 * 3]; // 7 rows of 3
        for_each_band(&mut buf, 3, 3, |row0, band| {
            for (k, v) in band.iter_mut().enumerate() {
                *v += (row0 * 3 + k) as f64 + 1.0;
            }
        });
        let expect: Vec<f64> = (0..21).map(|i| i as f64 + 1.0).collect();
        assert_eq!(buf, expect);
    }

    #[test]
    fn single_thread_runs_inline() {
        let mut buf = vec![0.0; 4];
        for_each_band(&mut buf, 2, 1, |row0, band| {
            assert_eq!(row0, 0);
            assert_eq!(band.len(), 4);
            band.fill(9.0);
        });
        assert_eq!(buf, vec![9.0; 4]);
    }

    #[test]
    #[should_panic(expected = "whole number of rows")]
    fn ragged_buffer_panics() {
        let mut buf = vec![0.0; 5];
        for_each_band(&mut buf, 2, 2, |_, _| {});
    }

    #[test]
    fn par_map_is_in_order() {
        for threads in [1, 2, 5, 16] {
            let v = par_map(23, threads, |i| i * i);
            let expect: Vec<usize> = (0..23).map(|i| i * i).collect();
            assert_eq!(v, expect, "threads={threads}");
        }
    }

    #[test]
    fn par_map_empty() {
        let v: Vec<u64> = par_map(0, 4, |_| 1);
        assert!(v.is_empty());
    }

    #[test]
    fn par_map_into_is_in_order_without_default() {
        // String is Clone but the point is the missing Default-based
        // preallocation: a non-trivial, heap-owning type round-trips.
        for threads in [1, 2, 5, 16] {
            let v = par_map_into(23, threads, |i| format!("r{i}"));
            let expect: Vec<String> = (0..23).map(|i| format!("r{i}")).collect();
            assert_eq!(v, expect, "threads={threads}");
        }
    }

    #[test]
    fn par_map_into_empty_and_oversubscribed() {
        let v: Vec<String> = par_map_into(0, 4, |_| String::new());
        assert!(v.is_empty());
        let v = par_map_into(3, 64, |i| i * 10);
        assert_eq!(v, vec![0, 10, 20]);
    }

    #[test]
    fn par_reduce_sum_matches_sequential() {
        let seq: u64 = (0..1000u64).sum();
        for threads in [1, 3, 8] {
            let par = par_reduce(1000, threads, 0u64, |i| i as u64, |a, b| a + b);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn par_reduce_max() {
        let m = par_reduce(100, 4, f64::NEG_INFINITY, |i| ((i as f64) - 50.0).abs(), f64::max);
        assert_eq!(m, 50.0);
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }
}
