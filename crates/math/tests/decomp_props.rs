//! Property tests for the decomposition substrate: the invariants that the
//! robust-statistics and shape crates rely on.

use proptest::prelude::*;
use treu_math::decomp::{power_iteration, reconstruct, svd, symmetric_eigen};
use treu_math::Matrix;

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0..10.0f64, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

fn symmetric(n: usize) -> impl Strategy<Value = Matrix> {
    matrix(n, n).prop_map(|a| {
        let at = a.transpose();
        let mut s = a.add(&at);
        s.scale_in_place(0.5);
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn eigen_reconstructs_symmetric_matrices(a in symmetric(5)) {
        let e = symmetric_eigen(&a, 1e-12, 200);
        let n = a.rows();
        let mut recon = Matrix::zeros(n, n);
        for k in 0..n {
            let v = e.vectors.row(k);
            for i in 0..n {
                for j in 0..n {
                    recon[(i, j)] += e.values[k] * v[i] * v[j];
                }
            }
        }
        prop_assert!(recon.max_abs_diff(&a) < 1e-6, "diff {}", recon.max_abs_diff(&a));
    }

    #[test]
    fn eigenvalue_sum_equals_trace(a in symmetric(6)) {
        let e = symmetric_eigen(&a, 1e-12, 200);
        let trace: f64 = (0..6).map(|i| a[(i, i)]).sum();
        let sum: f64 = e.values.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-7);
    }

    #[test]
    fn svd_frobenius_identity(a in matrix(6, 4)) {
        // ||A||_F^2 = sum of squared singular values.
        let d = svd(&a, 1e-14, 80);
        let fro2 = a.frobenius_norm().powi(2);
        let sig2: f64 = d.sigma.iter().map(|s| s * s).sum();
        prop_assert!((fro2 - sig2).abs() < 1e-6 * fro2.max(1.0));
    }

    #[test]
    fn svd_factors_are_orthonormal(a in matrix(5, 5)) {
        let d = svd(&a, 1e-14, 80);
        let utu = d.u.transpose().matmul(&d.u);
        let vvt = d.vt.matmul(&d.vt.transpose());
        prop_assert!(utu.max_abs_diff(&Matrix::identity(5)) < 1e-6);
        prop_assert!(vvt.max_abs_diff(&Matrix::identity(5)) < 1e-6);
    }

    #[test]
    fn svd_reconstruction_for_wide_and_tall(a in matrix(3, 7), b in matrix(7, 3)) {
        prop_assert!(reconstruct(&svd(&a, 1e-14, 80)).max_abs_diff(&a) < 1e-6);
        prop_assert!(reconstruct(&svd(&b, 1e-14, 80)).max_abs_diff(&b) < 1e-6);
    }

    #[test]
    fn power_iteration_bounded_by_extreme_eigenvalues(a in symmetric(5), seed in any::<u64>()) {
        // On a PSD shift of a, power iteration's Rayleigh quotient cannot
        // exceed the top eigenvalue (within tolerance).
        let mut shifted = a.clone();
        for i in 0..5 {
            shifted[(i, i)] += 60.0; // strongly diagonally dominant => PSD
        }
        let e = symmetric_eigen(&shifted, 1e-12, 200);
        let (lam, v) = power_iteration(&shifted, seed, 1e-10, 5000);
        prop_assert!(lam <= e.values[0] + 1e-6, "lam {} vs top {}", lam, e.values[0]);
        prop_assert!(lam >= *e.values.last().unwrap() - 1e-6);
        // Returned vector is unit.
        let n: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        prop_assert!((n - 1.0).abs() < 1e-9);
    }
}
