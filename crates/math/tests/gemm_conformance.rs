//! Bitwise conformance suite for the schedule-driven GEMM (ISSUE 8).
//!
//! The contract under test: every `GemmPlan` — any blocking, any
//! microkernel width, any worker count — produces output **bitwise
//! identical** to `matmul_naive`, because each output element is one
//! sequential ascending-k accumulation chain no matter how the i/j
//! traversal is reordered. Property tests sweep random shapes × random
//! clamped plans × jobs {1, 4}; a golden FNV-1a fingerprint of one fixed
//! workload pins the numeric results themselves across refactors.

use proptest::prelude::*;
use treu_math::gemm::{GemmPlan, ShapeClass};
use treu_math::hash::fnv64;
use treu_math::rng::SplitMix64;
use treu_math::Matrix;

fn seeded_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = SplitMix64::new(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.next_gaussian())
}

fn assert_bitwise(want: &Matrix, got: &Matrix, what: &str) {
    assert_eq!(want.shape(), got.shape(), "{what}: shape changed");
    for (i, (w, g)) in want.as_slice().iter().zip(got.as_slice()).enumerate() {
        assert!(w.to_bits() == g.to_bits(), "{what}: element {i} diverged ({w:e} vs {g:e})");
    }
}

/// Raw plan fields; `clamped` snaps them into the kernel's valid space,
/// exactly as the dispatch path does.
fn plan_strategy() -> impl Strategy<Value = GemmPlan> {
    (1usize..300, 1usize..300, 1usize..300, 1usize..24, 1usize..5)
        .prop_map(|(mc, kc, nc, nr, threads)| GemmPlan { mc, kc, nc, nr, threads })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_random_plan_is_bitwise_naive(
        m in 1usize..40,
        k in 1usize..40,
        n in 1usize..40,
        plan in plan_strategy(),
        seed in 0u64..1 << 48,
    ) {
        let a = seeded_matrix(m, k, seed);
        let b = seeded_matrix(k, n, seed ^ 0x9e37_79b9_7f4a_7c15);
        let want = a.matmul_naive(&b);
        for jobs in [1usize, 4] {
            let got = a.matmul_with_plan(&b, &plan.clamped(m, k, n).with_threads(jobs));
            assert_bitwise(&want, &got, &format!("plan {plan:?} jobs {jobs}"));
        }
    }

    #[test]
    fn transpose_free_forms_match_explicit_transpose(
        m in 1usize..24,
        k in 1usize..24,
        n in 1usize..24,
        seed in 0u64..1 << 48,
    ) {
        let a = seeded_matrix(m, k, seed);
        let b = seeded_matrix(k, n, seed ^ 0x5851_f42d_4c95_7f2d);
        // Aᵀ stored explicitly, multiplied without materializing A.
        let at = a.transpose();
        assert_bitwise(&a.matmul_naive(&b), &at.matmul_tn(&b), "matmul_tn");
        // Bᵀ stored explicitly, multiplied without materializing B.
        let bt = b.transpose();
        assert_bitwise(&a.matmul_naive(&b), &a.matmul_nt(&bt), "matmul_nt");
    }
}

/// The fixed workload the golden fingerprint pins: one multiplication per
/// shape class the dispatch table distinguishes in practice, each run
/// through the default plan at 1 and 4 workers.
fn fingerprint_fixed_workload() -> u64 {
    let shapes = [(3, 17, 5), (24, 24, 24), (80, 40, 96), (130, 64, 257)];
    let mut bytes = Vec::new();
    for (idx, &(m, k, n)) in shapes.iter().enumerate() {
        let a = seeded_matrix(m, k, 0xC0FFEE + idx as u64);
        let b = seeded_matrix(k, n, 0xBEEF + idx as u64);
        let plan = GemmPlan::default_for(ShapeClass::of(m, k, n));
        for jobs in [1usize, 4] {
            let out = a.matmul_with_plan(&b, &plan.clamped(m, k, n).with_threads(jobs));
            for v in out.as_slice() {
                bytes.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
    }
    fnv64(&bytes)
}

/// Golden value: any change means the kernels now produce different bits
/// than they did when this suite was written — a reproducibility break,
/// not a refactor. Regenerate only with an argued determinism-contract
/// change.
const GOLDEN_GEMM_FINGERPRINT: u64 = 0xdde48a8c2db79159;

#[test]
fn fixed_workload_fingerprint_is_golden() {
    assert_eq!(
        fingerprint_fixed_workload(),
        GOLDEN_GEMM_FINGERPRINT,
        "GEMM output bits changed: {:#018x}",
        fingerprint_fixed_workload()
    );
}
