//! Training and the full-retrain oracle.

use crate::data::BlobDataset;
use treu_math::rng::{derive_seed, SplitMix64};
use treu_math::Matrix;
use treu_nn::prelude::*;

/// Training hyperparameters shared across the unlearning methods.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Hidden width of the 2-layer MLP.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch: usize,
    /// SGD learning rate.
    pub lr: f64,
    /// SGD momentum.
    pub momentum: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self { hidden: 32, epochs: 25, batch: 16, lr: 0.05, momentum: 0.9 }
    }
}

/// Builds the standard classifier architecture for `d -> classes`.
pub fn build_model(d: usize, classes: usize, cfg: TrainConfig, seed: u64) -> Sequential {
    Sequential::new(vec![
        Box::new(Dense::new(d, cfg.hidden, derive_seed(seed, "l1"))),
        Box::new(Relu::new()),
        Box::new(Dense::new(cfg.hidden, classes, derive_seed(seed, "l2"))),
    ])
}

/// Trains a model on `(x, y)` and returns it along with the number of
/// optimizer steps taken (the unlearning cost unit).
pub fn train(
    x: &Matrix,
    y: &[usize],
    classes: usize,
    cfg: TrainConfig,
    seed: u64,
) -> (Sequential, u64) {
    let mut model = build_model(x.cols(), classes, cfg, derive_seed(seed, "init"));
    let steps = train_into(&mut model, x, y, cfg, derive_seed(seed, "train"));
    (model, steps)
}

/// Continues training an existing model; returns optimizer steps taken.
pub fn train_into(
    model: &mut Sequential,
    x: &Matrix,
    y: &[usize],
    cfg: TrainConfig,
    seed: u64,
) -> u64 {
    let mut opt = Sgd::new(cfg.lr, cfg.momentum);
    let mut rng = SplitMix64::new(seed);
    let batches_per_epoch = y.len().div_ceil(cfg.batch) as u64;
    for _ in 0..cfg.epochs {
        treu_nn::model::train_epoch(model, &mut opt, x, y, cfg.batch, &mut rng);
    }
    cfg.epochs as u64 * batches_per_epoch
}

/// The oracle: train from scratch on the retain set only.
///
/// Returns `(model, steps)` — the cost every cheaper method is compared to.
pub fn retrain_without(
    dataset: &BlobDataset,
    forget_class: usize,
    cfg: TrainConfig,
    seed: u64,
) -> (Sequential, u64) {
    let (_, (rx, ry)) = dataset.split_forget(forget_class);
    train(&rx, &ry, dataset.classes, cfg, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use treu_math::rng::SplitMix64;

    fn dataset() -> BlobDataset {
        let mut rng = SplitMix64::new(100);
        BlobDataset::generate(4, 40, 8, 6.0, &mut rng)
    }

    #[test]
    fn training_reaches_high_accuracy() {
        let d = dataset();
        let (mut model, steps) = train(&d.train_x, &d.train_y, 4, TrainConfig::default(), 1);
        let preds = treu_nn::model::predict(&mut model, &d.test_x);
        let acc = preds.iter().zip(&d.test_y).filter(|(p, y)| p == y).count() as f64
            / d.test_y.len() as f64;
        assert!(acc > 0.9, "test accuracy {acc}");
        assert_eq!(steps, 25 * 10); // 160 samples / 16 batch = 10
    }

    #[test]
    fn retrained_model_never_predicts_forgotten_class_well() {
        let d = dataset();
        let (mut model, _) = retrain_without(&d, 1, TrainConfig::default(), 2);
        let preds = treu_nn::model::predict(&mut model, &d.test_x);
        let accs = d.per_class_test_accuracy(&preds);
        assert!(accs[1] < 0.2, "forgotten class acc {}", accs[1]);
        for (c, &a) in accs.iter().enumerate() {
            if c != 1 {
                assert!(a > 0.8, "retained class {c} acc {a}");
            }
        }
    }

    #[test]
    fn training_is_deterministic() {
        let d = dataset();
        let (mut a, _) = train(&d.train_x, &d.train_y, 4, TrainConfig::default(), 9);
        let (mut b, _) = train(&d.train_x, &d.train_y, 4, TrainConfig::default(), 9);
        let pa = treu_nn::model::predict(&mut a, &d.test_x);
        let pb = treu_nn::model::predict(&mut b, &d.test_x);
        assert_eq!(pa, pb);
    }
}
