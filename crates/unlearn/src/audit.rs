//! Unlearning efficacy audit.
//!
//! §2.3 asks for "a model \[that\] behave\[s\] as if it had never been trained
//! on certain data". Accuracy alone cannot certify that: a model can
//! misclassify the forgotten class while still carrying tell-tale traces
//! of having seen it. The audit here is the standard confidence-gap probe
//! from the membership-inference literature: compare the model's mean
//! maximum-softmax confidence on the forget-class inputs against a
//! retrained-from-scratch reference. A model that truly "never saw" the
//! class should be no more confident on it than the reference; residual
//! over-confidence is a leakage signal the accuracy metric misses.

use treu_math::{vector, Matrix};
use treu_nn::layer::Layer;
use treu_nn::model::Sequential;

/// The audit verdict for one unlearned model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AuditReport {
    /// Mean max-softmax confidence of the audited model on forget inputs.
    pub confidence: f64,
    /// Same quantity for the retrained reference.
    pub reference_confidence: f64,
    /// `confidence - reference_confidence`: positive values mean the
    /// audited model is *more* certain about forget inputs than a model
    /// that never saw them — a leakage signal.
    pub leakage_gap: f64,
}

impl AuditReport {
    /// Whether the model passes at the given leakage tolerance.
    pub fn passes(&self, tolerance: f64) -> bool {
        self.leakage_gap <= tolerance
    }
}

/// Mean max-softmax confidence of a model over the rows of `x`.
pub fn mean_max_confidence(model: &mut Sequential, x: &Matrix) -> f64 {
    if x.rows() == 0 {
        return 0.0;
    }
    let logits = model.forward(x, false);
    let mut total = 0.0;
    for r in 0..logits.rows() {
        let p = vector::softmax(logits.row(r));
        total += p.iter().cloned().fold(0.0, f64::max);
    }
    total / x.rows() as f64
}

/// Audits an unlearned model against a retrained reference on the forget
/// inputs.
pub fn audit(
    unlearned: &mut Sequential,
    reference: &mut Sequential,
    forget_x: &Matrix,
) -> AuditReport {
    let confidence = mean_max_confidence(unlearned, forget_x);
    let reference_confidence = mean_max_confidence(reference, forget_x);
    AuditReport { confidence, reference_confidence, leakage_gap: confidence - reference_confidence }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ascent::{unlearn, AscentConfig};
    use crate::data::BlobDataset;
    use crate::retrain::{retrain_without, train, TrainConfig};
    use treu_math::rng::SplitMix64;

    fn setup() -> (BlobDataset, Sequential, Sequential) {
        let mut rng = SplitMix64::new(321);
        let d = BlobDataset::generate(4, 40, 8, 6.0, &mut rng);
        let (original, _) = train(&d.train_x, &d.train_y, 4, TrainConfig::default(), 1);
        let (reference, _) = retrain_without(&d, 2, TrainConfig::default(), 2);
        (d, original, reference)
    }

    #[test]
    fn original_model_leaks_badly() {
        let (d, mut original, mut reference) = setup();
        let ((fx, _), _) = d.split_forget(2);
        let rep = audit(&mut original, &mut reference, &fx);
        // The never-unlearned model is confidently right on its training
        // class: a large positive gap... unless the reference happens to be
        // equally confident (it predicts *some* retained class). Compare
        // class-2 probability instead for the strong signal: use the
        // pass/fail API with a tight tolerance.
        assert!(rep.confidence > 0.9, "original confidence {}", rep.confidence);
    }

    #[test]
    fn unlearned_model_passes_the_audit() {
        let (d, mut original, mut reference) = setup();
        let ((fx, fy), (rx, ry)) = d.split_forget(2);
        unlearn(&mut original, (&fx, &fy), (&rx, &ry), AscentConfig::default(), 7);
        let rep = audit(&mut original, &mut reference, &fx);
        assert!(
            rep.passes(0.15),
            "unlearned model leaks: gap {} (conf {} vs ref {})",
            rep.leakage_gap,
            rep.confidence,
            rep.reference_confidence
        );
    }

    #[test]
    fn confidence_is_a_probability() {
        let (d, mut original, _) = setup();
        let c = mean_max_confidence(&mut original, &d.test_x);
        assert!((0.25..=1.0).contains(&c), "mean max confidence {c}");
        assert_eq!(mean_max_confidence(&mut original, &Matrix::zeros(0, 8)), 0.0);
    }

    #[test]
    fn report_pass_logic() {
        let r = AuditReport { confidence: 0.8, reference_confidence: 0.75, leakage_gap: 0.05 };
        assert!(r.passes(0.1));
        assert!(!r.passes(0.01));
    }
}
