//! Gradient-ascent unlearning with repair fine-tuning — the §2.3
//! "technique that avoids complete retraining".
//!
//! Phase 1 (*forget*): take a few gradient **ascent** steps on the forget
//! set — maximize the cross-entropy of the forgotten class so the model's
//! decision surface abandons it. Phase 2 (*repair*): briefly fine-tune on
//! the retain set to undo collateral damage to the remaining classes.
//! Total cost is a handful of epochs versus a full training run.

use treu_math::rng::{derive_seed, SplitMix64};
use treu_math::Matrix;
use treu_nn::layer::Layer;
use treu_nn::loss::softmax_cross_entropy;
use treu_nn::model::Sequential;
use treu_nn::optimizer::{Optimizer, Sgd};

/// Hyperparameters of the ascent technique.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AscentConfig {
    /// Cap on ascent passes over the forget set (the phase stops early
    /// once the model's forget-set accuracy collapses).
    pub max_forget_epochs: usize,
    /// Stop ascending once forget-set accuracy falls to this level.
    pub forget_stop_accuracy: f64,
    /// Ascent learning rate (applied with inverted gradients).
    pub forget_lr: f64,
    /// Repair fine-tuning epochs on the retain set.
    pub repair_epochs: usize,
    /// Repair learning rate.
    pub repair_lr: f64,
    /// Minibatch size for both phases.
    pub batch: usize,
}

impl Default for AscentConfig {
    fn default() -> Self {
        Self {
            max_forget_epochs: 20,
            forget_stop_accuracy: 0.05,
            forget_lr: 0.1,
            repair_epochs: 4,
            repair_lr: 0.02,
            batch: 16,
        }
    }
}

/// Applies ascent unlearning in place. Returns optimizer steps taken
/// (forget + repair), the cost to compare against a full retrain.
pub fn unlearn(
    model: &mut Sequential,
    forget: (&Matrix, &[usize]),
    retain: (&Matrix, &[usize]),
    cfg: AscentConfig,
    seed: u64,
) -> u64 {
    let (fx, fy) = forget;
    let (rx, ry) = retain;
    let mut steps = 0u64;

    // Phase 1: maximize the loss on the forget set's true labels. Raw
    // gradient ascent stalls on a confident model (the cross-entropy
    // gradient vanishes when p ≈ one-hot), so the ascent direction is
    // realized stably as *descent toward randomly drawn retained labels* —
    // the relabeling trick from the unlearning literature, which has
    // non-vanishing gradients from step one. Adaptive: the phase stops as
    // soon as forget-set accuracy collapses, so cost tracks difficulty.
    let classes = {
        // Infer the class count from the model's output width.
        let probe = model.forward(&Matrix::zeros(1, fx.cols()), false);
        probe.cols()
    };
    let forget_label = fy.first().copied().unwrap_or(0);
    let mut opt = Sgd::new(cfg.forget_lr, 0.0);
    let mut rng = SplitMix64::new(derive_seed(seed, "forget"));
    for _ in 0..cfg.max_forget_epochs {
        let logits = model.forward(fx, false);
        if treu_nn::loss::accuracy(&logits, fy) <= cfg.forget_stop_accuracy {
            break;
        }
        let order = treu_math::rng::permutation(&mut rng, fy.len());
        for chunk in order.chunks(cfg.batch) {
            let mut bx = Matrix::zeros(chunk.len(), fx.cols());
            let mut by = Vec::with_capacity(chunk.len());
            for (i, &idx) in chunk.iter().enumerate() {
                bx.row_mut(i).copy_from_slice(fx.row(idx));
                // Random retained label (anything but the forget class).
                let mut alt = rng.next_bounded(classes.max(2) as u64 - 1) as usize;
                if alt >= forget_label {
                    alt += 1;
                }
                by.push(alt.min(classes - 1));
            }
            let logits = model.forward(&bx, true);
            let (_, grad) = softmax_cross_entropy(&logits, &by);
            model.backward(&grad);
            treu_nn::optimizer::clip_grad_norm(model, 10.0);
            opt.step(model);
            model.zero_grads();
            steps += 1;
        }
    }

    // Phase 2: repair fine-tuning on retained data.
    let mut ropt = Sgd::new(cfg.repair_lr, 0.9);
    let mut rrng = SplitMix64::new(derive_seed(seed, "repair"));
    for _ in 0..cfg.repair_epochs {
        treu_nn::model::train_epoch(model, &mut ropt, rx, ry, cfg.batch, &mut rrng);
        steps += ry.len().div_ceil(cfg.batch) as u64;
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::BlobDataset;
    use crate::retrain::{train, TrainConfig};

    fn setup() -> (BlobDataset, Sequential) {
        let mut rng = SplitMix64::new(55);
        let d = BlobDataset::generate(4, 40, 8, 6.0, &mut rng);
        let (model, _) = train(&d.train_x, &d.train_y, 4, TrainConfig::default(), 1);
        (d, model)
    }

    #[test]
    fn ascent_forgets_the_class_and_keeps_the_rest() {
        let (d, mut model) = setup();
        let forget_class = 2;
        let ((fx, fy), (rx, ry)) = d.split_forget(forget_class);
        unlearn(&mut model, (&fx, &fy), (&rx, &ry), AscentConfig::default(), 7);

        let preds = treu_nn::model::predict(&mut model, &d.test_x);
        let accs = d.per_class_test_accuracy(&preds);
        assert!(accs[forget_class] < 0.3, "forget acc {}", accs[forget_class]);
        for (c, &a) in accs.iter().enumerate() {
            if c != forget_class {
                assert!(a > 0.7, "retain class {c} dropped to {a}");
            }
        }
    }

    #[test]
    fn ascent_is_much_cheaper_than_retraining() {
        let (d, mut model) = setup();
        let ((fx, fy), (rx, ry)) = d.split_forget(0);
        let ascent_steps = unlearn(&mut model, (&fx, &fy), (&rx, &ry), AscentConfig::default(), 3);
        let (_, retrain_steps) = crate::retrain::retrain_without(&d, 0, TrainConfig::default(), 3);
        assert!(
            (ascent_steps as f64) < 0.4 * retrain_steps as f64,
            "ascent {ascent_steps} vs retrain {retrain_steps}"
        );
    }

    #[test]
    fn unlearning_is_deterministic() {
        let run = || {
            let (d, mut model) = setup();
            let ((fx, fy), (rx, ry)) = d.split_forget(1);
            unlearn(&mut model, (&fx, &fy), (&rx, &ry), AscentConfig::default(), 11);
            treu_nn::model::predict(&mut model, &d.test_x)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn model_without_unlearning_still_knows_the_class() {
        // Sanity check that forgetting is attributable to `unlearn`.
        let (d, mut model) = setup();
        let preds = treu_nn::model::predict(&mut model, &d.test_x);
        let accs = d.per_class_test_accuracy(&preds);
        assert!(accs[2] > 0.8, "original model should know class 2: {}", accs[2]);
    }
}
