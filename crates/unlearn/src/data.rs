//! Class-conditional Gaussian blob datasets.
//!
//! The unlearning experiments compare *training regimes*, so the dataset
//! only needs controllable class structure, not natural images (DESIGN.md
//! §2). Each class is an isotropic Gaussian around a deterministic center;
//! separability is controlled by the center spacing / noise ratio.

use treu_math::rng::SplitMix64;
use treu_math::Matrix;

/// A labelled dataset with a train/test split.
#[derive(Debug, Clone)]
pub struct BlobDataset {
    /// Training features, one sample per row.
    pub train_x: Matrix,
    /// Training labels.
    pub train_y: Vec<usize>,
    /// Test features.
    pub test_x: Matrix,
    /// Test labels.
    pub test_y: Vec<usize>,
    /// Number of classes.
    pub classes: usize,
}

impl BlobDataset {
    /// Generates `n_per_class` train and `n_per_class / 4` test samples per
    /// class in `d` dimensions.
    ///
    /// Class centers sit at `spacing * e_dir(c)` along deterministic random
    /// unit directions; within-class noise is unit Gaussian.
    ///
    /// # Panics
    ///
    /// Panics if any size parameter is zero.
    pub fn generate(
        classes: usize,
        n_per_class: usize,
        d: usize,
        spacing: f64,
        rng: &mut SplitMix64,
    ) -> Self {
        assert!(classes > 1 && n_per_class > 4 && d > 0, "degenerate dataset requested");
        // Deterministic class centers, pairwise well-separated directions.
        let centers: Vec<Vec<f64>> = (0..classes)
            .map(|_| {
                let mut v: Vec<f64> = (0..d).map(|_| rng.next_gaussian()).collect();
                treu_math::vector::normalize(&mut v);
                v.iter().map(|x| x * spacing).collect()
            })
            .collect();
        let n_test = (n_per_class / 4).max(1);
        let mut make = |n: usize| {
            let mut x = Matrix::zeros(n * classes, d);
            let mut y = Vec::with_capacity(n * classes);
            for c in 0..classes {
                for i in 0..n {
                    let row = x.row_mut(c * n + i);
                    for (j, v) in row.iter_mut().enumerate() {
                        *v = centers[c][j] + rng.next_gaussian();
                    }
                    y.push(c);
                }
            }
            (x, y)
        };
        let (train_x, train_y) = make(n_per_class);
        let (test_x, test_y) = make(n_test);
        Self { train_x, train_y, test_x, test_y, classes }
    }

    /// Training-set size.
    pub fn n_train(&self) -> usize {
        self.train_y.len()
    }

    /// Splits the training set into (forget, retain) by class.
    ///
    /// Returns `((x_f, y_f), (x_r, y_r))`.
    pub fn split_forget(
        &self,
        forget_class: usize,
    ) -> ((Matrix, Vec<usize>), (Matrix, Vec<usize>)) {
        assert!(forget_class < self.classes, "forget class out of range");
        let d = self.train_x.cols();
        let (mut fx, mut fy, mut rx, mut ry) = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
        for (i, &y) in self.train_y.iter().enumerate() {
            if y == forget_class {
                fx.extend_from_slice(self.train_x.row(i));
                fy.push(y);
            } else {
                rx.extend_from_slice(self.train_x.row(i));
                ry.push(y);
            }
        }
        ((Matrix::from_vec(fy.len(), d, fx), fy), (Matrix::from_vec(ry.len(), d, rx), ry))
    }

    /// Per-class test accuracy of a predictor given its predictions on
    /// `test_x`: returns `accs[class]`.
    pub fn per_class_test_accuracy(&self, preds: &[usize]) -> Vec<f64> {
        assert_eq!(preds.len(), self.test_y.len(), "prediction count mismatch");
        let mut correct = vec![0usize; self.classes];
        let mut total = vec![0usize; self.classes];
        for (&p, &y) in preds.iter().zip(&self.test_y) {
            total[y] += 1;
            if p == y {
                correct[y] += 1;
            }
        }
        correct
            .iter()
            .zip(&total)
            .map(|(&c, &t)| if t == 0 { 0.0 } else { c as f64 / t as f64 })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(seed: u64) -> BlobDataset {
        let mut rng = SplitMix64::new(seed);
        BlobDataset::generate(4, 40, 8, 6.0, &mut rng)
    }

    #[test]
    fn shapes_and_labels() {
        let d = dataset(1);
        assert_eq!(d.n_train(), 160);
        assert_eq!(d.test_y.len(), 40);
        assert_eq!(d.train_x.shape(), (160, 8));
        assert!(d.train_y.iter().all(|&y| y < 4));
    }

    #[test]
    fn split_forget_partitions_train() {
        let d = dataset(2);
        let ((fx, fy), (rx, ry)) = d.split_forget(2);
        assert_eq!(fx.rows() + rx.rows(), d.n_train());
        assert!(fy.iter().all(|&y| y == 2));
        assert!(ry.iter().all(|&y| y != 2));
        assert_eq!(fy.len(), 40);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_forget_class_panics() {
        dataset(3).split_forget(9);
    }

    #[test]
    fn classes_are_separable() {
        // Nearest-center classification should be near-perfect at spacing 6.
        let d = dataset(4);
        let mut centers = vec![vec![0.0; 8]; 4];
        let mut counts = vec![0.0; 4];
        for (i, &y) in d.train_y.iter().enumerate() {
            treu_math::vector::axpy(1.0, d.train_x.row(i), &mut centers[y]);
            counts[y] += 1.0;
        }
        for (c, n) in centers.iter_mut().zip(&counts) {
            treu_math::vector::scale(1.0 / n, c);
        }
        let preds: Vec<usize> = (0..d.test_y.len())
            .map(|i| {
                let x = d.test_x.row(i);
                (0..4)
                    .min_by(|&a, &b| {
                        treu_math::vector::distance(x, &centers[a])
                            .partial_cmp(&treu_math::vector::distance(x, &centers[b]))
                            .unwrap()
                    })
                    .unwrap()
            })
            .collect();
        let acc = preds.iter().zip(&d.test_y).filter(|(p, y)| p == y).count() as f64
            / d.test_y.len() as f64;
        assert!(acc > 0.95, "nearest-center accuracy {acc}");
    }

    #[test]
    fn per_class_accuracy_counts() {
        let d = dataset(5);
        let perfect = d.test_y.clone();
        assert!(d.per_class_test_accuracy(&perfect).iter().all(|&a| a == 1.0));
        let wrong: Vec<usize> = d.test_y.iter().map(|&y| (y + 1) % 4).collect();
        assert!(d.per_class_test_accuracy(&wrong).iter().all(|&a| a == 0.0));
    }

    #[test]
    fn generation_deterministic() {
        assert_eq!(dataset(7).train_x, dataset(7).train_x);
        assert_ne!(dataset(7).train_x, dataset(8).train_x);
    }
}
