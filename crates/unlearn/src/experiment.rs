//! Harnessed experiment E2.3: ascent vs SISA vs full retrain.
//!
//! Records, for each method: forget-class accuracy, retained-class
//! accuracy, and cost in optimizer steps relative to the full retrain —
//! reproducing the section's claim of "comparable performance to models
//! that were not required to unlearn" at a fraction of the retraining cost.

use crate::ascent::{self, AscentConfig};
use crate::data::BlobDataset;
use crate::metrics::UnlearningReport;
use crate::retrain::{self, TrainConfig};
use crate::sisa::SisaEnsemble;
use treu_core::experiment::{Experiment, Params, RunContext};
use treu_core::ExperimentRegistry;
use treu_math::rng::{derive_seed, SplitMix64};

/// Runs the three methods on one dataset/seed; returns
/// `(original_accs, ascent, sisa, retrain)`.
pub fn compare_methods(
    seed: u64,
    cfg: TrainConfig,
    forget_class: usize,
) -> (Vec<f64>, UnlearningReport, UnlearningReport, UnlearningReport) {
    let mut rng = SplitMix64::new(derive_seed(seed, "data"));
    let d = BlobDataset::generate(4, 40, 8, 6.0, &mut rng);

    // Original model (never unlearned) — the reference accuracies.
    let (mut original, base_steps) =
        retrain::train(&d.train_x, &d.train_y, 4, cfg, derive_seed(seed, "orig"));
    let original_accs =
        d.per_class_test_accuracy(&treu_nn::model::predict(&mut original, &d.test_x));

    // Ascent unlearning on a copy... models are not Clone; retrain an
    // identical one (same seed -> identical weights) and unlearn it.
    let (mut ascent_model, _) =
        retrain::train(&d.train_x, &d.train_y, 4, cfg, derive_seed(seed, "orig"));
    let ((fx, fy), (rx, ry)) = d.split_forget(forget_class);
    let ascent_steps = ascent::unlearn(
        &mut ascent_model,
        (&fx, &fy),
        (&rx, &ry),
        AscentConfig::default(),
        derive_seed(seed, "ascent"),
    );
    let ascent_report = UnlearningReport::from_per_class(
        &d.per_class_test_accuracy(&treu_nn::model::predict(&mut ascent_model, &d.test_x)),
        forget_class,
        ascent_steps,
    );

    // SISA: count only the incremental unlearning cost.
    let (mut ensemble, _) =
        SisaEnsemble::train(&d.train_x, &d.train_y, 4, 4, cfg, derive_seed(seed, "sisa"));
    let sisa_steps = ensemble.unlearn_class(forget_class);
    let sisa_report = UnlearningReport::from_per_class(
        &d.per_class_test_accuracy(&ensemble.predict(&d.test_x)),
        forget_class,
        sisa_steps,
    );

    // Full retrain oracle.
    let (mut retrained, retrain_steps) =
        retrain::retrain_without(&d, forget_class, cfg, derive_seed(seed, "retrain"));
    let retrain_report = UnlearningReport::from_per_class(
        &d.per_class_test_accuracy(&treu_nn::model::predict(&mut retrained, &d.test_x)),
        forget_class,
        retrain_steps,
    );

    let _ = base_steps;
    (original_accs, ascent_report, sisa_report, retrain_report)
}

/// E2.3: the three-way comparison, averaged over trials.
pub struct UnlearningExperiment;

impl Experiment for UnlearningExperiment {
    fn name(&self) -> &str {
        "unlearn/compare"
    }

    fn run(&self, ctx: &mut RunContext) {
        let trials = ctx.int("trials", 3) as u64;
        let forget_class = ctx.int("forget_class", 2) as usize;
        let cfg = TrainConfig { epochs: ctx.int("epochs", 25) as usize, ..TrainConfig::default() };
        let mut acc = [[0.0f64; 3]; 3]; // [method][forget, retain, relcost]
        let mut orig_retain = 0.0;
        for t in 0..trials {
            let (orig, a, s, r) =
                compare_methods(derive_seed(ctx.seed(), &format!("t{t}")), cfg, forget_class);
            let retained: Vec<f64> = orig
                .iter()
                .enumerate()
                .filter(|(c, _)| *c != forget_class)
                .map(|(_, &x)| x)
                .collect();
            orig_retain += treu_math::stats::mean(&retained);
            for (m, rep) in [(0, &a), (1, &s), (2, &r)] {
                acc[m][0] += rep.forget_accuracy;
                acc[m][1] += rep.retain_accuracy;
                acc[m][2] += rep.relative_cost(r.cost_steps);
            }
        }
        let k = trials as f64;
        ctx.record("original_retain_acc", orig_retain / k);
        for (m, name) in [(0usize, "ascent"), (1, "sisa"), (2, "retrain")] {
            ctx.record(&format!("{name}_forget_acc"), acc[m][0] / k);
            ctx.record(&format!("{name}_retain_acc"), acc[m][1] / k);
            ctx.record(&format!("{name}_relative_cost"), acc[m][2] / k);
        }
    }
}

/// Registers E2.3.
pub fn register(reg: &mut ExperimentRegistry) {
    reg.register(
        "E2.3",
        "Section 2.3",
        "class unlearning: ascent vs SISA vs full retrain",
        Params::new().with_int("trials", 3).with_int("forget_class", 2),
        Box::new(UnlearningExperiment),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use treu_core::experiment::{assert_deterministic, run_once};

    #[test]
    fn e23_reproduces_the_section_claims() {
        let rec = run_once(&UnlearningExperiment, 2023, Params::new().with_int("trials", 2));
        // The developed technique forgets the class...
        assert!(rec.metric("ascent_forget_acc").unwrap() < 0.3);
        // ...keeps comparable retained performance (within 10 points of the
        // never-unlearned model)...
        let orig = rec.metric("original_retain_acc").unwrap();
        let kept = rec.metric("ascent_retain_acc").unwrap();
        assert!(kept > orig - 0.10, "ascent retain {kept} vs original {orig}");
        // ...and avoids complete retraining.
        assert!(rec.metric("ascent_relative_cost").unwrap() < 0.4);
        // Retrain is the cost unit.
        assert!((rec.metric("retrain_relative_cost").unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sisa_also_forgets() {
        let rec = run_once(&UnlearningExperiment, 7, Params::new().with_int("trials", 2));
        assert!(rec.metric("sisa_forget_acc").unwrap() < 0.3);
        assert!(rec.metric("sisa_retain_acc").unwrap() > 0.7);
    }

    #[test]
    fn experiment_is_deterministic() {
        assert_deterministic(
            &UnlearningExperiment,
            3,
            &Params::new().with_int("trials", 1).with_int("epochs", 10),
        );
    }

    #[test]
    fn registry_id() {
        let mut reg = ExperimentRegistry::new();
        register(&mut reg);
        assert!(reg.get("E2.3").is_some());
    }
}
