//! `treu-unlearn` — machine unlearning (paper §2.3).
//!
//! The project: "we are sometimes required (e.g. for legal reasons) to have
//! a model that 'forgets' certain ideas, such as certain classes. However,
//! there are no techniques ... for making a model behave as if it had never
//! been trained on certain data, besides completely retraining a model from
//! scratch ... We developed a technique that avoids complete retraining,
//! and our initial experiments demonstrate comparable performance to models
//! that were not required to unlearn."
//!
//! Three ways to forget a class, all runnable here:
//!
//! * [`retrain`] — the oracle: retrain from scratch without the forget
//!   class (the gold standard the paper says is the only known option);
//! * [`ascent`] — the developed technique: brief gradient *ascent* on the
//!   forget class followed by repair fine-tuning on retained data — orders
//!   of magnitude cheaper in optimizer steps;
//! * [`sisa`] — the sharded (SISA-style) baseline: an ensemble of
//!   shard-models where unlearning retrains only the affected shards.
//!
//! The quality bar for all of them is [`metrics::UnlearningReport`]:
//! forget-class accuracy should collapse to (at or below) chance while
//! retained-class accuracy stays near the original model's.

#![forbid(unsafe_code)]
// Indexed loops over multiple parallel arrays are the clearest idiom in
// this crate's numeric kernels; the zip-chain rewrite the lint suggests
// obscures them.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod ascent;
pub mod audit;
pub mod data;
pub mod experiment;
pub mod metrics;
pub mod retrain;
pub mod sisa;

pub use data::BlobDataset;
pub use metrics::UnlearningReport;
