//! Unlearning quality and cost metrics.

/// The report card for any unlearning method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnlearningReport {
    /// Test accuracy on the forgotten class (lower is better; chance or
    /// below means the class is gone).
    pub forget_accuracy: f64,
    /// Mean test accuracy over the retained classes (higher is better).
    pub retain_accuracy: f64,
    /// Optimizer steps the method consumed.
    pub cost_steps: u64,
}

impl UnlearningReport {
    /// Builds a report from per-class accuracies.
    pub fn from_per_class(accs: &[f64], forget_class: usize, cost_steps: u64) -> Self {
        assert!(forget_class < accs.len(), "forget class out of range");
        let retained: Vec<f64> =
            accs.iter().enumerate().filter(|(c, _)| *c != forget_class).map(|(_, &a)| a).collect();
        Self {
            forget_accuracy: accs[forget_class],
            retain_accuracy: treu_math::stats::mean(&retained),
            cost_steps,
        }
    }

    /// The §2.3 success criterion: the class is effectively forgotten
    /// (below `forget_bar`) while retained performance stays above
    /// `retain_bar`.
    pub fn successful(&self, forget_bar: f64, retain_bar: f64) -> bool {
        self.forget_accuracy <= forget_bar && self.retain_accuracy >= retain_bar
    }

    /// Cost relative to a reference (e.g. full retrain) in `[0, ∞)`.
    pub fn relative_cost(&self, reference_steps: u64) -> f64 {
        if reference_steps == 0 {
            return f64::INFINITY;
        }
        self.cost_steps as f64 / reference_steps as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_per_class_separates_forget_and_retain() {
        let r = UnlearningReport::from_per_class(&[0.9, 0.1, 0.8, 1.0], 1, 50);
        assert_eq!(r.forget_accuracy, 0.1);
        assert!((r.retain_accuracy - 0.9).abs() < 1e-12);
        assert_eq!(r.cost_steps, 50);
    }

    #[test]
    fn success_criterion() {
        let good = UnlearningReport { forget_accuracy: 0.05, retain_accuracy: 0.9, cost_steps: 10 };
        assert!(good.successful(0.3, 0.8));
        let leaky = UnlearningReport { forget_accuracy: 0.5, retain_accuracy: 0.9, cost_steps: 10 };
        assert!(!leaky.successful(0.3, 0.8));
        let damaged =
            UnlearningReport { forget_accuracy: 0.0, retain_accuracy: 0.5, cost_steps: 10 };
        assert!(!damaged.successful(0.3, 0.8));
    }

    #[test]
    fn relative_cost() {
        let r = UnlearningReport { forget_accuracy: 0.0, retain_accuracy: 1.0, cost_steps: 25 };
        assert_eq!(r.relative_cost(100), 0.25);
        assert_eq!(r.relative_cost(0), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_forget_index_panics() {
        UnlearningReport::from_per_class(&[1.0], 3, 0);
    }
}
