//! SISA-style sharded training (Sharded, Isolated, Sliced, Aggregated).
//!
//! The structural alternative to post-hoc unlearning: partition the
//! training data into `S` shards, train an isolated model per shard, and
//! predict by ensemble vote. Unlearning data then requires retraining only
//! the shards that contained it — for class-level forgetting of uniformly
//! distributed data that is *every* shard, but each shard retrain costs
//! `1/S` of a full run, so the worst case equals one retrain while point-
//! level forgetting costs `1/S` of it. The crate includes it as the
//! "exact unlearning" baseline the ascent technique trades accuracy
//! guarantees against.

use crate::retrain::{train, TrainConfig};
use treu_math::rng::{derive_seed, SplitMix64};
use treu_math::Matrix;
use treu_nn::model::Sequential;

/// A sharded ensemble.
pub struct SisaEnsemble {
    shards: Vec<Sequential>,
    shard_data: Vec<(Matrix, Vec<usize>)>,
    classes: usize,
    cfg: TrainConfig,
    seed: u64,
}

impl SisaEnsemble {
    /// Trains `n_shards` isolated models over a deterministic partition of
    /// `(x, y)`. Returns the ensemble and total optimizer steps.
    pub fn train(
        x: &Matrix,
        y: &[usize],
        classes: usize,
        n_shards: usize,
        cfg: TrainConfig,
        seed: u64,
    ) -> (Self, u64) {
        assert!(n_shards > 0, "need at least one shard");
        assert!(y.len() >= n_shards, "fewer samples than shards");
        let mut rng = SplitMix64::new(derive_seed(seed, "partition"));
        let perm = treu_math::rng::permutation(&mut rng, y.len());
        let mut shard_data: Vec<(Vec<f64>, Vec<usize>)> =
            (0..n_shards).map(|_| (Vec::new(), Vec::new())).collect();
        for (pos, &idx) in perm.iter().enumerate() {
            let s = pos % n_shards;
            shard_data[s].0.extend_from_slice(x.row(idx));
            shard_data[s].1.push(y[idx]);
        }
        let d = x.cols();
        let shard_data: Vec<(Matrix, Vec<usize>)> = shard_data
            .into_iter()
            .map(|(buf, ys)| (Matrix::from_vec(ys.len(), d, buf), ys))
            .collect();
        let mut shards = Vec::with_capacity(n_shards);
        let mut steps = 0u64;
        for (s, (sx, sy)) in shard_data.iter().enumerate() {
            let (m, st) = train(sx, sy, classes, cfg, derive_seed(seed, &format!("shard{s}")));
            shards.push(m);
            steps += st;
        }
        (Self { shards, shard_data, classes, cfg, seed }, steps)
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Ensemble prediction by majority vote (ties to the lowest class id).
    pub fn predict(&mut self, x: &Matrix) -> Vec<usize> {
        let n = x.rows();
        let mut votes = vec![vec![0usize; self.classes]; n];
        for m in &mut self.shards {
            let p = treu_nn::model::predict(m, x);
            for (i, &c) in p.iter().enumerate() {
                votes[i][c] += 1;
            }
        }
        votes
            .into_iter()
            .map(|v| {
                let mut best = 0;
                for (c, &count) in v.iter().enumerate() {
                    if count > v[best] {
                        best = c;
                    }
                }
                best
            })
            .collect()
    }

    /// Unlearns a class: removes its samples from every shard's data and
    /// retrains only the shards that actually contained them. Returns the
    /// optimizer steps spent (the incremental cost).
    pub fn unlearn_class(&mut self, forget_class: usize) -> u64 {
        let mut steps = 0u64;
        for s in 0..self.shards.len() {
            let (sx, sy) = &self.shard_data[s];
            if !sy.contains(&forget_class) {
                continue;
            }
            let d = sx.cols();
            let mut buf = Vec::new();
            let mut ys = Vec::new();
            for (i, &y) in sy.iter().enumerate() {
                if y != forget_class {
                    buf.extend_from_slice(sx.row(i));
                    ys.push(y);
                }
            }
            let nx = Matrix::from_vec(ys.len(), d, buf);
            let (m, st) = train(
                &nx,
                &ys,
                self.classes,
                self.cfg,
                derive_seed(self.seed, &format!("shard{s}.unlearn{forget_class}")),
            );
            self.shards[s] = m;
            self.shard_data[s] = (nx, ys);
            steps += st;
        }
        steps
    }

    /// Unlearns a *single sample* by its pre-partition characteristics:
    /// retrains only the one shard holding that row (located by value
    /// match). Returns steps spent (`0` if the sample is absent).
    pub fn unlearn_point(&mut self, point: &[f64]) -> u64 {
        for s in 0..self.shards.len() {
            let (sx, sy) = &self.shard_data[s];
            let found = (0..sx.rows())
                .find(|&i| sx.row(i).iter().zip(point).all(|(a, b)| (a - b).abs() < 1e-12));
            if let Some(idx) = found {
                let d = sx.cols();
                let mut buf = Vec::new();
                let mut ys = Vec::new();
                for (i, &y) in sy.iter().enumerate() {
                    if i != idx {
                        buf.extend_from_slice(sx.row(i));
                        ys.push(y);
                    }
                }
                let nx = Matrix::from_vec(ys.len(), d, buf);
                let (m, st) = train(
                    &nx,
                    &ys,
                    self.classes,
                    self.cfg,
                    derive_seed(self.seed, &format!("shard{s}.point")),
                );
                self.shards[s] = m;
                self.shard_data[s] = (nx, ys);
                return st;
            }
        }
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::BlobDataset;

    fn dataset() -> BlobDataset {
        let mut rng = SplitMix64::new(77);
        BlobDataset::generate(4, 40, 8, 6.0, &mut rng)
    }

    fn small_cfg() -> TrainConfig {
        TrainConfig { epochs: 15, ..TrainConfig::default() }
    }

    #[test]
    fn ensemble_classifies_well() {
        let d = dataset();
        let (mut e, _) = SisaEnsemble::train(&d.train_x, &d.train_y, 4, 4, small_cfg(), 1);
        let preds = e.predict(&d.test_x);
        let acc = preds.iter().zip(&d.test_y).filter(|(p, y)| p == y).count() as f64
            / d.test_y.len() as f64;
        assert!(acc > 0.85, "ensemble acc {acc}");
    }

    #[test]
    fn class_unlearning_removes_the_class() {
        let d = dataset();
        let (mut e, _) = SisaEnsemble::train(&d.train_x, &d.train_y, 4, 4, small_cfg(), 2);
        e.unlearn_class(3);
        let preds = e.predict(&d.test_x);
        let accs = d.per_class_test_accuracy(&preds);
        assert!(accs[3] < 0.2, "forgotten class acc {}", accs[3]);
        for c in 0..3 {
            assert!(accs[c] > 0.7, "retained class {c}: {}", accs[c]);
        }
        // No shard retains any forget-class data.
        assert!(e.shard_data.iter().all(|(_, ys)| !ys.contains(&3)));
    }

    #[test]
    fn point_unlearning_touches_one_shard() {
        let d = dataset();
        let (mut e, full_steps) = SisaEnsemble::train(&d.train_x, &d.train_y, 4, 4, small_cfg(), 3);
        let target = d.train_x.row(5).to_vec();
        let before: usize = e.shard_data.iter().map(|(_, ys)| ys.len()).sum();
        let steps = e.unlearn_point(&target);
        let after: usize = e.shard_data.iter().map(|(_, ys)| ys.len()).sum();
        assert_eq!(before - after, 1, "exactly one sample removed");
        assert!(steps > 0);
        assert!(
            (steps as f64) < full_steps as f64 / 2.0,
            "point unlearning {steps} vs full {full_steps}"
        );
    }

    #[test]
    fn unlearning_missing_point_is_free() {
        let d = dataset();
        let (mut e, _) = SisaEnsemble::train(&d.train_x, &d.train_y, 4, 2, small_cfg(), 4);
        assert_eq!(e.unlearn_point(&[999.0; 8]), 0);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let d = dataset();
        SisaEnsemble::train(&d.train_x, &d.train_y, 4, 0, small_cfg(), 5);
    }

    #[test]
    fn sharding_is_deterministic() {
        let d = dataset();
        let (mut a, _) = SisaEnsemble::train(&d.train_x, &d.train_y, 4, 3, small_cfg(), 9);
        let (mut b, _) = SisaEnsemble::train(&d.train_x, &d.train_y, 4, 3, small_cfg(), 9);
        assert_eq!(a.predict(&d.test_x), b.predict(&d.test_x));
    }
}
