//! Token embedding, sinusoidal positional encoding, and single-head
//! self-attention.
//!
//! These are the transformer ingredients the paper's projects name
//! explicitly: §2.9 ("embedding, positional encoding, and attention") for
//! the BERT-like malware classifier, and §2.2 ("positional encoding layers,
//! and attention layers") for the particle-filter weighting network.
//!
//! Unlike the batch layers in the rest of the crate, sequence layers treat
//! **matrix rows as sequence positions** of a single example; classifiers
//! over sequences train one sequence per step (exactly how the REU
//! students' single-GPU transformer ran).

use crate::init;
use crate::layer::Layer;
use treu_math::rng::SplitMix64;
use treu_math::{vector, Matrix};

/// A learned token-embedding table.
pub struct Embedding {
    table: Matrix,      // vocab x dim
    grad: Matrix,       // vocab x dim
    tokens: Vec<usize>, // cached token ids from the last forward
}

impl Embedding {
    /// Creates a `vocab x dim` embedding, N(0, 0.02) initialized (the
    /// BERT convention).
    pub fn new(vocab: usize, dim: usize, seed: u64) -> Self {
        Self::with_scale(vocab, dim, 0.02, seed)
    }

    /// Creates an embedding with an explicit init scale. Architectures
    /// whose gradient path is gated by hard selections (e.g. a global max
    /// pool) need larger initial embeddings than the transformer
    /// convention, or the selection never sees signal above the noise.
    pub fn with_scale(vocab: usize, dim: usize, scale: f64, seed: u64) -> Self {
        let mut rng = SplitMix64::new(treu_math::rng::derive_seed(seed, "embedding"));
        Self {
            table: init::scaled_normal(&mut rng, vocab, dim, scale),
            grad: Matrix::zeros(vocab, dim),
            tokens: Vec::new(),
        }
    }

    /// Embeds a token sequence into an `(len x dim)` matrix.
    ///
    /// # Panics
    ///
    /// Panics if any token id is out of vocabulary.
    pub fn forward_tokens(&mut self, tokens: &[usize]) -> Matrix {
        let dim = self.table.cols();
        let mut out = Matrix::zeros(tokens.len(), dim);
        for (i, &t) in tokens.iter().enumerate() {
            assert!(t < self.table.rows(), "token {t} out of vocab {}", self.table.rows());
            out.row_mut(i).copy_from_slice(self.table.row(t));
        }
        self.tokens = tokens.to_vec();
        out
    }

    /// Accumulates gradients for the last embedded sequence.
    pub fn backward_tokens(&mut self, grad_out: &Matrix) {
        assert_eq!(grad_out.rows(), self.tokens.len(), "Embedding: grad length mismatch");
        for (i, &t) in self.tokens.iter().enumerate() {
            let g = grad_out.row(i).to_vec();
            vector::axpy(1.0, &g, self.grad.row_mut(t));
        }
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.table.cols()
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.table.rows()
    }
}

impl Layer for Embedding {
    /// Not supported: embeddings consume token ids, not feature rows. Use
    /// [`Embedding::forward_tokens`].
    fn forward(&mut self, _input: &Matrix, _train: bool) -> Matrix {
        panic!("Embedding::forward: use forward_tokens for token input");
    }

    fn backward(&mut self, _grad_out: &Matrix) -> Matrix {
        panic!("Embedding::backward: use backward_tokens for token input");
    }

    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
        f(self.table.as_mut_slice(), self.grad.as_mut_slice());
    }

    fn zero_grads(&mut self) {
        self.grad.as_mut_slice().fill(0.0);
    }

    fn param_count(&self) -> usize {
        self.table.as_slice().len()
    }
}

/// Sinusoidal positional encoding, added in place to an `(len x dim)`
/// sequence. Parameter-free; gradients pass through unchanged.
#[derive(Debug, Default)]
pub struct PositionalEncoding;

impl PositionalEncoding {
    /// Creates the encoding layer.
    pub fn new() -> Self {
        Self
    }

    /// The encoding value at `(position, channel)` for width `dim`.
    pub fn value(pos: usize, ch: usize, dim: usize) -> f64 {
        let i = ch / 2;
        let angle = pos as f64 / 10_000f64.powf(2.0 * i as f64 / dim as f64);
        if ch.is_multiple_of(2) {
            angle.sin()
        } else {
            angle.cos()
        }
    }
}

impl Layer for PositionalEncoding {
    fn forward(&mut self, input: &Matrix, _train: bool) -> Matrix {
        let dim = input.cols();
        let mut out = input.clone();
        for p in 0..out.rows() {
            let row = out.row_mut(p);
            for (c, v) in row.iter_mut().enumerate() {
                *v += Self::value(p, c, dim);
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        grad_out.clone()
    }
}

/// Single-head scaled dot-product self-attention: `Y = softmax(QK^T/√d) V`
/// with learned `Wq, Wk, Wv` projections, over an `(len x dim)` sequence.
pub struct SelfAttention {
    dim: usize,
    wq: Matrix,
    wk: Matrix,
    wv: Matrix,
    grad_wq: Matrix,
    grad_wk: Matrix,
    grad_wv: Matrix,
    // Cached forward intermediates.
    x: Matrix,
    q: Matrix,
    k: Matrix,
    v: Matrix,
    attn: Matrix,
}

impl SelfAttention {
    /// Creates an attention layer over `dim`-wide token vectors.
    pub fn new(dim: usize, seed: u64) -> Self {
        let mk = |tag: &str| {
            let mut rng = SplitMix64::new(treu_math::rng::derive_seed(seed, tag));
            init::xavier_uniform(&mut rng, dim, dim)
        };
        Self {
            dim,
            wq: mk("attn.wq"),
            wk: mk("attn.wk"),
            wv: mk("attn.wv"),
            grad_wq: Matrix::zeros(dim, dim),
            grad_wk: Matrix::zeros(dim, dim),
            grad_wv: Matrix::zeros(dim, dim),
            x: Matrix::zeros(0, 0),
            q: Matrix::zeros(0, 0),
            k: Matrix::zeros(0, 0),
            v: Matrix::zeros(0, 0),
            attn: Matrix::zeros(0, 0),
        }
    }

    /// The attention weights of the last forward pass (rows sum to 1).
    pub fn attention_weights(&self) -> &Matrix {
        &self.attn
    }
}

impl Layer for SelfAttention {
    fn forward(&mut self, input: &Matrix, _train: bool) -> Matrix {
        assert_eq!(input.cols(), self.dim, "SelfAttention: width mismatch");
        self.x = input.clone();
        self.q = input.matmul(&self.wq);
        self.k = input.matmul(&self.wk);
        self.v = input.matmul(&self.wv);
        let scale = 1.0 / (self.dim as f64).sqrt();
        let mut scores = self.q.matmul_nt(&self.k);
        scores.scale_in_place(scale);
        let l = scores.rows();
        let mut attn = Matrix::zeros(l, l);
        for r in 0..l {
            let sm = vector::softmax(scores.row(r));
            attn.row_mut(r).copy_from_slice(&sm);
        }
        self.attn = attn;
        self.attn.matmul(&self.v)
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let scale = 1.0 / (self.dim as f64).sqrt();
        // dA = dY V^T ; dV = A^T dY — transposed operands are read in
        // place (matmul_nt / matmul_tn), as everywhere below: no
        // transpose() allocations in the backward pass.
        let d_attn = grad_out.matmul_nt(&self.v);
        let d_v = self.attn.matmul_tn(grad_out);
        // Softmax backward per row: dS_i = A_i ⊙ (dA_i - <dA_i, A_i>)
        let l = self.attn.rows();
        let mut d_scores = Matrix::zeros(l, l);
        for r in 0..l {
            let a = self.attn.row(r);
            let da = d_attn.row(r);
            let inner = vector::dot(da, a);
            for c in 0..l {
                d_scores[(r, c)] = a[c] * (da[c] - inner) * scale;
            }
        }
        // dQ = dS K ; dK = dS^T Q
        let d_q = d_scores.matmul(&self.k);
        let d_k = d_scores.matmul_tn(&self.q);
        // Parameter grads and input grad.
        self.grad_wq = self.grad_wq.add(&self.x.matmul_tn(&d_q));
        self.grad_wk = self.grad_wk.add(&self.x.matmul_tn(&d_k));
        self.grad_wv = self.grad_wv.add(&self.x.matmul_tn(&d_v));
        let mut grad_in = d_q.matmul_nt(&self.wq);
        grad_in = grad_in.add(&d_k.matmul_nt(&self.wk));
        grad_in.add(&d_v.matmul_nt(&self.wv))
    }

    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
        f(self.wq.as_mut_slice(), self.grad_wq.as_mut_slice());
        f(self.wk.as_mut_slice(), self.grad_wk.as_mut_slice());
        f(self.wv.as_mut_slice(), self.grad_wv.as_mut_slice());
    }

    fn zero_grads(&mut self) {
        self.grad_wq.as_mut_slice().fill(0.0);
        self.grad_wk.as_mut_slice().fill(0.0);
        self.grad_wv.as_mut_slice().fill(0.0);
    }

    fn param_count(&self) -> usize {
        3 * self.dim * self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::finite_diff_check;

    #[test]
    fn embedding_roundtrip_and_grads() {
        let mut e = Embedding::new(10, 4, 1);
        let x = e.forward_tokens(&[3, 3, 7]);
        assert_eq!(x.shape(), (3, 4));
        assert_eq!(x.row(0), x.row(1)); // same token, same vector
        let mut g = Matrix::zeros(3, 4);
        g.row_mut(0).fill(1.0);
        g.row_mut(1).fill(1.0);
        g.row_mut(2).fill(2.0);
        e.backward_tokens(&g);
        // Token 3 saw two rows of ones -> grad 2 per channel.
        assert!(e.grad.row(3).iter().all(|&v| (v - 2.0).abs() < 1e-12));
        assert!(e.grad.row(7).iter().all(|&v| (v - 2.0).abs() < 1e-12));
        assert!(e.grad.row(0).iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "out of vocab")]
    fn embedding_oov_panics() {
        Embedding::new(4, 2, 0).forward_tokens(&[4]);
    }

    #[test]
    fn positional_encoding_is_deterministic_and_bounded() {
        let mut pe = PositionalEncoding::new();
        let x = Matrix::zeros(16, 8);
        let y = pe.forward(&x, true);
        assert!(y.as_slice().iter().all(|v| v.abs() <= 1.0));
        // Position 0 even channels are sin(0)=0, odd are cos(0)=1.
        assert_eq!(y[(0, 0)], 0.0);
        assert_eq!(y[(0, 1)], 1.0);
        // Distinct positions get distinct encodings.
        assert_ne!(y.row(1), y.row(2));
    }

    #[test]
    fn attention_rows_sum_to_one() {
        let mut a = SelfAttention::new(6, 3);
        let mut rng = treu_math::rng::SplitMix64::new(5);
        let x = Matrix::from_fn(4, 6, |_, _| rng.next_gaussian());
        let y = a.forward(&x, true);
        assert_eq!(y.shape(), (4, 6));
        for r in 0..4 {
            let s: f64 = a.attention_weights().row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn attention_input_gradient_matches_finite_difference() {
        let mut a = SelfAttention::new(4, 7);
        let mut rng = treu_math::rng::SplitMix64::new(8);
        let x = Matrix::from_fn(3, 4, |_, _| rng.next_gaussian() * 0.5);
        finite_diff_check(&mut a, &x, 1e-3);
    }

    #[test]
    fn attention_weight_gradient_matches_finite_difference() {
        let mut a = SelfAttention::new(3, 9);
        let mut rng = treu_math::rng::SplitMix64::new(10);
        let x = Matrix::from_fn(4, 3, |_, _| rng.next_gaussian() * 0.5);
        let out = a.forward(&x, true);
        a.zero_grads();
        a.backward(&out);
        let analytic = a.grad_wq.clone();
        let eps = 1e-5;
        for i in 0..a.wq.as_slice().len() {
            let orig = a.wq.as_slice()[i];
            a.wq.as_mut_slice()[i] = orig + eps;
            let lp: f64 = a.forward(&x, true).as_slice().iter().map(|v| v * v * 0.5).sum();
            a.wq.as_mut_slice()[i] = orig - eps;
            let lm: f64 = a.forward(&x, true).as_slice().iter().map(|v| v * v * 0.5).sum();
            a.wq.as_mut_slice()[i] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - analytic.as_slice()[i]).abs() < 1e-3 * numeric.abs().max(1.0),
                "wq[{i}]: analytic {} vs numeric {numeric}",
                analytic.as_slice()[i]
            );
        }
    }

    #[test]
    fn embedding_layer_api_panics() {
        let mut e = Embedding::new(4, 2, 0);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            e.forward(&Matrix::zeros(1, 2), true)
        }));
        assert!(r.is_err());
    }
}
