//! The [`Layer`] trait and element-wise activation layers.
//!
//! A layer owns its parameters and their gradient buffers. The training
//! protocol is: `forward(x, train)` caches whatever it needs, `backward(g)`
//! accumulates parameter gradients and returns the gradient with respect to
//! the input, and the optimizer visits parameters through
//! [`Layer::for_each_param`]. Visitation order is deterministic (each layer
//! visits its buffers in a fixed order, the container visits layers in
//! order), which is what lets stateful optimizers like Adam keep their
//! moment estimates aligned without any registry.

use treu_math::Matrix;

/// A differentiable computation with owned parameters.
pub trait Layer {
    /// Computes the layer output for a batch (rows = samples).
    ///
    /// `train` distinguishes training from inference for layers that
    /// behave differently (none of the built-ins currently do, but
    /// project crates implement dropout-style layers).
    fn forward(&mut self, input: &Matrix, train: bool) -> Matrix;

    /// Backpropagates `grad_out` (gradient of the loss w.r.t. this layer's
    /// output), accumulating parameter gradients, and returns the gradient
    /// w.r.t. this layer's input.
    ///
    /// Must be called after a `forward` on the same batch.
    fn backward(&mut self, grad_out: &Matrix) -> Matrix;

    /// Visits every `(parameter, gradient)` buffer pair in a fixed order.
    ///
    /// The default is a no-op for parameter-free layers.
    fn for_each_param(&mut self, _f: &mut dyn FnMut(&mut [f64], &mut [f64])) {}

    /// Zeroes all gradient buffers. Default no-op.
    fn zero_grads(&mut self) {}

    /// Number of scalar parameters (for reporting). Default zero.
    fn param_count(&self) -> usize {
        0
    }
}

/// Rectified linear unit.
#[derive(Debug, Default)]
pub struct Relu {
    mask: Vec<bool>,
}

impl Relu {
    /// Creates a ReLU activation.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Matrix, _train: bool) -> Matrix {
        self.mask = input.as_slice().iter().map(|&v| v > 0.0).collect();
        let data = input.as_slice().iter().map(|&v| v.max(0.0)).collect();
        Matrix::from_vec(input.rows(), input.cols(), data)
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        assert_eq!(grad_out.as_slice().len(), self.mask.len(), "backward before forward");
        let data = grad_out
            .as_slice()
            .iter()
            .zip(&self.mask)
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        Matrix::from_vec(grad_out.rows(), grad_out.cols(), data)
    }
}

/// Hyperbolic tangent activation.
#[derive(Debug, Default)]
pub struct Tanh {
    output: Vec<f64>,
}

impl Tanh {
    /// Creates a tanh activation.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Tanh {
    fn forward(&mut self, input: &Matrix, _train: bool) -> Matrix {
        self.output = input.as_slice().iter().map(|v| v.tanh()).collect();
        Matrix::from_vec(input.rows(), input.cols(), self.output.clone())
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        assert_eq!(grad_out.as_slice().len(), self.output.len(), "backward before forward");
        let data = grad_out
            .as_slice()
            .iter()
            .zip(&self.output)
            .map(|(&g, &y)| g * (1.0 - y * y))
            .collect();
        Matrix::from_vec(grad_out.rows(), grad_out.cols(), data)
    }
}

/// Logistic sigmoid activation.
#[derive(Debug, Default)]
pub struct Sigmoid {
    output: Vec<f64>,
}

impl Sigmoid {
    /// Creates a sigmoid activation.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Sigmoid {
    fn forward(&mut self, input: &Matrix, _train: bool) -> Matrix {
        self.output = input.as_slice().iter().map(|&v| 1.0 / (1.0 + (-v).exp())).collect();
        Matrix::from_vec(input.rows(), input.cols(), self.output.clone())
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        assert_eq!(grad_out.as_slice().len(), self.output.len(), "backward before forward");
        let data = grad_out
            .as_slice()
            .iter()
            .zip(&self.output)
            .map(|(&g, &y)| g * y * (1.0 - y))
            .collect();
        Matrix::from_vec(grad_out.rows(), grad_out.cols(), data)
    }
}

/// Numerically checks a layer's input gradient against central finite
/// differences on a scalar loss `sum(output^2)/2`. Test helper shared by
/// the layer implementations.
#[doc(hidden)]
pub fn finite_diff_check<L: Layer>(layer: &mut L, input: &Matrix, tol: f64) {
    // Analytic gradient.
    let out = layer.forward(input, true);
    let grad_out = out.clone(); // d(sum(y^2)/2)/dy = y
    let grad_in = layer.backward(&grad_out);

    let eps = 1e-5;
    for i in 0..input.as_slice().len() {
        let mut plus = input.clone();
        plus.as_mut_slice()[i] += eps;
        let mut minus = input.clone();
        minus.as_mut_slice()[i] -= eps;
        let lp: f64 = layer.forward(&plus, true).as_slice().iter().map(|v| v * v * 0.5).sum();
        let lm: f64 = layer.forward(&minus, true).as_slice().iter().map(|v| v * v * 0.5).sum();
        let numeric = (lp - lm) / (2.0 * eps);
        let analytic = grad_in.as_slice()[i];
        assert!(
            (numeric - analytic).abs() <= tol * numeric.abs().max(1.0),
            "grad mismatch at {i}: analytic {analytic} vs numeric {numeric}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treu_math::rng::SplitMix64;

    fn random_batch(seed: u64, r: usize, c: usize) -> Matrix {
        let mut rng = SplitMix64::new(seed);
        Matrix::from_fn(r, c, |_, _| rng.next_gaussian())
    }

    #[test]
    fn relu_forward_clamps() {
        let mut relu = Relu::new();
        let x = Matrix::from_rows(&[&[-1.0, 0.0, 2.0]]);
        let y = relu.forward(&x, true);
        assert_eq!(y.row(0), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_backward_masks() {
        let mut relu = Relu::new();
        let x = Matrix::from_rows(&[&[-1.0, 3.0]]);
        relu.forward(&x, true);
        let g = relu.backward(&Matrix::from_rows(&[&[5.0, 5.0]]));
        assert_eq!(g.row(0), &[0.0, 5.0]);
    }

    #[test]
    fn tanh_gradient_matches_finite_difference() {
        let mut t = Tanh::new();
        finite_diff_check(&mut t, &random_batch(1, 3, 4), 1e-5);
    }

    #[test]
    fn sigmoid_gradient_matches_finite_difference() {
        let mut s = Sigmoid::new();
        finite_diff_check(&mut s, &random_batch(2, 2, 5), 1e-5);
    }

    #[test]
    fn relu_gradient_matches_finite_difference_away_from_kink() {
        // Shift inputs away from zero so the finite difference is valid.
        let mut x = random_batch(3, 3, 3);
        for v in x.as_mut_slice() {
            if v.abs() < 0.1 {
                *v += 0.5;
            }
        }
        finite_diff_check(&mut Relu::new(), &x, 1e-5);
    }

    #[test]
    fn activations_have_no_params() {
        let mut r = Relu::new();
        assert_eq!(r.param_count(), 0);
        let mut visited = 0;
        r.for_each_param(&mut |_, _| visited += 1);
        assert_eq!(visited, 0);
    }

    #[test]
    fn sigmoid_range() {
        let mut s = Sigmoid::new();
        let y = s.forward(&Matrix::from_rows(&[&[-100.0, 0.0, 100.0]]), false);
        assert!(y.row(0)[0] < 1e-10);
        assert!((y.row(0)[1] - 0.5).abs() < 1e-12);
        assert!(y.row(0)[2] > 1.0 - 1e-10);
    }
}
