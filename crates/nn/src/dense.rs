//! Fully-connected (dense) layer.

use crate::init;
use crate::layer::Layer;
use treu_math::rng::SplitMix64;
use treu_math::Matrix;

/// A dense layer computing `y = x W + b` for a batch `x` (rows = samples).
///
/// Weights are He-initialized from the constructor seed; biases start at
/// zero. Gradients accumulate across `backward` calls until
/// [`Layer::zero_grads`].
pub struct Dense {
    w: Matrix,        // in x out
    b: Vec<f64>,      // out
    grad_w: Matrix,   // in x out
    grad_b: Vec<f64>, // out
    input: Matrix,    // cached batch
}

impl Dense {
    /// Creates a dense layer with `fan_in` inputs and `fan_out` outputs,
    /// deterministically initialized from `seed`.
    pub fn new(fan_in: usize, fan_out: usize, seed: u64) -> Self {
        let mut rng = SplitMix64::new(treu_math::rng::derive_seed(seed, "dense.w"));
        Self {
            w: init::he_normal(&mut rng, fan_in, fan_out),
            b: vec![0.0; fan_out],
            grad_w: Matrix::zeros(fan_in, fan_out),
            grad_b: vec![0.0; fan_out],
            input: Matrix::zeros(0, 0),
        }
    }

    /// Input width.
    pub fn fan_in(&self) -> usize {
        self.w.rows()
    }

    /// Output width.
    pub fn fan_out(&self) -> usize {
        self.w.cols()
    }

    /// Read-only weight access (tests, analysis, weight transplanting for
    /// the fine-tuning experiments in `treu-histo`).
    pub fn weights(&self) -> &Matrix {
        &self.w
    }

    /// Mutable weight access; used by fine-tuning to transplant pretrained
    /// trunks.
    pub fn weights_mut(&mut self) -> &mut Matrix {
        &mut self.w
    }

    /// Read-only bias access.
    pub fn bias(&self) -> &[f64] {
        &self.b
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Matrix, _train: bool) -> Matrix {
        assert_eq!(input.cols(), self.w.rows(), "Dense: input width mismatch");
        self.input = input.clone();
        let mut out = input.matmul(&self.w);
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for (o, bi) in row.iter_mut().zip(&self.b) {
                *o += bi;
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        assert_eq!(grad_out.rows(), self.input.rows(), "Dense: backward batch mismatch");
        assert_eq!(grad_out.cols(), self.w.cols(), "Dense: backward width mismatch");
        // dW = x^T g ; db = column sums of g ; dx = g W^T — both GEMMs
        // read the transposed operand in place (matmul_tn / matmul_nt), so
        // no transpose copies are allocated on the training hot path.
        let gw = self.input.matmul_tn(grad_out);
        self.grad_w = self.grad_w.add(&gw);
        for r in 0..grad_out.rows() {
            for (gb, g) in self.grad_b.iter_mut().zip(grad_out.row(r)) {
                *gb += g;
            }
        }
        grad_out.matmul_nt(&self.w)
    }

    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
        f(self.w.as_mut_slice(), self.grad_w.as_mut_slice());
        f(&mut self.b, &mut self.grad_b);
    }

    fn zero_grads(&mut self) {
        self.grad_w.as_mut_slice().fill(0.0);
        self.grad_b.fill(0.0);
    }

    fn param_count(&self) -> usize {
        self.w.as_slice().len() + self.b.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::finite_diff_check;
    use treu_math::rng::SplitMix64;

    #[test]
    fn forward_shape_and_bias() {
        let mut d = Dense::new(3, 2, 1);
        // Zero the weights so output equals the bias.
        d.weights_mut().as_mut_slice().fill(0.0);
        d.b.copy_from_slice(&[1.0, -1.0]);
        let y = d.forward(&Matrix::from_rows(&[&[5.0, 6.0, 7.0]]), true);
        assert_eq!(y.row(0), &[1.0, -1.0]);
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut d = Dense::new(4, 3, 2);
        let mut rng = SplitMix64::new(9);
        let x = Matrix::from_fn(2, 4, |_, _| rng.next_gaussian());
        finite_diff_check(&mut d, &x, 1e-4);
    }

    #[test]
    fn weight_gradient_matches_finite_difference() {
        let mut d = Dense::new(3, 2, 5);
        let mut rng = SplitMix64::new(10);
        let x = Matrix::from_fn(4, 3, |_, _| rng.next_gaussian());

        let out = d.forward(&x, true);
        d.zero_grads();
        d.backward(&out.clone());
        let analytic = d.grad_w.clone();

        let eps = 1e-5;
        for i in 0..d.w.as_slice().len() {
            let orig = d.w.as_slice()[i];
            d.w.as_mut_slice()[i] = orig + eps;
            let lp: f64 = d.forward(&x, true).as_slice().iter().map(|v| v * v * 0.5).sum();
            d.w.as_mut_slice()[i] = orig - eps;
            let lm: f64 = d.forward(&x, true).as_slice().iter().map(|v| v * v * 0.5).sum();
            d.w.as_mut_slice()[i] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let a = analytic.as_slice()[i];
            assert!((numeric - a).abs() < 1e-4 * numeric.abs().max(1.0), "i={i} {a} vs {numeric}");
        }
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let mut d = Dense::new(2, 2, 3);
        let x = Matrix::from_rows(&[&[1.0, 2.0]]);
        let g = Matrix::from_rows(&[&[1.0, 1.0]]);
        d.forward(&x, true);
        d.backward(&g);
        let once = d.grad_w.clone();
        d.forward(&x, true);
        d.backward(&g);
        let twice = d.grad_w.clone();
        assert!(
            twice.max_abs_diff(&{
                let mut m = once.clone();
                m.scale_in_place(2.0);
                m
            }) < 1e-12
        );
        d.zero_grads();
        assert_eq!(d.grad_w.frobenius_norm(), 0.0);
    }

    #[test]
    fn param_count() {
        let d = Dense::new(10, 4, 0);
        assert_eq!(d.param_count(), 44);
    }

    #[test]
    fn deterministic_init() {
        let a = Dense::new(5, 5, 77);
        let b = Dense::new(5, 5, 77);
        assert_eq!(a.weights(), b.weights());
    }
}
