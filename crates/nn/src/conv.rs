//! One-dimensional convolution and pooling.
//!
//! The malware project (§2.9) follows McLaughlin et al.'s architecture:
//! embed opcodes, convolve along the sequence, global-max-pool, classify.
//! [`Conv1d`] and [`GlobalMaxPool1d`] are those pieces. Batches are rows of
//! a `Matrix` whose columns are a `(channels x length)` flattening in
//! channel-major order: element `c * len + t` is channel `c` at position
//! `t`.

use crate::init;
use crate::layer::Layer;
use treu_math::rng::SplitMix64;
use treu_math::Matrix;

/// 1-D convolution with "valid" padding and stride 1.
///
/// Input rows are `(in_channels x len)` channel-major flattenings; output
/// rows are `(out_channels x (len - kernel + 1))`.
pub struct Conv1d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    len: usize,
    /// Weights: `out_channels x (in_channels * kernel)` (each row is one
    /// output filter, channel-major within the row).
    w: Matrix,
    b: Vec<f64>,
    grad_w: Matrix,
    grad_b: Vec<f64>,
    input: Matrix,
}

impl Conv1d {
    /// Creates a convolution over sequences of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `kernel > len` or any dimension is zero.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        len: usize,
        seed: u64,
    ) -> Self {
        assert!(in_channels > 0 && out_channels > 0 && kernel > 0, "Conv1d: zero dimension");
        assert!(kernel <= len, "Conv1d: kernel longer than sequence");
        let mut rng = SplitMix64::new(treu_math::rng::derive_seed(seed, "conv1d.w"));
        let fan_in = in_channels * kernel;
        Self {
            in_channels,
            out_channels,
            kernel,
            len,
            w: init::he_normal(&mut rng, out_channels, fan_in),
            b: vec![0.0; out_channels],
            grad_w: Matrix::zeros(out_channels, fan_in),
            grad_b: vec![0.0; out_channels],
            input: Matrix::zeros(0, 0),
        }
    }

    /// Output sequence length (`len - kernel + 1`).
    pub fn out_len(&self) -> usize {
        self.len - self.kernel + 1
    }

    /// Output row width (`out_channels * out_len`).
    pub fn out_width(&self) -> usize {
        self.out_channels * self.out_len()
    }
}

impl Layer for Conv1d {
    fn forward(&mut self, input: &Matrix, _train: bool) -> Matrix {
        assert_eq!(input.cols(), self.in_channels * self.len, "Conv1d: input width mismatch");
        self.input = input.clone();
        let out_len = self.out_len();
        let mut out = Matrix::zeros(input.rows(), self.out_channels * out_len);
        for r in 0..input.rows() {
            let x = input.row(r);
            for oc in 0..self.out_channels {
                let filt = self.w.row(oc);
                for t in 0..out_len {
                    let mut acc = self.b[oc];
                    for ic in 0..self.in_channels {
                        let xoff = ic * self.len + t;
                        let woff = ic * self.kernel;
                        for k in 0..self.kernel {
                            acc += x[xoff + k] * filt[woff + k];
                        }
                    }
                    out[(r, oc * out_len + t)] = acc;
                }
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let out_len = self.out_len();
        assert_eq!(grad_out.cols(), self.out_channels * out_len, "Conv1d: grad width mismatch");
        assert_eq!(grad_out.rows(), self.input.rows(), "Conv1d: grad batch mismatch");
        let mut grad_in = Matrix::zeros(self.input.rows(), self.in_channels * self.len);
        for r in 0..grad_out.rows() {
            let x = self.input.row(r);
            for oc in 0..self.out_channels {
                for t in 0..out_len {
                    let g = grad_out[(r, oc * out_len + t)];
                    if g == 0.0 {
                        continue;
                    }
                    self.grad_b[oc] += g;
                    for ic in 0..self.in_channels {
                        let xoff = ic * self.len + t;
                        let woff = ic * self.kernel;
                        for k in 0..self.kernel {
                            self.grad_w[(oc, woff + k)] += g * x[xoff + k];
                            grad_in[(r, xoff + k)] += g * self.w[(oc, woff + k)];
                        }
                    }
                }
            }
        }
        grad_in
    }

    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
        f(self.w.as_mut_slice(), self.grad_w.as_mut_slice());
        f(&mut self.b, &mut self.grad_b);
    }

    fn zero_grads(&mut self) {
        self.grad_w.as_mut_slice().fill(0.0);
        self.grad_b.fill(0.0);
    }

    fn param_count(&self) -> usize {
        self.w.as_slice().len() + self.b.len()
    }
}

/// Global max pooling over the time axis of a `(channels x len)` row.
///
/// Output rows have one value per channel — the sequence-length-independent
/// summary that lets the §2.9 CNN consume arbitrarily long opcode streams.
pub struct GlobalMaxPool1d {
    channels: usize,
    len: usize,
    argmax: Vec<usize>, // per (row, channel): winning time index
    rows: usize,
}

impl GlobalMaxPool1d {
    /// Creates a pool over `(channels x len)` rows.
    pub fn new(channels: usize, len: usize) -> Self {
        assert!(channels > 0 && len > 0, "GlobalMaxPool1d: zero dimension");
        Self { channels, len, argmax: Vec::new(), rows: 0 }
    }
}

impl Layer for GlobalMaxPool1d {
    fn forward(&mut self, input: &Matrix, _train: bool) -> Matrix {
        assert_eq!(input.cols(), self.channels * self.len, "GlobalMaxPool1d: width mismatch");
        self.rows = input.rows();
        self.argmax = vec![0; input.rows() * self.channels];
        let mut out = Matrix::zeros(input.rows(), self.channels);
        for r in 0..input.rows() {
            let x = input.row(r);
            for c in 0..self.channels {
                let seg = &x[c * self.len..(c + 1) * self.len];
                let mut best = 0;
                for (t, v) in seg.iter().enumerate().skip(1) {
                    if *v > seg[best] {
                        best = t;
                    }
                }
                self.argmax[r * self.channels + c] = best;
                out[(r, c)] = seg[best];
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        assert_eq!(grad_out.cols(), self.channels, "GlobalMaxPool1d: grad width mismatch");
        assert_eq!(grad_out.rows(), self.rows, "GlobalMaxPool1d: grad batch mismatch");
        let mut grad_in = Matrix::zeros(self.rows, self.channels * self.len);
        for r in 0..self.rows {
            for c in 0..self.channels {
                let t = self.argmax[r * self.channels + c];
                grad_in[(r, c * self.len + t)] = grad_out[(r, c)];
            }
        }
        grad_in
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::finite_diff_check;
    use treu_math::rng::SplitMix64;

    #[test]
    fn conv_known_values() {
        // 1 channel, kernel [1, 2], bias 0, input [1, 2, 3].
        let mut c = Conv1d::new(1, 1, 2, 3, 0);
        c.w.as_mut_slice().copy_from_slice(&[1.0, 2.0]);
        c.b[0] = 0.5;
        let y = c.forward(&Matrix::from_rows(&[&[1.0, 2.0, 3.0]]), true);
        // [1*1+2*2, 1*2+2*3] + 0.5 = [5.5, 8.5]
        assert_eq!(y.row(0), &[5.5, 8.5]);
        assert_eq!(c.out_len(), 2);
        assert_eq!(c.out_width(), 2);
    }

    #[test]
    fn conv_multichannel_shapes() {
        let mut c = Conv1d::new(3, 4, 5, 20, 1);
        let mut rng = SplitMix64::new(2);
        let x = Matrix::from_fn(2, 3 * 20, |_, _| rng.next_gaussian());
        let y = c.forward(&x, true);
        assert_eq!(y.shape(), (2, 4 * 16));
    }

    #[test]
    fn conv_input_gradient_matches_finite_difference() {
        let mut c = Conv1d::new(2, 3, 3, 6, 3);
        let mut rng = SplitMix64::new(4);
        let x = Matrix::from_fn(2, 12, |_, _| rng.next_gaussian());
        finite_diff_check(&mut c, &x, 1e-4);
    }

    #[test]
    fn conv_weight_gradient_matches_finite_difference() {
        let mut c = Conv1d::new(1, 2, 2, 5, 5);
        let mut rng = SplitMix64::new(6);
        let x = Matrix::from_fn(3, 5, |_, _| rng.next_gaussian());
        let out = c.forward(&x, true);
        c.zero_grads();
        c.backward(&out);
        let analytic = c.grad_w.clone();
        let eps = 1e-5;
        for i in 0..c.w.as_slice().len() {
            let orig = c.w.as_slice()[i];
            c.w.as_mut_slice()[i] = orig + eps;
            let lp: f64 = c.forward(&x, true).as_slice().iter().map(|v| v * v * 0.5).sum();
            c.w.as_mut_slice()[i] = orig - eps;
            let lm: f64 = c.forward(&x, true).as_slice().iter().map(|v| v * v * 0.5).sum();
            c.w.as_mut_slice()[i] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - analytic.as_slice()[i]).abs() < 1e-4 * numeric.abs().max(1.0),
                "i={i}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "kernel longer than sequence")]
    fn conv_kernel_too_long_panics() {
        Conv1d::new(1, 1, 10, 5, 0);
    }

    #[test]
    fn pool_takes_max_per_channel() {
        let mut p = GlobalMaxPool1d::new(2, 3);
        let x = Matrix::from_rows(&[&[1.0, 5.0, 2.0, -1.0, -7.0, -2.0]]);
        let y = p.forward(&x, true);
        assert_eq!(y.row(0), &[5.0, -1.0]);
    }

    #[test]
    fn pool_routes_gradient_to_argmax() {
        let mut p = GlobalMaxPool1d::new(1, 4);
        p.forward(&Matrix::from_rows(&[&[0.0, 9.0, 1.0, 2.0]]), true);
        let g = p.backward(&Matrix::from_rows(&[&[3.0]]));
        assert_eq!(g.row(0), &[0.0, 3.0, 0.0, 0.0]);
    }

    #[test]
    fn pool_gradient_matches_finite_difference() {
        let mut rng = SplitMix64::new(8);
        let x = Matrix::from_fn(2, 8, |_, _| rng.next_gaussian());
        finite_diff_check(&mut GlobalMaxPool1d::new(2, 4), &x, 1e-5);
    }
}
