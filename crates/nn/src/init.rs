//! Deterministic weight initialization.
//!
//! All initializers take an explicit seed. Layers in this crate take a
//! `seed` argument in their constructors and derive their weight streams
//! with [`treu_math::rng::derive_seed`], so a model's initial state is a
//! pure function of its architecture and seeds.

use treu_math::rng::SplitMix64;
use treu_math::Matrix;

/// Xavier/Glorot uniform initialization: `U[-a, a]` with
/// `a = sqrt(6 / (fan_in + fan_out))`. Appropriate before tanh/sigmoid.
pub fn xavier_uniform(rng: &mut SplitMix64, fan_in: usize, fan_out: usize) -> Matrix {
    let a = (6.0 / (fan_in + fan_out) as f64).sqrt();
    Matrix::from_fn(fan_in, fan_out, |_, _| (rng.next_f64() * 2.0 - 1.0) * a)
}

/// He/Kaiming normal initialization: `N(0, 2/fan_in)`. Appropriate before
/// ReLU.
pub fn he_normal(rng: &mut SplitMix64, fan_in: usize, fan_out: usize) -> Matrix {
    let std = (2.0 / fan_in as f64).sqrt();
    Matrix::from_fn(fan_in, fan_out, |_, _| rng.next_gaussian() * std)
}

/// Small-scale normal initialization `N(0, scale^2)`, used for embeddings.
pub fn scaled_normal(rng: &mut SplitMix64, rows: usize, cols: usize, scale: f64) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.next_gaussian() * scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_respects_bound() {
        let mut rng = SplitMix64::new(1);
        let w = xavier_uniform(&mut rng, 100, 50);
        let a = (6.0 / 150.0f64).sqrt();
        assert!(w.as_slice().iter().all(|&v| v.abs() <= a));
        assert_eq!(w.shape(), (100, 50));
    }

    #[test]
    fn he_variance_is_plausible() {
        let mut rng = SplitMix64::new(2);
        let w = he_normal(&mut rng, 200, 200);
        let var: f64 = w.as_slice().iter().map(|v| v * v).sum::<f64>() / w.as_slice().len() as f64;
        assert!((var - 0.01).abs() < 0.002, "var {var}"); // 2/200 = 0.01
    }

    #[test]
    fn initialization_is_deterministic() {
        let a = he_normal(&mut SplitMix64::new(7), 10, 10);
        let b = he_normal(&mut SplitMix64::new(7), 10, 10);
        assert_eq!(a, b);
        let c = he_normal(&mut SplitMix64::new(8), 10, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn scaled_normal_scale() {
        let mut rng = SplitMix64::new(3);
        let w = scaled_normal(&mut rng, 50, 50, 0.01);
        let max = w.as_slice().iter().fold(0.0f64, |m, v| m.max(v.abs()));
        assert!(max < 0.1, "max {max}");
    }
}
