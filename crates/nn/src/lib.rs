//! `treu-nn` — a small, deterministic neural-network library.
//!
//! Five of the paper's student projects (§2.2, §2.3, §2.7, §2.8, §2.9) were
//! "written in PyTorch" and run on GPUs. This crate is the substitution that
//! makes them runnable on a laptop with bitwise reproducibility: dense,
//! convolutional and attention layers with hand-derived backpropagation,
//! SGD/Adam optimizers, and a [`model::Sequential`] container — all over the
//! `treu-math` [`treu_math::Matrix`] type with batches as rows.
//!
//! The library is intentionally eager and entirely `f64`: the projects'
//! findings are about *relative* behaviour of training regimes, which is
//! preserved, while determinism — the REU's actual subject — is
//! strengthened.
//!
//! # Example
//!
//! ```
//! use treu_nn::prelude::*;
//! use treu_math::Matrix;
//!
//! // XOR with a 2-8-2 MLP.
//! let mut model = Sequential::new(vec![
//!     Box::new(Dense::new(2, 8, 1)),
//!     Box::new(Relu::new()),
//!     Box::new(Dense::new(8, 2, 2)),
//! ]);
//! let x = Matrix::from_rows(&[&[0.,0.],&[0.,1.],&[1.,0.],&[1.,1.]]);
//! let y = vec![0usize, 1, 1, 0];
//! let mut opt = Sgd::new(0.5, 0.9);
//! for _ in 0..500 {
//!     let logits = model.forward(&x, true);
//!     let (loss, grad) = softmax_cross_entropy(&logits, &y);
//!     assert!(loss.is_finite());
//!     model.backward(&grad);
//!     opt.step(&mut model);
//!     model.zero_grads();
//! }
//! let acc = accuracy(&model.forward(&x, false), &y);
//! assert_eq!(acc, 1.0);
//! ```

#![forbid(unsafe_code)]
// Indexed loops over multiple parallel arrays are the clearest idiom in
// this crate's numeric kernels; the zip-chain rewrite the lint suggests
// obscures them.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod attention;
pub mod conv;
pub mod conv2d;
pub mod dense;
pub mod init;
pub mod layer;
pub mod loss;
pub mod model;
pub mod norm;
pub mod optimizer;

/// Convenient glob import for model building.
pub mod prelude {
    pub use crate::attention::{Embedding, PositionalEncoding, SelfAttention};
    pub use crate::conv::{Conv1d, GlobalMaxPool1d};
    pub use crate::conv2d::Conv2d;
    pub use crate::dense::Dense;
    pub use crate::layer::{Layer, Relu, Sigmoid, Tanh};
    pub use crate::loss::{accuracy, mse, softmax_cross_entropy};
    pub use crate::model::Sequential;
    pub use crate::norm::LayerNorm;
    pub use crate::optimizer::{Adam, Optimizer, Sgd};
}
