//! Loss functions and classification metrics.

use treu_math::{vector, Matrix};

/// Softmax cross-entropy over a batch of logits.
///
/// Returns `(mean loss, gradient w.r.t. logits)`. The gradient is already
/// divided by the batch size, so it feeds straight into `backward`.
///
/// # Panics
///
/// Panics if `labels.len() != logits.rows()` or any label is out of range.
pub fn softmax_cross_entropy(logits: &Matrix, labels: &[usize]) -> (f64, Matrix) {
    assert_eq!(labels.len(), logits.rows(), "cross entropy: label count mismatch");
    let n = logits.rows().max(1) as f64;
    let mut grad = Matrix::zeros(logits.rows(), logits.cols());
    let mut loss = 0.0;
    for r in 0..logits.rows() {
        let y = labels[r];
        assert!(y < logits.cols(), "label {y} out of range {}", logits.cols());
        let p = vector::softmax(logits.row(r));
        loss += -(p[y].max(1e-300)).ln();
        let grow = grad.row_mut(r);
        for (c, pc) in p.iter().enumerate() {
            grow[c] = (pc - if c == y { 1.0 } else { 0.0 }) / n;
        }
    }
    (loss / n, grad)
}

/// Mean squared error over a batch.
///
/// Returns `(mean loss, gradient w.r.t. predictions)`; the loss is averaged
/// over every element.
///
/// # Panics
///
/// Panics if shapes disagree.
pub fn mse(pred: &Matrix, target: &Matrix) -> (f64, Matrix) {
    assert_eq!(pred.shape(), target.shape(), "mse: shape mismatch");
    let n = pred.as_slice().len().max(1) as f64;
    let mut grad = Matrix::zeros(pred.rows(), pred.cols());
    let mut loss = 0.0;
    for (i, (p, t)) in pred.as_slice().iter().zip(target.as_slice()).enumerate() {
        let d = p - t;
        loss += d * d;
        grad.as_mut_slice()[i] = 2.0 * d / n;
    }
    (loss / n, grad)
}

/// Fraction of rows whose argmax equals the label.
pub fn accuracy(logits: &Matrix, labels: &[usize]) -> f64 {
    assert_eq!(labels.len(), logits.rows(), "accuracy: label count mismatch");
    if labels.is_empty() {
        return 0.0;
    }
    let correct = labels
        .iter()
        .enumerate()
        .filter(|(r, &y)| vector::argmax(logits.row(*r)) == Some(y))
        .count();
    correct as f64 / labels.len() as f64
}

/// Per-class confusion matrix: `counts[(true, predicted)]`.
pub fn confusion_matrix(logits: &Matrix, labels: &[usize], classes: usize) -> Matrix {
    let mut m = Matrix::zeros(classes, classes);
    for (r, &y) in labels.iter().enumerate() {
        if let Some(p) = vector::argmax(logits.row(r)) {
            m[(y, p)] += 1.0;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_of_perfect_prediction_is_small() {
        let logits = Matrix::from_rows(&[&[20.0, -20.0], &[-20.0, 20.0]]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 1]);
        assert!(loss < 1e-10);
    }

    #[test]
    fn cross_entropy_of_uniform_is_log_k() {
        let logits = Matrix::from_rows(&[&[0.0, 0.0, 0.0, 0.0]]);
        let (loss, _) = softmax_cross_entropy(&logits, &[2]);
        assert!((loss - 4.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let logits = Matrix::from_rows(&[&[0.3, -0.7, 1.2], &[0.1, 0.0, -0.4]]);
        let labels = [2, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-6;
        for i in 0..logits.as_slice().len() {
            let mut p = logits.clone();
            p.as_mut_slice()[i] += eps;
            let mut m = logits.clone();
            m.as_mut_slice()[i] -= eps;
            let (lp, _) = softmax_cross_entropy(&p, &labels);
            let (lm, _) = softmax_cross_entropy(&m, &labels);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - grad.as_slice()[i]).abs() < 1e-6, "i={i}");
        }
    }

    #[test]
    fn mse_basics() {
        let p = Matrix::from_rows(&[&[1.0, 2.0]]);
        let t = Matrix::from_rows(&[&[0.0, 2.0]]);
        let (loss, grad) = mse(&p, &t);
        assert!((loss - 0.5).abs() < 1e-12);
        assert_eq!(grad.row(0), &[1.0, 0.0]);
    }

    #[test]
    fn accuracy_counts_matches() {
        let logits = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 0.0]]);
        assert_eq!(accuracy(&logits, &[0, 1, 1]), 2.0 / 3.0);
        assert_eq!(accuracy(&Matrix::zeros(0, 2), &[]), 0.0);
    }

    #[test]
    fn confusion_matrix_diagonal_for_perfect() {
        let logits = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let cm = confusion_matrix(&logits, &[0, 1], 2);
        assert_eq!(cm[(0, 0)], 1.0);
        assert_eq!(cm[(1, 1)], 1.0);
        assert_eq!(cm[(0, 1)], 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_label_panics() {
        softmax_cross_entropy(&Matrix::zeros(1, 2), &[5]);
    }
}
