//! The [`Sequential`] container and training helpers.

use crate::layer::Layer;
use crate::loss::softmax_cross_entropy;
use crate::optimizer::Optimizer;
use treu_math::rng::SplitMix64;
use treu_math::Matrix;

/// A stack of layers applied in order.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Builds a model from boxed layers.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Self { layers }
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True if the model has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Immutable access to layer `i` (for analysis/transplanting, the
    /// caller downcasts via its own bookkeeping).
    pub fn layer(&self, i: usize) -> &dyn Layer {
        self.layers[i].as_ref()
    }

    /// Mutable access to layer `i`.
    pub fn layer_mut(&mut self, i: usize) -> &mut dyn Layer {
        self.layers[i].as_mut()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, input: &Matrix, train: bool) -> Matrix {
        let mut x = input.clone();
        for l in &mut self.layers {
            x = l.forward(&x, train);
        }
        x
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let mut g = grad_out.clone();
        for l in self.layers.iter_mut().rev() {
            g = l.backward(&g);
        }
        g
    }

    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
        for l in &mut self.layers {
            l.for_each_param(f);
        }
    }

    fn zero_grads(&mut self) {
        for l in &mut self.layers {
            l.zero_grads();
        }
    }

    fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }
}

/// One epoch of minibatch classification training.
///
/// Shuffles sample order with `rng` (deterministic given the stream),
/// slices `(x, y)` into batches of `batch_size`, and performs a
/// forward/backward/step per batch. Returns the mean per-batch loss.
///
/// # Panics
///
/// Panics if `x.rows() != y.len()` or `batch_size == 0`.
pub fn train_epoch(
    model: &mut Sequential,
    opt: &mut dyn Optimizer,
    x: &Matrix,
    y: &[usize],
    batch_size: usize,
    rng: &mut SplitMix64,
) -> f64 {
    assert_eq!(x.rows(), y.len(), "train_epoch: label count mismatch");
    assert!(batch_size > 0, "train_epoch: zero batch size");
    let order = treu_math::rng::permutation(rng, y.len());
    let mut total = 0.0;
    let mut batches = 0usize;
    for chunk in order.chunks(batch_size) {
        let mut bx = Matrix::zeros(chunk.len(), x.cols());
        let mut by = Vec::with_capacity(chunk.len());
        for (i, &idx) in chunk.iter().enumerate() {
            bx.row_mut(i).copy_from_slice(x.row(idx));
            by.push(y[idx]);
        }
        let logits = model.forward(&bx, true);
        let (loss, grad) = softmax_cross_entropy(&logits, &by);
        model.backward(&grad);
        opt.step(model);
        model.zero_grads();
        total += loss;
        batches += 1;
    }
    if batches == 0 {
        0.0
    } else {
        total / batches as f64
    }
}

/// Predicted class per row (argmax of logits) without gradient tracking.
pub fn predict(model: &mut Sequential, x: &Matrix) -> Vec<usize> {
    let logits = model.forward(x, false);
    (0..logits.rows()).map(|r| treu_math::vector::argmax(logits.row(r)).unwrap_or(0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::Dense;
    use crate::layer::Relu;
    use crate::loss::accuracy;
    use crate::optimizer::Sgd;

    /// Two Gaussian blobs, linearly separable.
    fn blobs(seed: u64, n_per: usize) -> (Matrix, Vec<usize>) {
        let mut rng = SplitMix64::new(seed);
        let mut x = Matrix::zeros(2 * n_per, 2);
        let mut y = Vec::new();
        for i in 0..2 * n_per {
            let c = i / n_per;
            let cx = if c == 0 { -2.0 } else { 2.0 };
            x[(i, 0)] = cx + rng.next_gaussian() * 0.5;
            x[(i, 1)] = rng.next_gaussian() * 0.5;
            y.push(c);
        }
        (x, y)
    }

    fn mlp(seed: u64) -> Sequential {
        Sequential::new(vec![
            Box::new(Dense::new(2, 16, seed)),
            Box::new(Relu::new()),
            Box::new(Dense::new(16, 2, seed + 1)),
        ])
    }

    #[test]
    fn learns_linearly_separable_blobs() {
        let (x, y) = blobs(1, 50);
        let mut model = mlp(10);
        let mut opt = Sgd::new(0.1, 0.9);
        let mut rng = SplitMix64::new(2);
        let mut last = f64::INFINITY;
        for _ in 0..30 {
            last = train_epoch(&mut model, &mut opt, &x, &y, 16, &mut rng);
        }
        assert!(last < 0.1, "final loss {last}");
        let acc = accuracy(&model.forward(&x, false), &y);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn training_is_deterministic() {
        let (x, y) = blobs(3, 30);
        let run = || {
            let mut model = mlp(7);
            let mut opt = Sgd::new(0.05, 0.0);
            let mut rng = SplitMix64::new(11);
            for _ in 0..5 {
                train_epoch(&mut model, &mut opt, &x, &y, 8, &mut rng);
            }
            model.forward(&x, false)
        };
        let a = run();
        let b = run();
        assert_eq!(a.max_abs_diff(&b), 0.0, "training must be bitwise deterministic");
    }

    #[test]
    fn predict_matches_argmax() {
        let (x, y) = blobs(5, 10);
        let mut model = mlp(9);
        let preds = predict(&mut model, &x);
        assert_eq!(preds.len(), y.len());
        assert!(preds.iter().all(|&p| p < 2));
    }

    #[test]
    fn param_count_sums_layers() {
        let model = mlp(0);
        // 2*16+16 + 16*2+2 = 48 + 34 = 82
        let mut m = model;
        assert_eq!(Layer::param_count(&m), 82);
        let mut seen = 0;
        m.for_each_param(&mut |p, _| seen += p.len());
        assert_eq!(seen, 82);
    }

    #[test]
    #[should_panic(expected = "zero batch size")]
    fn zero_batch_panics() {
        let (x, y) = blobs(6, 4);
        let mut model = mlp(1);
        let mut opt = Sgd::new(0.1, 0.0);
        let mut rng = SplitMix64::new(0);
        train_epoch(&mut model, &mut opt, &x, &y, 0, &mut rng);
    }

    #[test]
    fn empty_model_is_identity() {
        let mut m = Sequential::new(vec![]);
        assert!(m.is_empty());
        let x = Matrix::from_rows(&[&[1.0, 2.0]]);
        assert_eq!(m.forward(&x, true), x);
    }
}
