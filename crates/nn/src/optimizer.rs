//! Parameter-update rules.
//!
//! Optimizers visit a model's parameters through
//! [`crate::layer::Layer::for_each_param`]. Because visitation order is
//! deterministic, stateful optimizers keep per-buffer state in a `Vec`
//! indexed by visitation position — no parameter registry or interior
//! mutability needed.

use crate::layer::Layer;

/// An update rule applicable to any [`Layer`] (including containers).
pub trait Optimizer {
    /// Applies one update step using the currently accumulated gradients.
    /// Does not zero gradients; call [`Layer::zero_grads`] afterwards.
    fn step(&mut self, model: &mut dyn Layer);
}

/// Stochastic gradient descent with classical momentum.
pub struct Sgd {
    lr: f64,
    momentum: f64,
    velocity: Vec<Vec<f64>>,
}

impl Sgd {
    /// Creates SGD with learning rate `lr` and momentum coefficient
    /// `momentum` (`0.0` disables momentum).
    pub fn new(lr: f64, momentum: f64) -> Self {
        Self { lr, momentum, velocity: Vec::new() }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f64 {
        self.lr
    }

    /// Replaces the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f64) {
        self.lr = lr;
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, model: &mut dyn Layer) {
        let mut idx = 0usize;
        let lr = self.lr;
        let mu = self.momentum;
        let velocity = &mut self.velocity;
        model.for_each_param(&mut |params, grads| {
            if velocity.len() == idx {
                velocity.push(vec![0.0; params.len()]);
            }
            let v = &mut velocity[idx];
            assert_eq!(v.len(), params.len(), "Sgd: model shape changed between steps");
            for ((p, g), vi) in params.iter_mut().zip(grads.iter()).zip(v.iter_mut()) {
                *vi = mu * *vi - lr * g;
                *p += *vi;
            }
            idx += 1;
        });
    }
}

/// Adam (Kingma & Ba, 2015) with bias correction.
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    m: Vec<Vec<f64>>,
    v: Vec<Vec<f64>>,
}

impl Adam {
    /// Creates Adam with the standard defaults `beta1=0.9`, `beta2=0.999`,
    /// `eps=1e-8`.
    pub fn new(lr: f64) -> Self {
        Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }

    /// Creates Adam with explicit hyperparameters.
    pub fn with_betas(lr: f64, beta1: f64, beta2: f64) -> Self {
        Self { beta1, beta2, ..Self::new(lr) }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, model: &mut dyn Layer) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let (lr, b1, b2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        let (ms, vs) = (&mut self.m, &mut self.v);
        let mut idx = 0usize;
        model.for_each_param(&mut |params, grads| {
            if ms.len() == idx {
                ms.push(vec![0.0; params.len()]);
                vs.push(vec![0.0; params.len()]);
            }
            let m = &mut ms[idx];
            let v = &mut vs[idx];
            assert_eq!(m.len(), params.len(), "Adam: model shape changed between steps");
            for i in 0..params.len() {
                let g = grads[i];
                m[i] = b1 * m[i] + (1.0 - b1) * g;
                v[i] = b2 * v[i] + (1.0 - b2) * g * g;
                let mhat = m[i] / bc1;
                let vhat = v[i] / bc2;
                params[i] -= lr * mhat / (vhat.sqrt() + eps);
            }
            idx += 1;
        });
    }
}

/// Clips every gradient buffer to a global L2 norm of at most `max_norm`.
///
/// Used by the RL crate (DQN training is famously unstable without it).
pub fn clip_grad_norm(model: &mut dyn Layer, max_norm: f64) -> f64 {
    let mut sq = 0.0;
    model.for_each_param(&mut |_, grads| {
        for g in grads.iter() {
            sq += g * g;
        }
    });
    let norm = sq.sqrt();
    if norm > max_norm && norm > 0.0 {
        let s = max_norm / norm;
        model.for_each_param(&mut |_, grads| {
            for g in grads.iter_mut() {
                *g *= s;
            }
        });
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A layer holding one scalar, loss = p^2/2 so grad = p.
    struct Scalar {
        p: Vec<f64>,
        g: Vec<f64>,
    }
    impl Scalar {
        fn new(p0: f64) -> Self {
            Self { p: vec![p0], g: vec![0.0] }
        }
        fn compute_grad(&mut self) {
            self.g[0] = self.p[0];
        }
    }
    impl Layer for Scalar {
        fn forward(&mut self, input: &treu_math::Matrix, _t: bool) -> treu_math::Matrix {
            input.clone()
        }
        fn backward(&mut self, g: &treu_math::Matrix) -> treu_math::Matrix {
            g.clone()
        }
        fn for_each_param(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
            f(&mut self.p, &mut self.g);
        }
        fn zero_grads(&mut self) {
            self.g[0] = 0.0;
        }
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut s = Scalar::new(10.0);
        let mut opt = Sgd::new(0.1, 0.0);
        for _ in 0..200 {
            s.compute_grad();
            opt.step(&mut s);
            s.zero_grads();
        }
        assert!(s.p[0].abs() < 1e-6, "p = {}", s.p[0]);
    }

    #[test]
    fn sgd_momentum_accelerates() {
        let run = |mu: f64| {
            let mut s = Scalar::new(10.0);
            let mut opt = Sgd::new(0.01, mu);
            for _ in 0..100 {
                s.compute_grad();
                opt.step(&mut s);
                s.zero_grads();
            }
            s.p[0].abs()
        };
        assert!(run(0.9) < run(0.0), "momentum should converge faster here");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut s = Scalar::new(5.0);
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            s.compute_grad();
            opt.step(&mut s);
            s.zero_grads();
        }
        assert!(s.p[0].abs() < 1e-3, "p = {}", s.p[0]);
    }

    #[test]
    fn adam_first_step_magnitude_is_lr() {
        // With bias correction, |first step| ≈ lr regardless of grad scale.
        for g0 in [0.001, 1.0, 1000.0] {
            let mut s = Scalar::new(0.0);
            s.g[0] = g0;
            let mut opt = Adam::new(0.1);
            opt.step(&mut s);
            assert!((s.p[0].abs() - 0.1).abs() < 1e-6, "g0={g0} step={}", s.p[0]);
        }
    }

    #[test]
    fn clip_grad_norm_scales_down_only() {
        let mut s = Scalar::new(0.0);
        s.g[0] = 10.0;
        let n = clip_grad_norm(&mut s, 1.0);
        assert_eq!(n, 10.0);
        assert!((s.g[0] - 1.0).abs() < 1e-12);
        // Under the cap: untouched.
        s.g[0] = 0.5;
        clip_grad_norm(&mut s, 1.0);
        assert_eq!(s.g[0], 0.5);
    }

    #[test]
    fn set_lr_changes_step() {
        let mut s = Scalar::new(1.0);
        let mut opt = Sgd::new(0.0, 0.0);
        opt.set_lr(1.0);
        assert_eq!(opt.lr(), 1.0);
        s.compute_grad();
        opt.step(&mut s);
        assert_eq!(s.p[0], 0.0);
    }
}
