//! Layer normalization.
//!
//! Normalizes each row to zero mean and unit variance, then applies a
//! learned per-channel affine transform — the stabilizer transformer
//! blocks are built around.

use crate::layer::Layer;
use treu_math::Matrix;

/// Layer normalization over the last (feature) axis with learned
/// gain/bias.
pub struct LayerNorm {
    dim: usize,
    eps: f64,
    gamma: Vec<f64>,
    beta: Vec<f64>,
    grad_gamma: Vec<f64>,
    grad_beta: Vec<f64>,
    // Forward cache.
    normalized: Matrix,
    inv_std: Vec<f64>,
}

impl LayerNorm {
    /// Creates a layer norm over `dim`-wide rows (γ = 1, β = 0).
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "LayerNorm: zero dimension");
        Self {
            dim,
            eps: 1e-5,
            gamma: vec![1.0; dim],
            beta: vec![0.0; dim],
            grad_gamma: vec![0.0; dim],
            grad_beta: vec![0.0; dim],
            normalized: Matrix::zeros(0, 0),
            inv_std: Vec::new(),
        }
    }
}

impl Layer for LayerNorm {
    fn forward(&mut self, input: &Matrix, _train: bool) -> Matrix {
        assert_eq!(input.cols(), self.dim, "LayerNorm: width mismatch");
        let n = self.dim as f64;
        let mut out = Matrix::zeros(input.rows(), self.dim);
        self.normalized = Matrix::zeros(input.rows(), self.dim);
        self.inv_std = Vec::with_capacity(input.rows());
        for r in 0..input.rows() {
            let row = input.row(r);
            let mean: f64 = row.iter().sum::<f64>() / n;
            let var: f64 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
            let inv = 1.0 / (var + self.eps).sqrt();
            self.inv_std.push(inv);
            for c in 0..self.dim {
                let z = (row[c] - mean) * inv;
                self.normalized[(r, c)] = z;
                out[(r, c)] = self.gamma[c] * z + self.beta[c];
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        assert_eq!(grad_out.rows(), self.normalized.rows(), "LayerNorm: backward before forward");
        let n = self.dim as f64;
        let mut grad_in = Matrix::zeros(grad_out.rows(), self.dim);
        for r in 0..grad_out.rows() {
            // Accumulate parameter grads.
            let mut dz = vec![0.0; self.dim];
            for c in 0..self.dim {
                let g = grad_out[(r, c)];
                self.grad_gamma[c] += g * self.normalized[(r, c)];
                self.grad_beta[c] += g;
                dz[c] = g * self.gamma[c];
            }
            // Standard layer-norm input gradient:
            // dx = inv_std * (dz - mean(dz) - z * mean(dz ⊙ z)).
            let mean_dz: f64 = dz.iter().sum::<f64>() / n;
            let mean_dz_z: f64 =
                dz.iter().enumerate().map(|(c, v)| v * self.normalized[(r, c)]).sum::<f64>() / n;
            for c in 0..self.dim {
                grad_in[(r, c)] =
                    self.inv_std[r] * (dz[c] - mean_dz - self.normalized[(r, c)] * mean_dz_z);
            }
        }
        grad_in
    }

    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
        f(&mut self.gamma, &mut self.grad_gamma);
        f(&mut self.beta, &mut self.grad_beta);
    }

    fn zero_grads(&mut self) {
        self.grad_gamma.fill(0.0);
        self.grad_beta.fill(0.0);
    }

    fn param_count(&self) -> usize {
        2 * self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::finite_diff_check;
    use treu_math::rng::SplitMix64;

    #[test]
    fn output_rows_are_standardized_at_identity_params() {
        let mut ln = LayerNorm::new(8);
        let mut rng = SplitMix64::new(1);
        let x = Matrix::from_fn(4, 8, |_, _| rng.next_gaussian() * 3.0 + 5.0);
        let y = ln.forward(&x, true);
        for r in 0..4 {
            let row = y.row(r);
            let mean: f64 = row.iter().sum::<f64>() / 8.0;
            let var: f64 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / 8.0;
            assert!(mean.abs() < 1e-9, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "row {r} var {var}");
        }
    }

    #[test]
    fn scale_invariance() {
        // LayerNorm output is invariant to scaling the input row.
        let mut ln = LayerNorm::new(6);
        let x = Matrix::from_rows(&[&[1.0, -2.0, 0.5, 3.0, -1.0, 0.0]]);
        let y1 = ln.forward(&x, true);
        let mut x2 = x.clone();
        x2.scale_in_place(7.0);
        let y2 = ln.forward(&x2, true);
        assert!(y1.max_abs_diff(&y2) < 1e-4);
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut ln = LayerNorm::new(5);
        // Nudge gamma/beta off identity so the test covers the affine path.
        ln.gamma.copy_from_slice(&[1.5, 0.5, 2.0, 1.0, 0.8]);
        ln.beta.copy_from_slice(&[0.1, -0.2, 0.0, 0.3, -0.1]);
        let mut rng = SplitMix64::new(2);
        let x = Matrix::from_fn(3, 5, |_, _| rng.next_gaussian());
        finite_diff_check(&mut ln, &x, 1e-3);
    }

    #[test]
    fn param_gradients_accumulate_and_zero() {
        let mut ln = LayerNorm::new(3);
        let x = Matrix::from_rows(&[&[1.0, 2.0, 4.0]]);
        let y = ln.forward(&x, true);
        ln.backward(&y);
        assert!(ln.grad_beta.iter().any(|&g| g != 0.0));
        ln.zero_grads();
        assert!(ln.grad_beta.iter().all(|&g| g == 0.0));
        assert_eq!(ln.param_count(), 6);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_width_panics() {
        LayerNorm::new(4).forward(&Matrix::zeros(1, 3), true);
    }
}
