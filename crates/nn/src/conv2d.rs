//! Two-dimensional convolution.
//!
//! Input rows are `(channels x h x w)` channel-major flattenings —
//! element `c*h*w + y*w + x` — matching how the histopathology and
//! detection crates rasterize patches. Valid padding, stride 1.

use crate::init;
use crate::layer::Layer;
use treu_math::rng::SplitMix64;
use treu_math::Matrix;

/// 2-D convolution with "valid" padding and stride 1.
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    h: usize,
    w: usize,
    /// Weights: `out_channels x (in_channels * kernel * kernel)`.
    weights: Matrix,
    bias: Vec<f64>,
    grad_w: Matrix,
    grad_b: Vec<f64>,
    input: Matrix,
}

impl Conv2d {
    /// Creates a convolution over `(in_channels, h, w)` inputs.
    ///
    /// # Panics
    ///
    /// Panics if the kernel exceeds either spatial extent or any dimension
    /// is zero.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        h: usize,
        w: usize,
        seed: u64,
    ) -> Self {
        assert!(in_channels > 0 && out_channels > 0 && kernel > 0, "Conv2d: zero dimension");
        assert!(kernel <= h && kernel <= w, "Conv2d: kernel larger than input");
        let mut rng = SplitMix64::new(treu_math::rng::derive_seed(seed, "conv2d.w"));
        let fan_in = in_channels * kernel * kernel;
        Self {
            in_channels,
            out_channels,
            kernel,
            h,
            w,
            weights: init::he_normal(&mut rng, out_channels, fan_in),
            bias: vec![0.0; out_channels],
            grad_w: Matrix::zeros(out_channels, fan_in),
            grad_b: vec![0.0; out_channels],
            input: Matrix::zeros(0, 0),
        }
    }

    /// Output height.
    pub fn out_h(&self) -> usize {
        self.h - self.kernel + 1
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        self.w - self.kernel + 1
    }

    /// Output row width (`out_channels * out_h * out_w`).
    pub fn out_len(&self) -> usize {
        self.out_channels * self.out_h() * self.out_w()
    }

    #[inline]
    fn in_idx(&self, c: usize, y: usize, x: usize) -> usize {
        c * self.h * self.w + y * self.w + x
    }

    #[inline]
    fn w_idx(&self, ic: usize, dy: usize, dx: usize) -> usize {
        ic * self.kernel * self.kernel + dy * self.kernel + dx
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Matrix, _train: bool) -> Matrix {
        assert_eq!(
            input.cols(),
            self.in_channels * self.h * self.w,
            "Conv2d: input width mismatch"
        );
        self.input = input.clone();
        let (oh, ow) = (self.out_h(), self.out_w());
        let mut out = Matrix::zeros(input.rows(), self.out_channels * oh * ow);
        for r in 0..input.rows() {
            let x = input.row(r);
            for oc in 0..self.out_channels {
                let filt = self.weights.row(oc);
                for y in 0..oh {
                    for xx in 0..ow {
                        let mut acc = self.bias[oc];
                        for ic in 0..self.in_channels {
                            for dy in 0..self.kernel {
                                for dx in 0..self.kernel {
                                    acc += x[self.in_idx(ic, y + dy, xx + dx)]
                                        * filt[self.w_idx(ic, dy, dx)];
                                }
                            }
                        }
                        out[(r, oc * oh * ow + y * ow + xx)] = acc;
                    }
                }
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let (oh, ow) = (self.out_h(), self.out_w());
        assert_eq!(grad_out.cols(), self.out_channels * oh * ow, "Conv2d: grad width mismatch");
        assert_eq!(grad_out.rows(), self.input.rows(), "Conv2d: grad batch mismatch");
        let mut grad_in = Matrix::zeros(self.input.rows(), self.in_channels * self.h * self.w);
        for r in 0..grad_out.rows() {
            let x = self.input.row(r);
            for oc in 0..self.out_channels {
                for y in 0..oh {
                    for xx in 0..ow {
                        let g = grad_out[(r, oc * oh * ow + y * ow + xx)];
                        if g == 0.0 {
                            continue;
                        }
                        self.grad_b[oc] += g;
                        for ic in 0..self.in_channels {
                            for dy in 0..self.kernel {
                                for dx in 0..self.kernel {
                                    let ii = self.in_idx(ic, y + dy, xx + dx);
                                    let wi = self.w_idx(ic, dy, dx);
                                    self.grad_w[(oc, wi)] += g * x[ii];
                                    grad_in[(r, ii)] += g * self.weights[(oc, wi)];
                                }
                            }
                        }
                    }
                }
            }
        }
        grad_in
    }

    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
        f(self.weights.as_mut_slice(), self.grad_w.as_mut_slice());
        f(&mut self.bias, &mut self.grad_b);
    }

    fn zero_grads(&mut self) {
        self.grad_w.as_mut_slice().fill(0.0);
        self.grad_b.fill(0.0);
    }

    fn param_count(&self) -> usize {
        self.weights.as_slice().len() + self.bias.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::finite_diff_check;

    #[test]
    fn identity_kernel_copies_input() {
        // 1x1 kernel with weight 1: output equals input.
        let mut c = Conv2d::new(1, 1, 1, 3, 3, 0);
        c.weights.as_mut_slice()[0] = 1.0;
        c.bias[0] = 0.0;
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]]);
        let y = c.forward(&x, true);
        assert_eq!(y.row(0), x.row(0));
    }

    #[test]
    fn known_3x3_box_filter() {
        let mut c = Conv2d::new(1, 1, 2, 3, 3, 0);
        c.weights.as_mut_slice().fill(1.0);
        c.bias[0] = 0.0;
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]]);
        let y = c.forward(&x, true);
        // 2x2 sums: [1+2+4+5, 2+3+5+6, 4+5+7+8, 5+6+8+9]
        assert_eq!(y.row(0), &[12.0, 16.0, 24.0, 28.0]);
        assert_eq!(c.out_len(), 4);
    }

    #[test]
    fn multichannel_shapes() {
        let mut c = Conv2d::new(3, 5, 3, 8, 10, 1);
        let x = Matrix::zeros(2, 3 * 8 * 10);
        let y = c.forward(&x, true);
        assert_eq!(y.shape(), (2, 5 * 6 * 8));
        assert_eq!(c.param_count(), 5 * 27 + 5);
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut c = Conv2d::new(2, 2, 2, 4, 4, 3);
        let mut rng = SplitMix64::new(4);
        let x = Matrix::from_fn(2, 2 * 16, |_, _| rng.next_gaussian());
        finite_diff_check(&mut c, &x, 1e-4);
    }

    #[test]
    fn weight_gradient_matches_finite_difference() {
        let mut c = Conv2d::new(1, 2, 2, 4, 4, 5);
        let mut rng = SplitMix64::new(6);
        let x = Matrix::from_fn(2, 16, |_, _| rng.next_gaussian());
        let out = c.forward(&x, true);
        c.zero_grads();
        c.backward(&out);
        let analytic = c.grad_w.clone();
        let eps = 1e-5;
        for i in 0..c.weights.as_slice().len() {
            let orig = c.weights.as_slice()[i];
            c.weights.as_mut_slice()[i] = orig + eps;
            let lp: f64 = c.forward(&x, true).as_slice().iter().map(|v| v * v * 0.5).sum();
            c.weights.as_mut_slice()[i] = orig - eps;
            let lm: f64 = c.forward(&x, true).as_slice().iter().map(|v| v * v * 0.5).sum();
            c.weights.as_mut_slice()[i] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - analytic.as_slice()[i]).abs() < 1e-4 * numeric.abs().max(1.0),
                "w[{i}]"
            );
        }
    }

    #[test]
    #[should_panic(expected = "kernel larger than input")]
    fn oversized_kernel_panics() {
        Conv2d::new(1, 1, 5, 4, 4, 0);
    }
}
