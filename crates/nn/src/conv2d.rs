//! Two-dimensional convolution.
//!
//! Input rows are `(channels x h x w)` channel-major flattenings —
//! element `c*h*w + y*w + x` — matching how the histopathology and
//! detection crates rasterize patches. Valid padding, stride 1.
//!
//! The forward pass is im2col-packed: each sample's receptive fields are
//! gathered once into a contiguous `(out_h*out_w) x fan_in` patch buffer,
//! then every output element is one ascending-`f` accumulator chain
//! (`f = ic*k² + dy*k + dx`) seeded with the bias — exactly the term order
//! of the naive six-loop form, so packing changes layout and speed, never
//! a result bit.

use crate::init;
use crate::layer::Layer;
use treu_math::rng::SplitMix64;
use treu_math::{parallel, vector, Matrix};

/// 2-D convolution with "valid" padding and stride 1.
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    h: usize,
    w: usize,
    /// Weights: `out_channels x (in_channels * kernel * kernel)`.
    weights: Matrix,
    bias: Vec<f64>,
    grad_w: Matrix,
    grad_b: Vec<f64>,
    input: Matrix,
}

impl Conv2d {
    /// Creates a convolution over `(in_channels, h, w)` inputs.
    ///
    /// # Panics
    ///
    /// Panics if the kernel exceeds either spatial extent or any dimension
    /// is zero.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        h: usize,
        w: usize,
        seed: u64,
    ) -> Self {
        assert!(in_channels > 0 && out_channels > 0 && kernel > 0, "Conv2d: zero dimension");
        assert!(kernel <= h && kernel <= w, "Conv2d: kernel larger than input");
        let mut rng = SplitMix64::new(treu_math::rng::derive_seed(seed, "conv2d.w"));
        let fan_in = in_channels * kernel * kernel;
        Self {
            in_channels,
            out_channels,
            kernel,
            h,
            w,
            weights: init::he_normal(&mut rng, out_channels, fan_in),
            bias: vec![0.0; out_channels],
            grad_w: Matrix::zeros(out_channels, fan_in),
            grad_b: vec![0.0; out_channels],
            input: Matrix::zeros(0, 0),
        }
    }

    /// Output height.
    pub fn out_h(&self) -> usize {
        self.h - self.kernel + 1
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        self.w - self.kernel + 1
    }

    /// Output row width (`out_channels * out_h * out_w`).
    pub fn out_len(&self) -> usize {
        self.out_channels * self.out_h() * self.out_w()
    }

    /// Patch width (`in_channels * kernel * kernel`).
    fn fan_in(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }

    #[inline]
    fn in_idx(&self, c: usize, y: usize, x: usize) -> usize {
        c * self.h * self.w + y * self.w + x
    }

    /// The sample-independent im2col gather map: entry `pix*fan_in + f` is
    /// the input-row index feeding patch element `f` of output pixel `pix`.
    fn im2col_map(&self) -> Vec<usize> {
        let (oh, ow) = (self.out_h(), self.out_w());
        let mut map = Vec::with_capacity(oh * ow * self.fan_in());
        for y in 0..oh {
            for xx in 0..ow {
                for ic in 0..self.in_channels {
                    for dy in 0..self.kernel {
                        for dx in 0..self.kernel {
                            map.push(self.in_idx(ic, y + dy, xx + dx));
                        }
                    }
                }
            }
        }
        map
    }

    /// Gathers one sample row into the patch buffer (`(oh*ow) x fan_in`).
    fn gather_patches(x: &[f64], map: &[usize], patches: &mut [f64]) {
        for (dst, &src) in patches.iter_mut().zip(map) {
            *dst = x[src];
        }
    }

    /// Convolves one sample's packed patches into one output row.
    ///
    /// Per output element the accumulator starts at the bias and grows by
    /// one ascending-`f` chain — the naive loop's exact order. Four output
    /// pixels advance in lockstep for ILP; their chains stay independent.
    fn forward_row(&self, patches: &[f64], orow: &mut [f64]) {
        let fan = self.fan_in();
        let pix_count = self.out_h() * self.out_w();
        for oc in 0..self.out_channels {
            let filt = self.weights.row(oc);
            let b = self.bias[oc];
            let oseg = &mut orow[oc * pix_count..(oc + 1) * pix_count];
            let mut pix = 0;
            while pix + 4 <= pix_count {
                let p0 = &patches[pix * fan..(pix + 1) * fan];
                let p1 = &patches[(pix + 1) * fan..(pix + 2) * fan];
                let p2 = &patches[(pix + 2) * fan..(pix + 3) * fan];
                let p3 = &patches[(pix + 3) * fan..(pix + 4) * fan];
                let (mut a0, mut a1, mut a2, mut a3) = (b, b, b, b);
                for f in 0..fan {
                    let wv = filt[f];
                    a0 += p0[f] * wv;
                    a1 += p1[f] * wv;
                    a2 += p2[f] * wv;
                    a3 += p3[f] * wv;
                }
                oseg[pix] = a0;
                oseg[pix + 1] = a1;
                oseg[pix + 2] = a2;
                oseg[pix + 3] = a3;
                pix += 4;
            }
            while pix < pix_count {
                let p = &patches[pix * fan..(pix + 1) * fan];
                let mut acc = b;
                for f in 0..fan {
                    acc += p[f] * filt[f];
                }
                oseg[pix] = acc;
                pix += 1;
            }
        }
    }

    /// Forward pass without caching the input — the reentrant (`&self`)
    /// variant benches and inference paths use. `threads > 1` splits the
    /// batch over sample rows; each worker owns a disjoint output band, and
    /// the result is bitwise-identical at every thread count.
    ///
    /// # Panics
    ///
    /// Panics if the input width disagrees with the layer geometry.
    pub fn forward_ref(&self, input: &Matrix, threads: usize) -> Matrix {
        assert_eq!(
            input.cols(),
            self.in_channels * self.h * self.w,
            "Conv2d: input width mismatch"
        );
        let out_len = self.out_len();
        let mut out = Matrix::zeros(input.rows(), out_len);
        if out.as_slice().is_empty() {
            return out;
        }
        let map = self.im2col_map();
        let patch_len = self.out_h() * self.out_w() * self.fan_in();
        parallel::for_each_band(out.as_mut_slice(), out_len, threads.max(1), |row0, band| {
            let mut patches = vec![0.0; patch_len];
            for (i, orow) in band.chunks_mut(out_len).enumerate() {
                Self::gather_patches(input.row(row0 + i), &map, &mut patches);
                self.forward_row(&patches, orow);
            }
        });
        out
    }

    /// The naive six-loop forward — the reference kernel the packed
    /// im2col path must reproduce bit-for-bit (bias-seeded ascending-f
    /// accumulation chain per output pixel). Kept public so benches can
    /// price the packed path against the untransformed loop nest.
    ///
    /// # Panics
    ///
    /// Panics if the input width disagrees with the layer geometry.
    pub fn forward_naive(&self, input: &Matrix) -> Matrix {
        assert_eq!(
            input.cols(),
            self.in_channels * self.h * self.w,
            "Conv2d: input width mismatch"
        );
        let (oh, ow) = (self.out_h(), self.out_w());
        let mut out = Matrix::zeros(input.rows(), self.out_channels * oh * ow);
        for r in 0..input.rows() {
            let x = input.row(r);
            for oc in 0..self.out_channels {
                let filt = self.weights.row(oc);
                for y in 0..oh {
                    for xx in 0..ow {
                        let mut acc = self.bias[oc];
                        for ic in 0..self.in_channels {
                            for dy in 0..self.kernel {
                                for dx in 0..self.kernel {
                                    acc += x[self.in_idx(ic, y + dy, xx + dx)]
                                        * filt[ic * self.kernel * self.kernel
                                            + dy * self.kernel
                                            + dx];
                                }
                            }
                        }
                        out[(r, oc * oh * ow + y * ow + xx)] = acc;
                    }
                }
            }
        }
        out
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Matrix, _train: bool) -> Matrix {
        self.input = input.clone();
        self.forward_ref(input, 1)
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let (oh, ow) = (self.out_h(), self.out_w());
        assert_eq!(grad_out.cols(), self.out_channels * oh * ow, "Conv2d: grad width mismatch");
        assert_eq!(grad_out.rows(), self.input.rows(), "Conv2d: grad batch mismatch");
        let fan = self.fan_in();
        let pix_count = oh * ow;
        let map = self.im2col_map();
        let mut patches = vec![0.0; pix_count * fan];
        let mut grad_in = Matrix::zeros(self.input.rows(), self.in_channels * self.h * self.w);
        for r in 0..grad_out.rows() {
            Self::gather_patches(self.input.row(r), &map, &mut patches);
            let girow = grad_in.row_mut(r);
            for oc in 0..self.out_channels {
                let gseg = &grad_out.row(r)[oc * pix_count..(oc + 1) * pix_count];
                let wrow = self.weights.row(oc);
                let gwrow = self.grad_w.row_mut(oc);
                for pix in 0..pix_count {
                    let g = gseg[pix];
                    if g == 0.0 {
                        continue;
                    }
                    self.grad_b[oc] += g;
                    // dW row: one axpy over the packed patch — same
                    // ascending-f term order as the naive gather loop.
                    vector::axpy(g, &patches[pix * fan..(pix + 1) * fan], gwrow);
                    // dX: scatter back through the im2col map.
                    let pmap = &map[pix * fan..(pix + 1) * fan];
                    for f in 0..fan {
                        girow[pmap[f]] += g * wrow[f];
                    }
                }
            }
        }
        grad_in
    }

    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
        f(self.weights.as_mut_slice(), self.grad_w.as_mut_slice());
        f(&mut self.bias, &mut self.grad_b);
    }

    fn zero_grads(&mut self) {
        self.grad_w.as_mut_slice().fill(0.0);
        self.grad_b.fill(0.0);
    }

    fn param_count(&self) -> usize {
        self.weights.as_slice().len() + self.bias.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::finite_diff_check;

    #[test]
    fn identity_kernel_copies_input() {
        // 1x1 kernel with weight 1: output equals input.
        let mut c = Conv2d::new(1, 1, 1, 3, 3, 0);
        c.weights.as_mut_slice()[0] = 1.0;
        c.bias[0] = 0.0;
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]]);
        let y = c.forward(&x, true);
        assert_eq!(y.row(0), x.row(0));
    }

    #[test]
    fn known_3x3_box_filter() {
        let mut c = Conv2d::new(1, 1, 2, 3, 3, 0);
        c.weights.as_mut_slice().fill(1.0);
        c.bias[0] = 0.0;
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]]);
        let y = c.forward(&x, true);
        // 2x2 sums: [1+2+4+5, 2+3+5+6, 4+5+7+8, 5+6+8+9]
        assert_eq!(y.row(0), &[12.0, 16.0, 24.0, 28.0]);
        assert_eq!(c.out_len(), 4);
    }

    #[test]
    fn multichannel_shapes() {
        let mut c = Conv2d::new(3, 5, 3, 8, 10, 1);
        let x = Matrix::zeros(2, 3 * 8 * 10);
        let y = c.forward(&x, true);
        assert_eq!(y.shape(), (2, 5 * 6 * 8));
        assert_eq!(c.param_count(), 5 * 27 + 5);
    }

    #[test]
    fn packed_forward_matches_naive_loop_bitwise() {
        let mut rng = SplitMix64::new(42);
        let mut c = Conv2d::new(3, 4, 3, 7, 9, 11);
        for b in c.bias.iter_mut() {
            *b = rng.next_gaussian();
        }
        let x = Matrix::from_fn(3, 3 * 7 * 9, |_, _| rng.next_gaussian());
        let want = c.forward_naive(&x);
        for threads in [1, 2, 4] {
            let got = c.forward_ref(&x, threads);
            assert_eq!(got.shape(), want.shape());
            for (i, (a, b)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads} elem {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut c = Conv2d::new(2, 2, 2, 4, 4, 3);
        let mut rng = SplitMix64::new(4);
        let x = Matrix::from_fn(2, 2 * 16, |_, _| rng.next_gaussian());
        finite_diff_check(&mut c, &x, 1e-4);
    }

    #[test]
    fn weight_gradient_matches_finite_difference() {
        let mut c = Conv2d::new(1, 2, 2, 4, 4, 5);
        let mut rng = SplitMix64::new(6);
        let x = Matrix::from_fn(2, 16, |_, _| rng.next_gaussian());
        let out = c.forward(&x, true);
        c.zero_grads();
        c.backward(&out);
        let analytic = c.grad_w.clone();
        let eps = 1e-5;
        for i in 0..c.weights.as_slice().len() {
            let orig = c.weights.as_slice()[i];
            c.weights.as_mut_slice()[i] = orig + eps;
            let lp: f64 = c.forward(&x, true).as_slice().iter().map(|v| v * v * 0.5).sum();
            c.weights.as_mut_slice()[i] = orig - eps;
            let lm: f64 = c.forward(&x, true).as_slice().iter().map(|v| v * v * 0.5).sum();
            c.weights.as_mut_slice()[i] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - analytic.as_slice()[i]).abs() < 1e-4 * numeric.abs().max(1.0),
                "w[{i}]"
            );
        }
    }

    #[test]
    #[should_panic(expected = "kernel larger than input")]
    fn oversized_kernel_panics() {
        Conv2d::new(1, 1, 5, 4, 4, 0);
    }
}
