//! Property tests: every layer's analytic input gradient matches central
//! finite differences on randomized shapes and inputs — the single
//! invariant the whole training substrate rests on.

use proptest::prelude::*;
use treu_math::rng::SplitMix64;
use treu_math::Matrix;
use treu_nn::layer::finite_diff_check;
use treu_nn::prelude::*;

fn batch(seed: u64, rows: usize, cols: usize) -> Matrix {
    let mut rng = SplitMix64::new(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.next_gaussian() * 0.8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dense_gradients(seed in any::<u64>(), rows in 1usize..5, fan_in in 1usize..6, fan_out in 1usize..6) {
        let mut layer = Dense::new(fan_in, fan_out, seed);
        finite_diff_check(&mut layer, &batch(seed ^ 1, rows, fan_in), 1e-4);
    }

    #[test]
    fn conv1d_gradients(seed in any::<u64>(), rows in 1usize..3, ch in 1usize..3, len in 4usize..8, kernel in 1usize..4) {
        prop_assume!(kernel <= len);
        let mut layer = Conv1d::new(ch, 2, kernel, len, seed);
        finite_diff_check(&mut layer, &batch(seed ^ 2, rows, ch * len), 1e-4);
    }

    #[test]
    fn conv2d_gradients(seed in any::<u64>(), ch in 1usize..3, side in 3usize..6, kernel in 1usize..3) {
        prop_assume!(kernel <= side);
        let mut layer = Conv2d::new(ch, 2, kernel, side, side, seed);
        finite_diff_check(&mut layer, &batch(seed ^ 9, 2, ch * side * side), 1e-4);
    }

    #[test]
    fn layernorm_gradients(seed in any::<u64>(), rows in 1usize..4, dim in 2usize..8) {
        let mut layer = LayerNorm::new(dim);
        finite_diff_check(&mut layer, &batch(seed ^ 10, rows, dim), 5e-3);
    }

    #[test]
    fn pool_gradients(seed in any::<u64>(), rows in 1usize..3, ch in 1usize..4, len in 2usize..6) {
        let mut layer = GlobalMaxPool1d::new(ch, len);
        finite_diff_check(&mut layer, &batch(seed ^ 3, rows, ch * len), 1e-4);
    }

    #[test]
    fn attention_gradients(seed in any::<u64>(), tokens in 2usize..5, dim in 2usize..5) {
        let mut layer = SelfAttention::new(dim, seed);
        finite_diff_check(&mut layer, &batch(seed ^ 4, tokens, dim), 5e-3);
    }

    #[test]
    fn activation_gradients(seed in any::<u64>(), rows in 1usize..4, cols in 1usize..6) {
        finite_diff_check(&mut Tanh::new(), &batch(seed ^ 5, rows, cols), 1e-4);
        finite_diff_check(&mut Sigmoid::new(), &batch(seed ^ 6, rows, cols), 1e-4);
        // ReLU: keep inputs away from the kink.
        let mut x = batch(seed ^ 7, rows, cols);
        for v in x.as_mut_slice() {
            if v.abs() < 0.1 {
                *v += 0.5;
            }
        }
        finite_diff_check(&mut Relu::new(), &x, 1e-4);
    }

    #[test]
    fn sequential_composition_gradients(seed in any::<u64>(), rows in 1usize..3) {
        let mut model = Sequential::new(vec![
            Box::new(Dense::new(4, 6, seed)),
            Box::new(Tanh::new()),
            Box::new(Dense::new(6, 3, seed ^ 1)),
            Box::new(Sigmoid::new()),
        ]);
        finite_diff_check(&mut model, &batch(seed ^ 8, rows, 4), 1e-3);
    }

    #[test]
    fn cross_entropy_gradient_property(seed in any::<u64>(), rows in 1usize..4, classes in 2usize..5) {
        let logits = batch(seed, rows, classes);
        let labels: Vec<usize> = (0..rows).map(|r| r % classes).collect();
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        // Each row's gradient sums to zero (softmax simplex constraint).
        for r in 0..rows {
            let s: f64 = grad.row(r).iter().sum();
            prop_assert!(s.abs() < 1e-10, "row {} grad sum {}", r, s);
        }
    }
}
