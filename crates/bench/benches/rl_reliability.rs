//! Bench E2.8 — RL reliability: prints the env × estimator reliability
//! grid (mean, CVaR, acceptability) and the per-environment reward sums
//! (the paper's "slightly better sum of average rewards in Frogger"),
//! then times a DQN training run per estimator family.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use treu_rl::dqn::{DqnAgent, DqnConfig};
use treu_rl::env::EnvKind;
use treu_rl::estimators::EstimatorKind;
use treu_rl::experiment::seed_rewards;
use treu_rl::reliability::reliability;

fn print_reproduction() {
    let cfg = DqnConfig { episodes: 250, ..DqnConfig::default() };
    println!("E2.8: reliability over 4 seeds, 250 episodes");
    println!(
        "  {:<9} {:<10} {:>8} {:>8} {:>8} {:>8}",
        "env", "estimator", "mean", "std", "cvar25", "p(acc)"
    );
    for env in EnvKind::all() {
        let mut sum = 0.0;
        for est in EstimatorKind::all() {
            let rewards = seed_rewards(env, est, cfg, 4, 4, 2023);
            let r = reliability(&rewards, 2.0);
            sum += r.mean;
            println!(
                "  {:<9} {:<10} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
                env.name(),
                est.name(),
                r.mean,
                r.std_dev,
                r.cvar25,
                r.p_acceptable
            );
        }
        println!("  {:<9} reward sum over estimators: {sum:.2}", env.name());
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_reproduction();
    let mut g = c.benchmark_group("rl_reliability/train_60_episodes");
    for est in EstimatorKind::all() {
        g.bench_with_input(BenchmarkId::from_parameter(est.name()), &est, |b, &e| {
            b.iter(|| {
                let cfg = DqnConfig { episodes: 60, ..DqnConfig::default() };
                let mut env = EnvKind::Catch.build();
                let mut agent = DqnAgent::new(e, cfg, 5);
                black_box(agent.train(env.as_mut()))
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .without_plots();
    targets = bench
}
criterion_main!(benches);
