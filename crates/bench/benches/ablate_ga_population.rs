//! Ablation bench — GA population size vs schedule quality and tuning
//! cost (DESIGN.md's `ablate_ga_population`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use treu_autotune::experiment::tune_kernel;
use treu_autotune::{GaParams, Kernel};

fn print_reproduction() {
    println!("ablation: matmul tuned cost by GA population (15 generations)");
    let kernel = Kernel::MatMul { m: 96, k: 96, n: 96 };
    for pop in [4usize, 8, 16, 32, 64] {
        let ga = GaParams { population: pop, generations: 15, ..GaParams::default() };
        let r = tune_kernel(kernel, ga, 3);
        println!("  pop {:>3}: cost {:>12.0}  speedup {:>5.2}x", pop, r.tuned_cost, r.speedup());
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_reproduction();
    let kernel = Kernel::MatMul { m: 96, k: 96, n: 96 };
    let mut g = c.benchmark_group("ablate_ga_population/tune");
    for pop in [8usize, 32] {
        g.bench_with_input(BenchmarkId::from_parameter(pop), &pop, |b, &p| {
            let ga = GaParams { population: p, generations: 10, ..GaParams::default() };
            b.iter(|| black_box(tune_kernel(kernel, ga, 3)))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .without_plots();
    targets = bench
}
criterion_main!(benches);
