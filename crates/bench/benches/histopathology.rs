//! Bench E2.7 — multi-task histopathology: prints the four §2.7 studies'
//! headline numbers, then times multi-task training epochs and the device
//! throughput model.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use treu_core::experiment::{run_once, Params};
use treu_histo::device::{flops_per_sample, Device};
use treu_histo::experiment::HistoExperiment;
use treu_histo::model::{ModelConfig, MultiTaskModel};
use treu_histo::PatchDataset;
use treu_math::rng::SplitMix64;
use treu_nn::layer::Layer;

fn print_reproduction() {
    let rec = run_once(&HistoExperiment, 2023, Params::new());
    println!("E2.7:");
    println!(
        "  multi-task: seg IoU {:.3}, count MAE {:.3} (single-task MAE {:.3})",
        rec.metric("multitask_seg_iou").unwrap(),
        rec.metric("multitask_count_mae").unwrap(),
        rec.metric("singletask_count_mae").unwrap()
    );
    println!(
        "  (a) device: CPU epoch {:.2}ms vs GPU {:.2}ms (x{:.0})",
        rec.metric("cpu_epoch_seconds").unwrap() * 1e3,
        rec.metric("gpu_epoch_seconds").unwrap() * 1e3,
        rec.metric("gpu_speedup").unwrap()
    );
    println!(
        "  (b) HP search best: hidden {} lr {}",
        rec.metric("hp_best_hidden").unwrap(),
        rec.metric("hp_best_lr").unwrap()
    );
    println!(
        "  (c) augmentation: small-set IoU {:.3} -> {:.3}",
        rec.metric("small_plain_seg_iou").unwrap(),
        rec.metric("small_augmented_seg_iou").unwrap()
    );
    println!(
        "  (d) fine-tune vs scratch (quarter budget): {:.3} vs {:.3}\n",
        rec.metric("finetune_seg_iou").unwrap(),
        rec.metric("scratch_seg_iou").unwrap()
    );
}

fn bench(c: &mut Criterion) {
    print_reproduction();
    let mut rng = SplitMix64::new(1);
    let data = PatchDataset::generate(120, &mut rng);
    c.bench_function("histopathology/train_10_epochs", |b| {
        b.iter(|| {
            let cfg = ModelConfig { epochs: 10, ..ModelConfig::default() };
            let mut m = MultiTaskModel::new(cfg, 3);
            m.train(&data, true, true, 4);
            black_box(m.evaluate(&data))
        })
    });
    c.bench_function("histopathology/device_model", |b| {
        let m = MultiTaskModel::new(ModelConfig::default(), 0);
        let fps = flops_per_sample(Layer::param_count(&m));
        b.iter(|| {
            black_box(Device::gpu().speedup_over(&Device::cpu(), black_box(fps), 10_000, 128))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .without_plots();
    targets = bench
}
criterion_main!(benches);
