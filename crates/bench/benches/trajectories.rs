//! Bench E2.4 — trajectory classification: prints the shape-only vs
//! shape+semantics controlled comparison, then times featurization and
//! classification.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use treu_math::rng::SplitMix64;
use treu_traj::experiment::compare;
use treu_traj::features::{combined_features, default_landmarks, landmark_features};
use treu_traj::generate::{generate_trajectory, TrajectoryClass};
use treu_traj::PoiMap;

fn print_reproduction() {
    println!("E2.4: accuracy, shape-only vs +semantics (3 trials)");
    let (mut s, mut m) = (0.0, 0.0);
    for seed in 0..3 {
        let r = compare(12, 6, 150, seed);
        s += r.shape_accuracy / 3.0;
        m += r.semantic_accuracy / 3.0;
    }
    println!("  shape-only {s:.3}  with semantics {m:.3}  improvement {:+.3}\n", m - s);
}

fn bench(c: &mut Criterion) {
    print_reproduction();
    let map = PoiMap::standard();
    let lms = default_landmarks();
    let mut rng = SplitMix64::new(1);
    let t = generate_trajectory(TrajectoryClass::Commuter, &map, 150, &mut rng);

    c.bench_function("trajectories/shape_features", |b| {
        b.iter(|| black_box(landmark_features(black_box(&t), &lms)))
    });
    c.bench_function("trajectories/combined_features", |b| {
        b.iter(|| black_box(combined_features(black_box(&t), &lms, &map, 3.0)))
    });
    c.bench_function("trajectories/end_to_end_compare", |b| {
        b.iter(|| black_box(compare(8, 4, 100, 5)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .without_plots();
    targets = bench
}
criterion_main!(benches);
