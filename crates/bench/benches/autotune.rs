//! Bench E2.5 — compiler scheduling: prints the GA-tuning + replication
//! table (the §2.5 finding: matvec replicates, the matmul family gaps),
//! then times real scheduled executions so the cost model's ranking can be
//! compared against the machine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use treu_autotune::executor::{execute, Backend};
use treu_autotune::experiment::tune_kernel;
use treu_autotune::{GaParams, Kernel, Schedule};
use treu_math::rng::SplitMix64;

fn print_reproduction() {
    println!("E2.5: GA tuning + replication (cost model)");
    for kernel in Kernel::suite() {
        let r = tune_kernel(kernel, GaParams::default(), 7);
        println!(
            "  {:<10} speedup {:>6.2}x  replication {:>5.2}x  {}",
            r.kernel,
            r.speedup(),
            r.replication_ratio(),
            r.best.render()
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_reproduction();
    for kernel in Kernel::suite() {
        let tuned = tune_kernel(kernel, GaParams::default(), 7).best;
        let mut g = c.benchmark_group(format!("autotune/{}", kernel.name()));
        for (label, sched) in
            [("naive", Schedule::naive()), ("reference", Schedule::reference()), ("tuned", tuned)]
        {
            g.bench_with_input(BenchmarkId::new("axpy", label), &sched, |b, &s| {
                let mut rng = SplitMix64::new(1);
                let mut w = kernel.workload(&mut rng);
                b.iter(|| black_box(execute(&kernel, s, Backend::AxpyLowering, &mut w)))
            });
            g.bench_with_input(BenchmarkId::new("dot", label), &sched, |b, &s| {
                let mut rng = SplitMix64::new(1);
                let mut w = kernel.workload(&mut rng);
                b.iter(|| black_box(execute(&kernel, s, Backend::DotLowering, &mut w)))
            });
        }
        g.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .without_plots();
    targets = bench
}
criterion_main!(benches);
