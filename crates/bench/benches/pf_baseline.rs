//! Bench E2.2b — schedule-aware filter vs the typical particle filter,
//! on-tempo and under drift. Prints the accuracy comparison, then times
//! both filters at several particle counts (the "time experiments" of
//! §2.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use treu_pf::experiment::{run_baseline, run_tracking, Workload};
use treu_pf::WeightFn;

fn print_reproduction() {
    println!("E2.2b: RMSE, ours vs typical filter (8 trials)");
    for (label, rate0) in [("on-tempo", 1.0), ("drift+15%", 1.15)] {
        let w = Workload { rate0, ..Workload::default() };
        let (mut ours, mut base) = (0.0, 0.0);
        for seed in 0..8 {
            ours += run_tracking(w, WeightFn::Gaussian, 256, seed).rmse / 8.0;
            base += run_baseline(w, 256, seed).rmse / 8.0;
        }
        println!("  {label:<10} ours {ours:.3}  typical {base:.3}");
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_reproduction();
    let mut g = c.benchmark_group("pf_baseline/particles");
    for particles in [64usize, 256, 1024] {
        g.bench_with_input(BenchmarkId::new("ours", particles), &particles, |b, &n| {
            b.iter(|| black_box(run_tracking(Workload::default(), WeightFn::Gaussian, n, 3)))
        });
        g.bench_with_input(BenchmarkId::new("typical", particles), &particles, |b, &n| {
            b.iter(|| black_box(run_baseline(Workload::default(), n, 3)))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .without_plots();
    targets = bench
}
criterion_main!(benches);
