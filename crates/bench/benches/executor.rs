//! Bench: the deterministic parallel executor. Sequential and parallel
//! registry batches must produce identical fingerprints — checked before
//! any timing — and the parallel runs should demonstrate a speedup on
//! multi-core hosts, reported per job count so the scaling curve is
//! visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use treu_bench::workload;
use treu_core::exec::Executor;
use treu_core::experiment::{Experiment, Params, RunContext};
use treu_core::sweep::Axis;
use treu_core::ExperimentRegistry;
use treu_math::parallel::{default_threads, par_map, par_map_dynamic};
use treu_robust::contamination::{ContaminatedSample, Contamination};
use treu_robust::estimators;

/// A compute-bound stand-in: robust mean estimation on one contaminated
/// sample. Each run costs milliseconds, so worker fan-out has real work
/// to amortize its overhead against.
struct RobustTrial;

impl Experiment for RobustTrial {
    fn name(&self) -> &str {
        "bench/robust-trial"
    }

    fn run(&self, ctx: &mut RunContext) {
        let n = ctx.int("n", 300) as usize;
        let d = ctx.int("d", 24) as usize;
        let mut rng = ctx.rng("sample");
        let s = ContaminatedSample::generate(n, d, 0.1, Contamination::SubtleShift, &mut rng);
        let gm = estimators::geometric_median(&s.data, 1e-8, 120);
        ctx.record("geomedian_err", s.error(&gm));
        ctx.record("mean_err", s.error(&estimators::sample_mean(&s.data)));
    }
}

fn registry() -> ExperimentRegistry {
    let mut reg = ExperimentRegistry::new();
    for i in 0..8i64 {
        reg.register(
            &format!("X{i}"),
            "bench",
            "robust trial",
            Params::new().with_int("n", 260 + 20 * i).with_int("d", 16 + 2 * i),
            Box::new(RobustTrial),
        );
    }
    reg
}

fn bench(c: &mut Criterion) {
    let reg = registry();
    let hw = default_threads();

    // The guarantee before the speed: job count must not change results.
    let seq = Executor::sequential().run_all(&reg, 7);
    let par = Executor::new(hw).run_all(&reg, 7);
    assert!(
        seq.iter().zip(&par).all(|(a, b)| a.0 == b.0 && a.1.trail == b.1.trail),
        "parallel registry batch diverged from sequential"
    );
    println!("executor: {} registry ids, fingerprints identical at 1 and {hw} job(s)\n", seq.len());

    let mut g = c.benchmark_group("executor/run_all");
    for jobs in [1, 2, hw] {
        g.bench_with_input(BenchmarkId::from_parameter(jobs), &jobs, |b, &j| {
            let exec = Executor::new(j);
            b.iter(|| black_box(exec.run_all(&reg, 7)))
        });
    }
    g.finish();

    let axes = [Axis::ints("n", &[240, 280, 320, 360]), Axis::ints("d", &[16, 24, 32])];
    let mut g = c.benchmark_group("executor/sweep_12pt");
    for jobs in [1, hw] {
        g.bench_with_input(BenchmarkId::from_parameter(jobs), &jobs, |b, &j| {
            let exec = Executor::new(j);
            b.iter(|| black_box(exec.sweep(&RobustTrial, &Params::new(), &axes, 3)))
        });
    }
    g.finish();

    // Static bands vs the self-scheduling queue on the skewed (Zipf-ish)
    // sleep-cost workload. Sleeps make the scheduling difference visible
    // on any core count; outputs must match bitwise either way.
    let (n_tasks, scale_us, jobs) = (64, 1500, hw.max(4));
    let s = par_map(n_tasks, jobs, |i| workload::run_task(i, scale_us));
    let d = par_map_dynamic(n_tasks, jobs, |i| workload::run_task(i, scale_us));
    assert_eq!(s, d, "static and dynamic schedules diverged on the skewed workload");
    let mut g = c.benchmark_group("executor/skewed_sched");
    g.bench_function("static", |b| {
        b.iter(|| black_box(par_map(n_tasks, jobs, |i| workload::run_task(i, scale_us))))
    });
    g.bench_function("dynamic", |b| {
        b.iter(|| black_box(par_map_dynamic(n_tasks, jobs, |i| workload::run_task(i, scale_us))))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .without_plots();
    targets = bench
}
criterion_main!(benches);
