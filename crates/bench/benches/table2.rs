//! Bench T2 — regenerates the paper's Table 2 (confidence in 18 research
//! skills + boost) and times the analysis.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use treu_surveys::{analysis, paper, Cohort};

fn print_reproduction() {
    let cohort = Cohort::simulate(2023);
    let rows = analysis::table2(&cohort);
    println!("{}", analysis::render_table2(&rows));
    let worst = rows
        .iter()
        .zip(paper::SKILLS.iter())
        .map(|(r, (_, m, _))| (r.apriori_mean - m).abs())
        .fold(0.0f64, f64::max);
    println!("worst a-priori-mean deviation from paper: {worst:.4}\n");
}

fn bench(c: &mut Criterion) {
    print_reproduction();
    let cohort = Cohort::simulate(2023);
    c.bench_function("table2/analyze", |b| {
        b.iter(|| black_box(analysis::table2(black_box(&cohort))))
    });
    c.bench_function("table2/render", |b| {
        let rows = analysis::table2(&cohort);
        b.iter(|| black_box(analysis::render_table2(black_box(&rows))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .without_plots();
    targets = bench
}
criterion_main!(benches);
