//! Ablation bench — weighting-kernel family and bandwidth sweep (the
//! design-choice ablation DESIGN.md calls out for §2.2): how accuracy
//! responds to the kernel shape and to the bandwidth σ.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use treu_math::rng::SplitMix64;
use treu_pf::filter::{FilterConfig, ScheduleFilter};
use treu_pf::schedule::{DriftModel, EventSchedule, Performance, SensorModel};
use treu_pf::WeightFn;

fn rmse_for(kernel: WeightFn, sigma: f64, seed: u64) -> f64 {
    let schedule = EventSchedule::uniform(25, 8.0);
    let mut rng = SplitMix64::new(seed);
    let perf = Performance::simulate(
        &schedule,
        DriftModel { rate0: 1.12, ..DriftModel::default() },
        SensorModel::default(),
        0.1,
        &mut rng,
    );
    let cfg = FilterConfig { kernel, sigma, ..FilterConfig::default() };
    let mut f = ScheduleFilter::new(schedule, cfg, seed ^ 0xF0);
    let mut se = 0.0;
    for (&truth, &obs) in perf.truth.iter().zip(&perf.observations) {
        f.step(perf.dt, obs);
        se += (f.estimate() - truth).powi(2);
    }
    (se / perf.len() as f64).sqrt()
}

fn print_reproduction() {
    println!("ablation: RMSE by kernel x bandwidth (5 trials)");
    print!("{:<12}", "kernel");
    for sigma in [0.5, 1.0, 1.5, 3.0, 6.0] {
        print!(" s={sigma:<6}");
    }
    println!();
    for kernel in WeightFn::all() {
        print!("{:<12}", kernel.name());
        for sigma in [0.5, 1.0, 1.5, 3.0, 6.0] {
            let rmse: f64 = (0..5).map(|s| rmse_for(kernel, sigma, s)).sum::<f64>() / 5.0;
            print!(" {rmse:<8.3}");
        }
        println!();
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_reproduction();
    let mut g = c.benchmark_group("ablate_weighting/track");
    for kernel in WeightFn::all() {
        g.bench_with_input(BenchmarkId::from_parameter(kernel.name()), &kernel, |b, &k| {
            b.iter(|| black_box(rmse_for(k, 1.5, 3)))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .without_plots();
    targets = bench
}
criterion_main!(benches);
