//! Ablation bench — the spectral filter's stopping-threshold multiplier
//! (DESIGN.md's `ablate_filter_threshold`): error and rounds as the
//! threshold sweeps from aggressive to permissive.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use treu_math::rng::SplitMix64;
use treu_robust::contamination::{ContaminatedSample, Contamination};
use treu_robust::{spectral_filter, FilterParams};

fn sample(seed: u64) -> ContaminatedSample {
    let mut rng = SplitMix64::new(seed);
    ContaminatedSample::generate(800, 64, 0.1, Contamination::SubtleShift, &mut rng)
}

fn print_reproduction() {
    println!("ablation: filter error/rounds by threshold multiplier (3 trials)");
    for mult in [1.0, 3.0, 6.0, 12.0, 24.0] {
        let (mut err, mut rounds) = (0.0, 0.0);
        for t in 0..3 {
            let s = sample(50 + t);
            let out = spectral_filter(
                &s.data,
                FilterParams {
                    epsilon: 0.1,
                    threshold_multiplier: mult,
                    ..FilterParams::default()
                },
            );
            err += s.error(&out.mean) / 3.0;
            rounds += out.rounds as f64 / 3.0;
        }
        println!("  mult {mult:>5.1}: error {err:.3}  rounds {rounds:.1}");
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_reproduction();
    let s = sample(9);
    let mut g = c.benchmark_group("ablate_filter_threshold/filter");
    for mult in [1.0f64, 6.0, 24.0] {
        g.bench_with_input(BenchmarkId::from_parameter(mult), &mult, |b, &m| {
            b.iter(|| {
                black_box(spectral_filter(
                    &s.data,
                    FilterParams {
                        epsilon: 0.1,
                        threshold_multiplier: m,
                        ..FilterParams::default()
                    },
                ))
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .without_plots();
    targets = bench
}
criterion_main!(benches);
