//! Bench E3 — GPU contention: prints the policy × scheduler table (the
//! §3 staging recommendation, quantified), then times the discrete-event
//! simulator at growing trace sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use treu_cluster::sim::Scheduler;
use treu_cluster::trace::{cohort_trace, SubmissionPolicy};
use treu_cluster::Cluster;
use treu_math::rng::SplitMix64;

fn print_reproduction() {
    let cluster = Cluster::default();
    println!("E3: 40 jobs on 8 GPUs, 10 trials (stuck = waiting > 4h)");
    println!(
        "  {:<11} {:<9} {:>10} {:>9} {:>7}",
        "policy", "sched", "mean wait", "p95 wait", "stuck"
    );
    let policies = [
        SubmissionPolicy::Clustered,
        SubmissionPolicy::Staged { batches: 4, window: 8.0 },
        SubmissionPolicy::Uniform { span: 32.0 },
    ];
    for policy in policies {
        for sched in [Scheduler::Fifo, Scheduler::Backfill] {
            let (mut wait, mut p95, mut stuck) = (0.0, 0.0, 0.0);
            for t in 0..10u64 {
                let mut rng = SplitMix64::new(9000 + t);
                let jobs = cohort_trace(40, policy, &mut rng);
                let m = cluster.simulate(&jobs, sched);
                wait += m.mean_wait / 10.0;
                p95 += m.p95_wait / 10.0;
                stuck += m.stuck_fraction / 10.0;
            }
            println!(
                "  {:<11} {:<9} {:>9.2}h {:>8.2}h {:>6.0}%",
                policy.name(),
                sched.name(),
                wait,
                p95,
                stuck * 100.0
            );
        }
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_reproduction();
    let cluster = Cluster::default();
    let mut g = c.benchmark_group("gpu_contention/simulate");
    for n_jobs in [40usize, 200, 1000] {
        let mut rng = SplitMix64::new(1);
        let jobs = cohort_trace(n_jobs, SubmissionPolicy::Clustered, &mut rng);
        g.bench_with_input(BenchmarkId::from_parameter(n_jobs), &jobs, |b, jobs| {
            b.iter(|| black_box(cluster.simulate(black_box(jobs), Scheduler::Backfill)))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .without_plots();
    targets = bench
}
criterion_main!(benches);
