//! Bench E2.3 — machine unlearning: prints the three-way method
//! comparison (forget/retain accuracy and cost), then times each
//! unlearning method against the full-retrain oracle.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use treu_math::rng::SplitMix64;
use treu_unlearn::ascent::{unlearn, AscentConfig};
use treu_unlearn::experiment::compare_methods;
use treu_unlearn::retrain::{retrain_without, train, TrainConfig};
use treu_unlearn::BlobDataset;

fn print_reproduction() {
    println!("E2.3: forget class 2 (2 trials)");
    let (orig, ascent, sisa, retrain) = compare_methods(2023, TrainConfig::default(), 2);
    println!("  original per-class acc: {orig:?}");
    for (name, r) in [("ascent", ascent), ("sisa", sisa), ("retrain", retrain)] {
        println!(
            "  {:<8} forget {:.3} retain {:.3} steps {}",
            name, r.forget_accuracy, r.retain_accuracy, r.cost_steps
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_reproduction();
    let mut rng = SplitMix64::new(100);
    let d = BlobDataset::generate(4, 40, 8, 6.0, &mut rng);

    c.bench_function("unlearning/ascent", |b| {
        b.iter(|| {
            let (mut model, _) = train(&d.train_x, &d.train_y, 4, TrainConfig::default(), 1);
            let ((fx, fy), (rx, ry)) = d.split_forget(2);
            black_box(unlearn(&mut model, (&fx, &fy), (&rx, &ry), AscentConfig::default(), 7))
        })
    });
    c.bench_function("unlearning/full_retrain", |b| {
        b.iter(|| black_box(retrain_without(&d, 2, TrainConfig::default(), 3).1))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .without_plots();
    targets = bench
}
criterion_main!(benches);
