//! Bench E2.6 — the deaugmentation study: prints the original-vs-
//! deaugmented generalization comparison (with the coverage confound),
//! then times detector training and inference.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use treu_detect::dataset::{build_dataset, DatasetKind};
use treu_detect::detector::{cells_of, CellDetector, DetectorConfig};
use treu_detect::video::FieldStrip;
use treu_math::rng::SplitMix64;

fn print_reproduction() {
    let mut rng = SplitMix64::new(2023);
    let strip = FieldStrip::generate(1600, 10, 0.5, &mut rng);
    let val: Vec<_> = (0..12).map(|i| strip.frame(900 + i * 40)).collect();
    println!("E2.6: 24-frame training sets, held-out validation");
    for kind in [DatasetKind::Original, DatasetKind::Deaugmented] {
        let ds = build_dataset(&strip, kind, 0, 24);
        let mut det = CellDetector::train(&ds.frames, DetectorConfig::default(), 5);
        let q = det.evaluate(&val);
        println!(
            "  {:<12} val acc {:.3}  plant F1 {:.3}  coverage {} cols, {} distinct plants",
            kind.name(),
            q.accuracy,
            q.plant_f1,
            ds.coverage_columns,
            ds.distinct_plants
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_reproduction();
    let mut rng = SplitMix64::new(1);
    let strip = FieldStrip::generate(1600, 10, 0.5, &mut rng);
    let ds = build_dataset(&strip, DatasetKind::Deaugmented, 0, 24);
    c.bench_function("detection/train_24_frames", |b| {
        let cfg = DetectorConfig { epochs: 10, ..DetectorConfig::default() };
        b.iter(|| black_box(CellDetector::train(&ds.frames, cfg, 5)))
    });
    c.bench_function("detection/featurize_frames", |b| {
        b.iter(|| black_box(cells_of(black_box(&ds.frames))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .without_plots();
    targets = bench
}
criterion_main!(benches);
