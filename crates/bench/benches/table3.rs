//! Bench T3 — regenerates the paper's Table 3 (knowledge of five topic
//! areas + increase) and times the analysis.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use treu_surveys::{analysis, paper, Cohort};

fn print_reproduction() {
    let cohort = Cohort::simulate(2023);
    let rows = analysis::table3(&cohort);
    println!("{}", analysis::render_table3(&rows));
    for (r, (name, m, inc)) in rows.iter().zip(paper::KNOWLEDGE.iter()) {
        println!(
            "{name}: paper ({m:.1}, +{inc:.1}) measured ({:.2}, +{:.2})",
            r.apriori_mean, r.increase
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_reproduction();
    let cohort = Cohort::simulate(2023);
    c.bench_function("table3/analyze", |b| {
        b.iter(|| black_box(analysis::table3(black_box(&cohort))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .without_plots();
    targets = bench
}
criterion_main!(benches);
