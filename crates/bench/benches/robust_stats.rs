//! Bench E2.10 — robust statistics: prints the ε- and dimension-sweeps,
//! then times the estimators (the paper's "main computational bottlenecks
//! were in linear algebra (SVD), and repetition of randomized algorithms").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use treu_math::rng::SplitMix64;
use treu_robust::contamination::{ContaminatedSample, Contamination};
use treu_robust::estimators;
use treu_robust::experiment::sweep_point;
use treu_robust::{spectral_filter, FilterParams};

fn print_reproduction() {
    println!("E2.10: L2 error vs dimension (eps=0.1, subtle shift, 3 trials)");
    println!("  {:>5} {:>9} {:>9} {:>9} {:>9}", "d", "mean", "median", "filter", "oracle");
    for d in [16usize, 64, 256] {
        let p = sweep_point(800, d, 0.1, Contamination::SubtleShift, 3, 4, 100 + d as u64);
        println!(
            "  {:>5} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
            d, p.mean, p.median, p.filter, p.oracle
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_reproduction();
    let mut g = c.benchmark_group("robust_stats/estimators_d64");
    let mut rng = SplitMix64::new(7);
    let s = ContaminatedSample::generate(800, 64, 0.1, Contamination::SubtleShift, &mut rng);
    g.bench_function("sample_mean", |b| {
        b.iter(|| black_box(estimators::sample_mean(black_box(&s.data))))
    });
    g.bench_function("coordinate_median", |b| {
        b.iter(|| black_box(estimators::coordinate_median(black_box(&s.data))))
    });
    g.bench_function("geometric_median", |b| {
        b.iter(|| black_box(estimators::geometric_median(black_box(&s.data), 1e-8, 100)))
    });
    g.bench_function("spectral_filter", |b| {
        b.iter(|| black_box(spectral_filter(black_box(&s.data), FilterParams::default())))
    });
    g.finish();

    // The SVD bottleneck itself, across dimensions.
    let mut g = c.benchmark_group("robust_stats/power_iteration");
    for d in [32usize, 128] {
        let mut rng = SplitMix64::new(d as u64);
        let s = ContaminatedSample::generate(400, d, 0.1, Contamination::SubtleShift, &mut rng);
        let cov = treu_math::stats::covariance_matrix(&s.data);
        g.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter(|| black_box(treu_math::decomp::power_iteration(&cov, 3, 1e-10, 2000)))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .without_plots();
    targets = bench
}
criterion_main!(benches);
