//! Bench E2.2a — the §2.2 headline: the fast weighting function is "much
//! faster and almost as accurate" than the Gaussian. Prints the accuracy
//! series, then times a full tracking run and the raw kernel evaluation
//! per weighting function (the latency that matters for "applications that
//! demand low latency or frequent updates").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use treu_pf::experiment::{run_tracking, Workload};
use treu_pf::WeightFn;

fn print_reproduction() {
    println!("E2.2a: RMSE by weighting kernel (8 trials, 256 particles)");
    for kernel in WeightFn::all() {
        let mut rmse = 0.0;
        for seed in 0..8 {
            rmse += run_tracking(Workload::default(), kernel, 256, seed).rmse / 8.0;
        }
        println!(
            "  {:<12} rmse {:.3}  transcendentals: {}",
            kernel.name(),
            rmse,
            kernel.uses_transcendentals()
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_reproduction();
    let mut g = c.benchmark_group("pf_weighting/full_track");
    for kernel in WeightFn::all() {
        g.bench_with_input(BenchmarkId::from_parameter(kernel.name()), &kernel, |b, &k| {
            b.iter(|| black_box(run_tracking(Workload::default(), k, 256, 7)))
        });
    }
    g.finish();

    // Raw kernel evaluation: the per-particle cost the fast kernels cut.
    let mut g = c.benchmark_group("pf_weighting/kernel_eval_x1e4");
    for kernel in WeightFn::all() {
        g.bench_with_input(BenchmarkId::from_parameter(kernel.name()), &kernel, |b, &k| {
            b.iter(|| {
                let mut acc = 0.0;
                for i in 0..10_000 {
                    acc += k.eval(black_box(i as f64 * 1e-3 - 5.0), 1.5);
                }
                black_box(acc)
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .without_plots();
    targets = bench
}
criterion_main!(benches);
