//! Bench T1 — regenerates the paper's Table 1 (goals accomplished, out of
//! nine post hoc respondents) and times the cohort-simulation + analysis
//! pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use treu_surveys::{analysis, Cohort};

fn print_reproduction() {
    let cohort = Cohort::simulate(2023);
    println!("{}", analysis::render_table1(&analysis::table1(&cohort)));
    let n = analysis::narrative(&cohort);
    println!(
        "narrative: PhD intent {:.1}(mode {}) -> {:.1}(mode {}); goals by all nine: {}\n",
        n.phd_apriori_mean,
        n.phd_apriori_mode,
        n.phd_posthoc_mean,
        n.phd_posthoc_mode,
        n.goals_by_all
    );
}

fn bench(c: &mut Criterion) {
    print_reproduction();
    c.bench_function("table1/simulate+analyze", |b| {
        b.iter(|| {
            let cohort = Cohort::simulate(black_box(2023));
            black_box(analysis::table1(&cohort))
        })
    });
    let cohort = Cohort::simulate(2023);
    c.bench_function("table1/analyze_only", |b| {
        b.iter(|| black_box(analysis::table1(black_box(&cohort))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .without_plots();
    targets = bench
}
criterion_main!(benches);
