//! Bench E2.11 — shape atlases: prints the one-mode recovery and the
//! particle-count ablation, then times the pipeline stages (correspondence
//! optimization, alignment, PCA).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use treu_math::rng::SplitMix64;
use treu_shapes::align::align_cohort;
use treu_shapes::correspond::ParticleSystem;
use treu_shapes::experiment::compute_atlas;
use treu_shapes::sample::EllipsoidFamily;

fn print_reproduction() {
    println!("E2.11: one-mode ellipsoid family, 24 shapes");
    let r = compute_atlas(EllipsoidFamily::default(), 24, 64, 1);
    println!(
        "  mode-1 variance ratio {:.3}, mode-1/latent correlation {:.3}",
        r.mode1_ratio, r.mode1_latent_corr
    );
    println!("  particle ablation:");
    for particles in [8usize, 16, 64, 256] {
        let r = compute_atlas(EllipsoidFamily::default(), 24, particles, 2);
        println!(
            "    {:>4} particles: mode-1 ratio {:.3}, latent corr {:.3}",
            particles, r.mode1_ratio, r.mode1_latent_corr
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_reproduction();
    let mut g = c.benchmark_group("shape_atlas/full_pipeline");
    for particles in [16usize, 64, 256] {
        g.bench_with_input(BenchmarkId::from_parameter(particles), &particles, |b, &p| {
            b.iter(|| black_box(compute_atlas(EllipsoidFamily::default(), 24, p, 3)))
        });
    }
    g.finish();

    let mut rng = SplitMix64::new(4);
    let shapes = EllipsoidFamily::default().sample(24, &mut rng);
    let ps = ParticleSystem::fibonacci(64);
    let m = ps.shape_matrix(&shapes);
    c.bench_function("shape_atlas/procrustes_align", |b| {
        b.iter(|| black_box(align_cohort(black_box(&m))))
    });
    c.bench_function("shape_atlas/correspondence_optimize", |b| {
        b.iter(|| {
            let mut sys = ParticleSystem::random(64, &mut SplitMix64::new(5));
            sys.optimize(40, 0.02);
            black_box(sys.uniformity())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .without_plots();
    targets = bench
}
criterion_main!(benches);
