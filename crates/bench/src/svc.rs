//! `treu soak --workers N` — sustained soak of the sharded verification
//! service across process topologies.
//!
//! The single-process soak ([`crate::soak`]) stresses the cache and the
//! fair queue; this one stresses the *coordinator/worker* layer: the same
//! registry-wide verification is driven repeatedly through
//! [`treu_core::svc::verify_all_svc`] at a ladder of `(workers, jobs)`
//! topologies, optionally with the seeded kill plan SIGKILLing workers
//! mid-shard, and every pass is required to land on the bits of the
//! fault-free in-process baseline — the same trace content address and
//! the same per-id fingerprint digest. Throughput per topology is the
//! benchmark number (`BENCH_svc.json`); bitwise convergence is the
//! acceptance criterion. Process chaos may cost respawns and wall time,
//! never results.

use std::time::Instant;

use treu_core::exec::{Executor, SupervisePolicy, VerifyReport};
use treu_core::experiment::Params;
use treu_core::fault::KillPlan;
use treu_core::hash::fnv64_parts;
use treu_core::svc::{verify_all_svc, SvcConfig};
use treu_core::ExperimentRegistry;

/// Soak shape: which topologies, how many passes, how much process chaos.
#[derive(Debug, Clone)]
pub struct SvcSoakConfig {
    /// Run seed every pass verifies under.
    pub seed: u64,
    /// Verification passes per topology (each pass is a fresh pool).
    pub passes: u32,
    /// Largest worker count in the ladder (from `--workers N`).
    pub max_workers: usize,
    /// Per-worker thread counts to cross with the worker ladder.
    pub jobs_ladder: Vec<usize>,
    /// Kill-plan seed; `None` runs the service without process chaos.
    pub kill_seed: Option<u64>,
    /// Kill-plan rate override.
    pub kill_rate: Option<f64>,
    /// Respawn budget override (per worker slot).
    pub respawn_budget: Option<u32>,
    /// Worker command override; empty means `current_exe worker`. Tests
    /// use this to force the degradation path without a real binary.
    pub worker_cmd: Vec<String>,
}

impl SvcSoakConfig {
    /// The default shape for `--workers N`: 2 passes over the worker
    /// ladder `{1, 2, 4} ∩ [1, N] ∪ {N}` crossed with jobs `{1, 4}`.
    pub fn new(max_workers: usize) -> Self {
        Self {
            seed: 2023,
            passes: 2,
            max_workers,
            jobs_ladder: vec![1, 4],
            kill_seed: None,
            kill_rate: None,
            respawn_budget: None,
            worker_cmd: Vec::new(),
        }
    }

    /// The `(workers, jobs)` grid this config soaks.
    pub fn topologies(&self) -> Vec<(usize, usize)> {
        let mut workers: Vec<usize> =
            [1usize, 2, 4].into_iter().filter(|&w| w <= self.max_workers).collect();
        if !workers.contains(&self.max_workers) {
            workers.push(self.max_workers);
        }
        let mut out = Vec::new();
        for &w in &workers {
            for &j in &self.jobs_ladder {
                out.push((w, j));
            }
        }
        out
    }
}

/// What one `(workers, jobs)` topology measured across its passes.
#[derive(Debug, Clone)]
pub struct TopologyReport {
    /// Worker process count.
    pub workers: usize,
    /// Threads per worker.
    pub jobs: usize,
    /// Passes run at this topology.
    pub passes: u32,
    /// Ids verified per pass.
    pub verified: usize,
    /// Wall time across all passes (reporting only; never a result).
    pub wall_seconds: f64,
    /// Verified runs per second across all passes.
    pub throughput: f64,
    /// Trace content address of the last pass.
    pub trace_address: u64,
    /// FNV digest over (id, fingerprint, failure) of the last pass.
    pub fingerprint_digest: u64,
    /// Worker processes spawned across all passes.
    pub spawned: u32,
    /// Kill-plan SIGKILLs delivered.
    pub kills: u32,
    /// Crashes observed (EOF without a kill we caused).
    pub crashes: u32,
    /// Hang-watchdog firings.
    pub hangs: u32,
    /// Shards requeued after an incarnation died holding them.
    pub requeues: u32,
    /// Whether any pass degraded to in-process execution.
    pub degraded: bool,
    /// Every pass matched the baseline trace address and digest.
    pub converged: bool,
}

/// The whole soak: a fault-free in-process baseline plus one report per
/// topology, each required to reproduce the baseline bits.
#[derive(Debug, Clone)]
pub struct SvcSoakReport {
    /// Echo of the run seed.
    pub seed: u64,
    /// Passes per topology.
    pub passes: u32,
    /// Kill-plan seed, when process chaos was armed.
    pub kill_seed: Option<u64>,
    /// Baseline trace content address (in-process, fault-free, jobs=1).
    pub baseline_trace: u64,
    /// Baseline per-id fingerprint digest.
    pub baseline_digest: u64,
    /// Baseline wall time.
    pub baseline_wall_seconds: f64,
    /// One entry per `(workers, jobs)` topology.
    pub topologies: Vec<TopologyReport>,
}

impl SvcSoakReport {
    /// True when every topology converged to the baseline bits.
    pub fn all_converged(&self) -> bool {
        self.topologies.iter().all(|t| t.converged)
    }

    /// Human summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "svc soak: seed {}, {} pass(es)/topology, baseline trace {:#018x}{}\n",
            self.seed,
            self.passes,
            self.baseline_trace,
            match self.kill_seed {
                Some(s) => format!(", kill plan seed {s}"),
                None => String::new(),
            }
        ));
        for t in &self.topologies {
            out.push_str(&format!(
                "  workers={} jobs={}: {:.1} runs/s ({} id(s) x {} pass(es) in {:.3}s) \
                 spawned={} kills={} requeues={}{}{} — {}\n",
                t.workers,
                t.jobs,
                t.throughput,
                t.verified,
                t.passes,
                t.wall_seconds,
                t.spawned,
                t.kills,
                t.requeues,
                if t.crashes + t.hangs > 0 {
                    format!(" crashes={} hangs={}", t.crashes, t.hangs)
                } else {
                    String::new()
                },
                if t.degraded { " DEGRADED" } else { "" },
                if t.converged { "CONVERGED" } else { "DIVERGED" },
            ));
        }
        out.push_str(&format!(
            "  all topologies bitwise-identical to baseline: {}\n",
            self.all_converged()
        ));
        out
    }

    /// Machine-readable JSON (`BENCH_svc.json`), hand-rolled like the
    /// other bench emitters — no serde in the dependency budget.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"bench\": \"svc/sharded-verify\",\n");
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"passes\": {},\n", self.passes));
        out.push_str(&format!(
            "  \"kill_seed\": {},\n",
            match self.kill_seed {
                Some(s) => s.to_string(),
                None => "null".to_string(),
            }
        ));
        out.push_str(&format!(
            "  \"baseline\": {{\"trace_address\": \"{:#018x}\", \
             \"fingerprint_digest\": \"{:#018x}\", \"wall_seconds\": {:.6}}},\n",
            self.baseline_trace, self.baseline_digest, self.baseline_wall_seconds
        ));
        out.push_str("  \"topologies\": [\n");
        for (i, t) in self.topologies.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"workers\": {}, \"jobs\": {}, \"verified\": {}, \
                 \"wall_seconds\": {:.6}, \"throughput_runs_per_s\": {:.3}, \
                 \"trace_address\": \"{:#018x}\", \"fingerprint_digest\": \"{:#018x}\", \
                 \"spawned\": {}, \"kills\": {}, \"crashes\": {}, \"hangs\": {}, \
                 \"requeues\": {}, \"degraded\": {}, \"converged\": {}}}{}\n",
                t.workers,
                t.jobs,
                t.verified,
                t.wall_seconds,
                t.throughput,
                t.trace_address,
                t.fingerprint_digest,
                t.spawned,
                t.kills,
                t.crashes,
                t.hangs,
                t.requeues,
                t.degraded,
                t.converged,
                if i + 1 < self.topologies.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!("  \"all_converged\": {}\n", self.all_converged()));
        out.push_str("}\n");
        out
    }
}

/// FNV digest over every id's verification outcome — the registry-wide
/// fingerprint identity a topology must reproduce.
fn digest(report: &VerifyReport) -> u64 {
    let mut parts: Vec<Vec<u8>> = Vec::new();
    for o in &report.outcomes {
        parts.push(o.id.as_bytes().to_vec());
        parts.push(o.fingerprint.to_le_bytes().to_vec());
        parts.push(match &o.failure {
            Some(f) => f.taxonomy.name().as_bytes().to_vec(),
            None => b"ok".to_vec(),
        });
    }
    let refs: Vec<&[u8]> = parts.iter().map(|p| p.as_slice()).collect();
    fnv64_parts(&refs)
}

/// Runs the soak: the fault-free in-process baseline first, then every
/// topology in the ladder, each pass through a fresh worker pool.
pub fn run_svc_soak(
    reg: &ExperimentRegistry,
    params_of: &(dyn Fn(&str, Params) -> Params + Sync),
    cfg: &SvcSoakConfig,
) -> std::io::Result<SvcSoakReport> {
    let policy = SupervisePolicy::new(0);
    // The bits every topology must land on: single-threaded, in-process,
    // no faults, no processes.
    // treu-lint: allow(wall-clock, reason = "throughput reporting only; never part of a result")
    let start = Instant::now();
    let exec = Executor::new(1).with_tracing(true);
    let baseline = exec
        .verify_all_supervised_with(reg, cfg.seed, None, &policy, None, |id, d| params_of(id, d));
    let baseline_wall = start.elapsed().as_secs_f64();
    let baseline_trace = baseline.trace.content_hash();
    let baseline_digest = digest(&baseline);

    let mut topologies = Vec::new();
    for (w, j) in cfg.topologies() {
        // treu-lint: allow(wall-clock, reason = "throughput reporting only; never part of a result")
        let start = Instant::now();
        let mut rep = TopologyReport {
            workers: w,
            jobs: j,
            passes: cfg.passes,
            verified: 0,
            wall_seconds: 0.0,
            throughput: 0.0,
            trace_address: 0,
            fingerprint_digest: 0,
            spawned: 0,
            kills: 0,
            crashes: 0,
            hangs: 0,
            requeues: 0,
            degraded: false,
            converged: true,
        };
        for pass in 0..cfg.passes {
            let mut c = SvcConfig::new(w).with_jobs(j).with_tracing(true);
            if let Some(n) = cfg.respawn_budget {
                c = c.with_respawn_budget(n);
            }
            if !cfg.worker_cmd.is_empty() {
                c = c.with_worker_cmd(cfg.worker_cmd.clone());
            }
            if let Some(s) = cfg.kill_seed {
                // A different (still seeded) kill schedule each pass:
                // more of the requeue state space for the same config.
                let pass_seed = s.wrapping_add(pass as u64);
                let kp = match cfg.kill_rate {
                    Some(r) => KillPlan::with_rate(pass_seed, r),
                    None => KillPlan::new(pass_seed),
                };
                c = c.with_kill_plan(kp);
            }
            let (report, stats) =
                verify_all_svc(reg, cfg.seed, None, &policy, None, |id, d| params_of(id, d), c)?;
            rep.verified = report.outcomes.len();
            rep.trace_address = report.trace.content_hash();
            rep.fingerprint_digest = digest(&report);
            rep.converged &=
                rep.trace_address == baseline_trace && rep.fingerprint_digest == baseline_digest;
            rep.spawned += stats.spawned;
            rep.kills += stats.kills;
            rep.crashes += stats.crashes;
            rep.hangs += stats.hangs;
            rep.requeues += stats.requeues;
            rep.degraded |= stats.degraded;
        }
        rep.wall_seconds = start.elapsed().as_secs_f64();
        rep.throughput = (rep.verified as f64 * cfg.passes as f64) / rep.wall_seconds.max(1e-9);
        topologies.push(rep);
    }
    Ok(SvcSoakReport {
        seed: cfg.seed,
        passes: cfg.passes,
        kill_seed: cfg.kill_seed,
        baseline_trace,
        baseline_digest,
        baseline_wall_seconds: baseline_wall,
        topologies,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use treu_core::experiment::{Experiment, RunContext};

    struct Echo;
    impl Experiment for Echo {
        fn name(&self) -> &str {
            "echo"
        }
        fn run(&self, ctx: &mut RunContext) {
            let gain = ctx.int("gain", 1);
            let mut rng = ctx.rng("echo");
            for i in 0..3 {
                let draw = rng.next_u64() >> 12;
                ctx.record(&format!("m{i}"), (draw as f64) * gain as f64);
            }
        }
    }

    fn small_registry() -> ExperimentRegistry {
        let mut reg = ExperimentRegistry::new();
        reg.register(
            "alpha",
            "bench::svc::tests",
            "svc soak test experiment",
            Params::new().with_int("gain", 3),
            Box::new(Echo),
        );
        reg.register(
            "beta",
            "bench::svc::tests",
            "svc soak test experiment",
            Params::new().with_int("gain", 5),
            Box::new(Echo),
        );
        reg
    }

    /// The test binary is not a `treu` binary, so real workers cannot
    /// spawn here; forcing the degradation path still exercises the whole
    /// soak loop and the parity accounting end to end.
    #[test]
    fn degraded_soak_converges_and_renders() {
        let reg = small_registry();
        let mut cfg = SvcSoakConfig::new(2);
        cfg.passes = 1;
        cfg.jobs_ladder = vec![1];
        cfg.respawn_budget = Some(0);
        cfg.worker_cmd = vec!["/bin/true".to_string()];
        let report = run_svc_soak(&reg, &|_, d| d, &cfg).expect("soak runs");
        assert_eq!(report.topologies.len(), 2, "workers 1 and 2, jobs 1");
        assert!(report.all_converged(), "degraded topologies must still hit baseline bits");
        assert!(report.topologies.iter().all(|t| t.degraded));
        assert!(report.topologies.iter().all(|t| t.verified == 2));
        let json = report.render_json();
        assert!(json.contains("\"all_converged\": true"));
        assert!(json.contains("\"bench\": \"svc/sharded-verify\""));
        assert!(report.render().contains("CONVERGED"));
    }

    #[test]
    fn topology_ladder_caps_and_includes_max() {
        assert_eq!(SvcSoakConfig::new(1).topologies(), vec![(1, 1), (1, 4)]);
        let t3 = SvcSoakConfig::new(3).topologies();
        assert!(t3.contains(&(3, 1)) && t3.contains(&(2, 4)) && !t3.contains(&(4, 1)));
        let t4 = SvcSoakConfig::new(4).topologies();
        assert_eq!(t4.len(), 6, "1,2,4 x 1,4");
    }
}
