//! Shared nothing: each bench is self-contained.
