//! Shared nothing between the criterion benches: each is self-contained.
//! The exceptions are [`workload`], the synthetic skewed-cost task set
//! shared by the `executor` criterion bench and the `exec_bench` binary so
//! both measure the same thing, [`soak`], the sustained multi-tenant
//! chaos soak driver behind `treu soak`, and [`svc`], the sharded
//! verification-service soak behind `treu soak --workers N`.
#![forbid(unsafe_code)]

pub mod soak;
pub mod svc;

pub mod workload {
    //! A skewed-cost workload for scheduler benchmarking.
    //!
    //! Task durations follow a Zipf-ish 1/rank curve: a handful of heavy
    //! head tasks and a long tail of light ones — the mixed-cost shape that
    //! static contiguous bands handle worst, because whichever band owns
    //! the head serializes the batch. Costs are *slept*, not computed, so
    //! the scheduling difference is visible on any core count (including
    //! single-core CI runners) while the task *outputs* stay deterministic
    //! pure functions of the task index, which is what lets callers check
    //! static and dynamic schedules for bitwise-identical results.

    /// splitmix64 — the workload's deterministic per-task payload. Pure
    /// function of the index; no ambient randomness.
    fn splitmix64(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Sleep cost of task `i`, in microseconds: `scale_us / (i + 1)`,
    /// clamped below by 1µs. Task 0 alone costs as much as the entire
    /// tail past index ~e^1 combined (harmonic series), so a static band
    /// containing the head is the batch's critical path.
    pub fn skewed_cost_us(i: usize, scale_us: u64) -> u64 {
        (scale_us / (i as u64 + 1)).max(1)
    }

    /// Total slept cost of an `n`-task workload, in seconds — the ideal
    /// single-worker wall time.
    pub fn total_cost_seconds(n: usize, scale_us: u64) -> f64 {
        (0..n).map(|i| skewed_cost_us(i, scale_us) as f64 / 1e6).sum()
    }

    /// Runs task `i`: sleeps its skewed cost, returns a value that depends
    /// only on `i`. Identical for every scheduling order by construction.
    pub fn run_task(i: usize, scale_us: u64) -> u64 {
        std::thread::sleep(std::time::Duration::from_micros(skewed_cost_us(i, scale_us)));
        splitmix64(i as u64)
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn costs_are_skewed_and_positive() {
            assert_eq!(skewed_cost_us(0, 1000), 1000);
            assert_eq!(skewed_cost_us(1, 1000), 500);
            assert_eq!(skewed_cost_us(999_999, 1000), 1, "tail is clamped to 1µs");
            // Head-heavy: task 0 costs more than the entire second half.
            let head = skewed_cost_us(0, 1000);
            let back_half: u64 = (32..64).map(|i| skewed_cost_us(i, 1000)).sum();
            assert!(head > back_half);
        }

        #[test]
        fn payload_is_a_pure_function_of_the_index() {
            let a: Vec<u64> = (0..16).map(|i| run_task(i, 8)).collect();
            let b: Vec<u64> = (0..16).map(|i| run_task(i, 8)).collect();
            assert_eq!(a, b);
        }
    }
}
