//! Shared nothing: each bench is self-contained.
#![forbid(unsafe_code)]
