//! `treu soak` — sustained multi-tenant chaos soak over a bounded cache.
//!
//! One-shot drills (`treu chaos`, `treu verify`) prove the harness
//! survives a single pass; the reproducibility@XSEDE experience the
//! ROADMAP tracks says shared-infrastructure reproduction fails in the
//! *sustained, multi-tenant* regime — queues back up behind hot users,
//! caches churn, faults arrive in phases, and drift creeps in over hours
//! rather than minutes. This module simulates exactly that regime while
//! keeping every observable deterministic:
//!
//! * **Traffic** is Zipf-distributed over seeded tenant ids: a pure
//!   function of `(soak seed, submission index)` maps each submission to
//!   a tenant, and each tenant to a small preferred pool of registry
//!   experiments and run seeds — hot tenants re-request hot keys, which
//!   is what gives a bounded cache a steady state to converge to.
//! * **Dispatch** drains per-tenant FIFOs through
//!   [`treu_core::exec::FairQueue`]: rounds of `capacity` slots, at most
//!   `quota` per tenant per round, so a flooding tenant inflates its own
//!   tail latency and nobody else's.
//! * **Execution** is supervised under an epoch-phased
//!   [`SoakSchedule`]: fault classes cycle in and out across epochs,
//!   transient-only, with the retry budget sized so every run converges
//!   to its fault-free bits.
//! * **The cache** runs under a hard [`CacheBound`] with logical-clock
//!   LRU eviction. All cache traffic happens on the driver thread in
//!   dispatch order — lookups first, parallel compute of the misses,
//!   then stores in dispatch order — so eviction decisions are identical
//!   at every `--jobs` count.
//! * **Latencies are logical**: a submission's latency is the dispatch
//!   round that served it (1-based), a pure function of queue state.
//!   p50/p99 are therefore reproducible numbers, not wall-clock noise.
//!
//! Every served submission appends one line to a logical trace; its FNV
//! content address is the soak's identity. The acceptance criterion is
//! that this address — which covers every fingerprint the soak saw — is
//! bitwise-identical across job counts *and* to the fault-free baseline
//! soak (same config at rate 0): chaos may cost attempts, never results.

use std::collections::BTreeMap;
use std::time::Instant;
use treu_core::cache::{CacheBound, RunCache};
use treu_core::exec::{
    run_supervised, Executor, FairQueue, RunOutcome, SupervisePolicy, TenantLedger,
};
use treu_core::experiment::Params;
use treu_core::fault::SoakSchedule;
use treu_core::registry::Entry;
use treu_core::ExperimentRegistry;

// Traffic shapes are drawn from the canonical separator-mixed FNV-1a
// fold — the same construction the run cache uses for its addresses.
use treu_core::hash::{fnv64_parts, unit};

/// Soak shape: how much traffic, from whom, under how much pressure.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakConfig {
    /// Master seed for traffic generation (tenant draws, key pools).
    pub seed: u64,
    /// Number of simulated tenants.
    pub tenants: usize,
    /// Submissions generated per epoch.
    pub submissions_per_epoch: usize,
    /// Number of fault epochs (epoch 0 is always clean).
    pub epochs: u32,
    /// Dispatch slots per scheduling round.
    pub capacity: usize,
    /// Per-tenant slot quota per round.
    pub quota: usize,
    /// Zipf skew exponent for the tenant popularity curve.
    pub zipf_s: f64,
    /// Size of each tenant's preferred experiment pool.
    pub ids_per_tenant: usize,
    /// Size of each tenant's run-seed pool (smaller ⇒ hotter keys).
    pub seeds_per_tenant: usize,
    /// Seed of the epoch-phased fault schedule.
    pub fault_seed: u64,
    /// Base fault injection rate (0 ⇒ the fault-free baseline soak).
    pub fault_rate: f64,
    /// Cache bound the soak runs under.
    pub bound: CacheBound,
    /// Executor worker count for the compute phase.
    pub jobs: usize,
}

impl SoakConfig {
    /// The CI drill shape: small enough for seconds, large enough that
    /// the bound forces evictions and the hit-rate has a steady state.
    pub fn quick(jobs: usize) -> Self {
        Self {
            seed: 42,
            tenants: 6,
            submissions_per_epoch: 96,
            epochs: 4,
            capacity: 16,
            quota: 4,
            zipf_s: 1.1,
            ids_per_tenant: 3,
            seeds_per_tenant: 3,
            fault_seed: 7,
            fault_rate: 0.2,
            bound: CacheBound::entries(24),
            jobs,
        }
    }

    /// The sustained shape: more tenants, more epochs, longer tail.
    pub fn full(jobs: usize) -> Self {
        Self {
            seed: 42,
            tenants: 12,
            submissions_per_epoch: 400,
            epochs: 8,
            capacity: 24,
            quota: 4,
            zipf_s: 1.1,
            ids_per_tenant: 4,
            seeds_per_tenant: 4,
            fault_seed: 7,
            fault_rate: 0.25,
            bound: CacheBound::entries(64),
            jobs,
        }
    }

    /// Total submissions across all epochs.
    pub fn total_submissions(&self) -> usize {
        self.submissions_per_epoch * self.epochs as usize
    }
}

/// One generated submission: a tenant asking for one `(id, seed)` run.
#[derive(Debug, Clone, PartialEq)]
pub struct Submission {
    /// Global submission index (generation order).
    pub index: usize,
    /// Epoch this submission belongs to.
    pub epoch: u32,
    /// Tenant id in `0..cfg.tenants`.
    pub tenant: u64,
    /// Registry experiment id.
    pub id: String,
    /// Run seed, drawn from the tenant's bounded seed pool.
    pub seed: u64,
}

/// Draws the tenant for global submission `index`: inverse-CDF over the
/// Zipf weights `w_k ∝ 1/(k+1)^s`. Pure function of `(cfg.seed, index)`.
fn draw_tenant(cfg: &SoakConfig, index: usize) -> u64 {
    let weights: Vec<f64> =
        (0..cfg.tenants).map(|k| 1.0 / ((k + 1) as f64).powf(cfg.zipf_s)).collect();
    let total: f64 = weights.iter().sum();
    let u =
        unit(fnv64_parts(&[b"soak-tenant", &cfg.seed.to_le_bytes(), &index.to_le_bytes()])) * total;
    let mut acc = 0.0;
    for (k, w) in weights.iter().enumerate() {
        acc += w;
        if u < acc {
            return k as u64;
        }
    }
    (cfg.tenants - 1) as u64
}

/// Generates the soak's full submission stream against the given
/// experiment id pool. Deterministic: a pure function of `(cfg, ids)`.
pub fn generate(cfg: &SoakConfig, ids: &[String]) -> Vec<Submission> {
    assert!(!ids.is_empty(), "soak needs a non-empty experiment pool");
    let per_epoch = cfg.submissions_per_epoch;
    let mut subs = Vec::with_capacity(cfg.total_submissions());
    for index in 0..cfg.total_submissions() {
        let epoch = (index / per_epoch) as u32;
        let tenant = draw_tenant(cfg, index);
        // The tenant's preferred experiment pool: `ids_per_tenant`
        // deterministic picks from the registry (repeats allowed — they
        // just make that tenant hotter on fewer keys).
        let slot_count = cfg.ids_per_tenant.max(1);
        let pick = fnv64_parts(&[b"soak-id", &cfg.seed.to_le_bytes(), &index.to_le_bytes()]);
        let slot = (pick % slot_count as u64) as usize;
        let id_ix = fnv64_parts(&[
            b"soak-pref",
            &cfg.seed.to_le_bytes(),
            &tenant.to_le_bytes(),
            &slot.to_le_bytes(),
        ]) % ids.len() as u64;
        let id = ids[id_ix as usize].clone();
        // Run seed from the tenant's bounded pool, so repeat requests
        // address the same cache entries.
        let seed_slot =
            fnv64_parts(&[b"soak-seed-slot", &cfg.seed.to_le_bytes(), &index.to_le_bytes()])
                % cfg.seeds_per_tenant.max(1) as u64;
        let seed = fnv64_parts(&[
            b"soak-run-seed",
            &cfg.seed.to_le_bytes(),
            &tenant.to_le_bytes(),
            &seed_slot.to_le_bytes(),
        ]) % 100_000;
        subs.push(Submission { index, epoch, tenant, id, seed });
    }
    subs
}

/// What one soak run measured. Everything except `wall_seconds` and
/// `retried` is bitwise-identical across job counts and fault rates
/// (retries are chaos-visible, results are not).
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// Echo of the configuration that produced this report.
    pub config: SoakConfig,
    /// Submissions served (hits + computed).
    pub served: u64,
    /// Served from the cache.
    pub hits: u64,
    /// Served by computing.
    pub computed: u64,
    /// Runs whose first attempt failed but a retry rescued (chaos cost).
    pub retried: u64,
    /// Runs that exhausted the supervision budget (must be 0 for
    /// transient-only schedules).
    pub quarantined: u64,
    /// Fingerprint mismatches against the clean baseline (must be 0).
    pub drift: u64,
    /// Cache evictions across the soak.
    pub evictions: u64,
    /// Total dispatch rounds.
    pub rounds: u64,
    /// p50 logical service latency, in rounds.
    pub p50_latency_rounds: u64,
    /// p99 logical service latency, in rounds.
    pub p99_latency_rounds: u64,
    /// Worst per-tenant max latency (the fairness headline).
    pub worst_tenant_latency_rounds: u64,
    /// Hit-rate per epoch, in epoch order.
    pub epoch_hit_rates: Vec<f64>,
    /// Final-epoch hit-rate — the steady state the cache converged to.
    pub steady_hit_rate: f64,
    /// FNV content address of the logical trace (covers every served
    /// fingerprint and the eviction log).
    pub trace_address: u64,
    /// FNV address of the eviction log alone.
    pub eviction_address: u64,
    /// Resident cache entries at the end, in canonical order.
    pub final_entries: Vec<String>,
    /// Per-tenant accounting.
    pub ledger: TenantLedger,
    /// Content address of the fault schedule that was active.
    pub schedule_fingerprint: u64,
    /// Wall time of the whole soak (reporting only; never a result).
    pub wall_seconds: f64,
}

impl SoakReport {
    /// True when the soak met the zero-drift acceptance criterion.
    pub fn zero_drift(&self) -> bool {
        self.drift == 0 && self.quarantined == 0
    }

    /// Human summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "soak: {} submission(s), {} tenant(s), {} epoch(s), jobs={}, bound {} entr(ies)/{} byte(s)\n",
            self.served,
            self.config.tenants,
            self.config.epochs,
            self.config.jobs,
            self.config.bound.max_entries,
            self.config.bound.max_bytes,
        ));
        for (e, rate) in self.epoch_hit_rates.iter().enumerate() {
            out.push_str(&format!("  epoch {e}: hit-rate {rate:.3}\n"));
        }
        out.push_str(&format!(
            "  latency: p50 {} / p99 {} round(s); worst tenant max {} round(s) over {} round(s)\n",
            self.p50_latency_rounds,
            self.p99_latency_rounds,
            self.worst_tenant_latency_rounds,
            self.rounds,
        ));
        out.push_str(&format!(
            "  cache: steady-state hit-rate {:.3}, {} eviction(s), {} resident\n",
            self.steady_hit_rate,
            self.evictions,
            self.final_entries.len(),
        ));
        out.push_str(&format!(
            "  chaos: {} retried, {} quarantined, drift {} — zero drift: {}\n",
            self.retried,
            self.quarantined,
            self.drift,
            self.zero_drift(),
        ));
        out.push_str(&format!("  trace address {:#018x}\n", self.trace_address));
        out.push_str(&self.ledger.render());
        out
    }

    /// Machine-readable JSON (`BENCH_soak.json`), hand-rolled like the
    /// other bench emitters — no serde in the dependency budget.
    pub fn render_json(&self) -> String {
        let rates: Vec<String> = self.epoch_hit_rates.iter().map(|r| format!("{r:.6}")).collect();
        format!(
            "{{\n  \"bench\": \"soak/multi-tenant\",\n  \"seed\": {seed},\n  \
             \"tenants\": {tenants},\n  \"epochs\": {epochs},\n  \
             \"submissions\": {subs},\n  \"capacity\": {capacity},\n  \
             \"quota\": {quota},\n  \"jobs\": {jobs},\n  \
             \"cache_max_entries\": {maxe},\n  \"cache_max_bytes\": {maxb},\n  \
             \"fault_rate\": {rate:.4},\n  \"served\": {served},\n  \
             \"hits\": {hits},\n  \"computed\": {computed},\n  \
             \"retried\": {retried},\n  \"quarantined\": {quarantined},\n  \
             \"drift\": {drift},\n  \"evictions\": {evictions},\n  \
             \"rounds\": {rounds},\n  \"p50_latency_rounds\": {p50},\n  \
             \"p99_latency_rounds\": {p99},\n  \
             \"worst_tenant_latency_rounds\": {worst},\n  \
             \"epoch_hit_rates\": [{rates}],\n  \
             \"steady_hit_rate\": {steady:.6},\n  \
             \"zero_drift\": {zero},\n  \
             \"trace_address\": \"{trace:#018x}\",\n  \
             \"eviction_address\": \"{evaddr:#018x}\",\n  \
             \"schedule_fingerprint\": \"{sched:#018x}\",\n  \
             \"wall_seconds\": {wall:.6}\n}}\n",
            seed = self.config.seed,
            tenants = self.config.tenants,
            epochs = self.config.epochs,
            subs = self.served,
            capacity = self.config.capacity,
            quota = self.config.quota,
            jobs = self.config.jobs,
            maxe = self.config.bound.max_entries,
            maxb = self.config.bound.max_bytes,
            rate = self.config.fault_rate,
            served = self.served,
            hits = self.hits,
            computed = self.computed,
            retried = self.retried,
            quarantined = self.quarantined,
            drift = self.drift,
            evictions = self.evictions,
            rounds = self.rounds,
            p50 = self.p50_latency_rounds,
            p99 = self.p99_latency_rounds,
            worst = self.worst_tenant_latency_rounds,
            rates = rates.join(", "),
            steady = self.steady_hit_rate,
            zero = self.zero_drift(),
            trace = self.trace_address,
            evaddr = self.eviction_address,
            sched = self.schedule_fingerprint,
            wall = self.wall_seconds,
        )
    }
}

/// Nearest-rank quantile over service latencies — delegated to the one
/// shared ceil-rank implementation so the soak, the tenant ledger and
/// every future consumer agree on what "p99" means (the analyzer's R12
/// rule keeps it that way).
fn quantile(sorted: &[u64], q: f64) -> u64 {
    treu_core::exec::quantile_ceil_rank(sorted, q)
}

/// Computes (or replays) the clean-baseline fingerprint for a key. The
/// baseline is always a fresh, unsupervised, fault-free run — the bits
/// every cached or chaos-computed result must match.
fn baseline_fingerprint(
    reg: &ExperimentRegistry,
    params_of: &dyn Fn(&str, Params) -> Params,
    memo: &mut BTreeMap<(String, u64), u64>,
    id: &str,
    seed: u64,
) -> u64 {
    if let Some(fp) = memo.get(&(id.to_string(), seed)) {
        return *fp;
    }
    let entry = reg.get(id).expect("soak submissions target registered ids");
    let params = params_of(id, entry.defaults.clone());
    let rec = reg.run_with(id, seed, params).expect("registered id runs");
    let fp = rec.fingerprint();
    memo.insert((id.to_string(), seed), fp);
    fp
}

/// Runs the soak: Zipf traffic through fair dispatch, supervised
/// execution under the epoch schedule, bounded cache in the middle.
///
/// `cache` should be opened with `cfg.bound` on an empty directory; the
/// report's determinism claims are over cache operation order, which
/// this driver serializes (lookups, then parallel compute, then stores,
/// all in dispatch order) precisely so the `--jobs` count cannot leak
/// into eviction decisions.
pub fn run_soak(
    reg: &ExperimentRegistry,
    params_of: &dyn Fn(&str, Params) -> Params,
    cfg: &SoakConfig,
    cache: &RunCache,
) -> SoakReport {
    // treu-lint: allow(wall-clock, reason = "soak wall time is report-only; every result metric is logical")
    let t0 = Instant::now();
    let ids: Vec<String> = reg.iter().map(|(id, _)| id.to_string()).collect();
    let subs = generate(cfg, &ids);
    let schedule = SoakSchedule::new(cfg.fault_seed, cfg.fault_rate, cfg.epochs);
    let policy = SupervisePolicy::new(schedule.retry_budget());
    let exec = Executor::new(cfg.jobs);

    let mut memo: BTreeMap<(String, u64), u64> = BTreeMap::new();
    let mut ledger = TenantLedger::new();
    let mut trace = String::new();
    let mut latencies: Vec<u64> = Vec::new();
    let mut epoch_hit_rates = Vec::new();
    let (mut hits, mut computed, mut retried, mut quarantined, mut drift) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    let mut rounds = 0u64;

    for epoch in 0..cfg.epochs {
        let plan = schedule.plan_for(epoch);
        let mut q = FairQueue::new(cfg.quota);
        for sub in subs.iter().filter(|s| s.epoch == epoch) {
            ledger.note_submitted(sub.tenant);
            q.push(sub.tenant, sub);
        }
        let mut epoch_round = 0u64;
        let (mut epoch_hits, mut epoch_served) = (0u64, 0u64);
        while !q.is_empty() {
            let round = q.next_round(cfg.capacity);
            epoch_round += 1;
            rounds += 1;

            // Phase 1 — sequential lookups in dispatch order. Hits are
            // served immediately; misses carry their params forward to
            // the compute phase.
            let mut missed: Vec<(&Submission, Params, &Entry)> = Vec::new();
            for (tenant, sub) in &round {
                let entry = reg.get(&sub.id).expect("soak submissions target registered ids");
                let params = params_of(&sub.id, entry.defaults.clone());
                match cache.lookup(&sub.id, sub.seed, &params) {
                    Some(rec) => {
                        let fp = rec.fingerprint();
                        if fp != baseline_fingerprint(reg, params_of, &mut memo, &sub.id, sub.seed)
                        {
                            drift += 1;
                        }
                        hits += 1;
                        epoch_hits += 1;
                        epoch_served += 1;
                        ledger.note_served(*tenant, epoch_round, true);
                        latencies.push(epoch_round);
                        trace.push_str(&format!(
                            "sub={} epoch={epoch} round={epoch_round} tenant={tenant} id={} seed={} hit fp={fp:016x}\n",
                            sub.index, sub.id, sub.seed
                        ));
                    }
                    None => missed.push((sub, params, entry)),
                }
            }

            // Phase 2 — parallel supervised compute of the misses. The
            // executor merges in index order, so the outcome vector is
            // schedule-independent.
            let outcomes = exec.map_indexed(missed.len(), |k| {
                let (sub, params, entry) = &missed[k];
                run_supervised(entry.runner(), &sub.id, sub.seed, params, &policy, plan.as_ref(), 0)
            });

            // Phase 3 — sequential stores (and evictions) in dispatch
            // order, on the driver thread.
            for ((sub, params, _), outcome) in missed.iter().zip(outcomes) {
                let tenant = sub.tenant;
                match outcome {
                    RunOutcome::Ok { record, attempts } => {
                        let fp = record.fingerprint();
                        if fp != baseline_fingerprint(reg, params_of, &mut memo, &sub.id, sub.seed)
                        {
                            drift += 1;
                        }
                        if attempts > 1 {
                            retried += 1;
                        }
                        cache.store(&sub.id, sub.seed, params, &record).expect("soak cache store");
                        computed += 1;
                        epoch_served += 1;
                        ledger.note_served(tenant, epoch_round, false);
                        latencies.push(epoch_round);
                        trace.push_str(&format!(
                            "sub={} epoch={epoch} round={epoch_round} tenant={tenant} id={} seed={} computed fp={fp:016x}\n",
                            sub.index, sub.id, sub.seed
                        ));
                    }
                    RunOutcome::Failed(f) => {
                        quarantined += 1;
                        trace.push_str(&format!(
                            "sub={} epoch={epoch} round={epoch_round} tenant={tenant} id={} seed={} quarantined taxonomy={}\n",
                            sub.index, sub.id, sub.seed,
                            f.taxonomy.name()
                        ));
                    }
                }
            }
        }
        epoch_hit_rates.push(if epoch_served == 0 {
            0.0
        } else {
            epoch_hits as f64 / epoch_served as f64
        });
    }

    // The eviction log joins the trace so eviction *order* is part of
    // the soak's identity, not just its count.
    for name in cache.eviction_log() {
        trace.push_str(&format!("evict={name}\n"));
    }
    let trace_address = fnv64_parts(&[trace.as_bytes()]);

    latencies.sort_unstable();
    let steady_hit_rate = epoch_hit_rates.last().copied().unwrap_or(0.0);
    SoakReport {
        config: cfg.clone(),
        served: hits + computed,
        hits,
        computed,
        retried,
        quarantined,
        drift,
        evictions: cache.stats().evictions,
        rounds,
        p50_latency_rounds: quantile(&latencies, 0.50),
        p99_latency_rounds: quantile(&latencies, 0.99),
        worst_tenant_latency_rounds: ledger.worst_latency_rounds(),
        epoch_hit_rates,
        steady_hit_rate,
        trace_address,
        eviction_address: cache.eviction_fingerprint(),
        final_entries: cache.resident_entries(),
        ledger,
        schedule_fingerprint: schedule.fingerprint(),
        wall_seconds: t0.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> SoakConfig {
        SoakConfig::quick(2)
    }

    #[test]
    fn generation_is_deterministic_and_well_formed() {
        let ids: Vec<String> = ["A", "B", "C", "D"].iter().map(|s| s.to_string()).collect();
        let cfg = quick();
        let a = generate(&cfg, &ids);
        let b = generate(&cfg, &ids);
        assert_eq!(a, b, "traffic is a pure function of the config");
        assert_eq!(a.len(), cfg.total_submissions());
        for s in &a {
            assert!((s.tenant as usize) < cfg.tenants);
            assert!(ids.contains(&s.id));
            assert_eq!(s.epoch, (s.index / cfg.submissions_per_epoch) as u32);
        }
        let mut other_seed = cfg.clone();
        other_seed.seed = 43;
        assert_ne!(generate(&other_seed, &ids), a, "the soak seed must matter");
    }

    #[test]
    fn tenant_draw_is_zipf_skewed() {
        let cfg = quick();
        let mut counts = vec![0usize; cfg.tenants];
        for i in 0..4000 {
            counts[draw_tenant(&cfg, i) as usize] += 1;
        }
        assert!(
            counts[0] > 2 * counts[cfg.tenants - 1],
            "head tenant must dominate the tail: {counts:?}"
        );
        assert!(counts.iter().all(|&c| c > 0), "every tenant gets traffic: {counts:?}");
        let head_share = counts[0] as f64 / 4000.0;
        assert!((0.30..0.60).contains(&head_share), "s=1.1 head share off: {head_share}");
    }

    #[test]
    fn quantiles_are_nearest_rank() {
        assert_eq!(quantile(&[], 0.5), 0);
        assert_eq!(quantile(&[7], 0.5), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(quantile(&v, 0.50), 50);
        assert_eq!(quantile(&v, 0.99), 99);
        assert_eq!(quantile(&v, 1.0), 100);
    }

    #[test]
    fn report_json_carries_the_acceptance_fields() {
        let cfg = quick();
        let report = SoakReport {
            config: cfg,
            served: 10,
            hits: 6,
            computed: 4,
            retried: 1,
            quarantined: 0,
            drift: 0,
            evictions: 3,
            rounds: 5,
            p50_latency_rounds: 1,
            p99_latency_rounds: 4,
            worst_tenant_latency_rounds: 4,
            epoch_hit_rates: vec![0.25, 0.75],
            steady_hit_rate: 0.75,
            trace_address: 0xDEAD,
            eviction_address: 0xBEEF,
            final_entries: vec![],
            ledger: TenantLedger::new(),
            schedule_fingerprint: 0x1234,
            wall_seconds: 0.5,
        };
        let json = report.render_json();
        for field in [
            "\"steady_hit_rate\": 0.750000",
            "\"p50_latency_rounds\": 1",
            "\"p99_latency_rounds\": 4",
            "\"trace_address\": \"0x000000000000dead\"",
            "\"zero_drift\": true",
            "\"evictions\": 3",
        ] {
            assert!(json.contains(field), "missing {field} in:\n{json}");
        }
        assert!(report.render().contains("steady-state hit-rate 0.750"));
    }
}
