//! `exec_bench` — static vs dynamic scheduling on the skewed workload.
//!
//! The registry benches measure throughput of real experiments; this
//! binary isolates the *scheduler* instead. It runs the same Zipf-ish
//! sleep-cost task set (see `treu_bench::workload`) through the static
//! band partitioner (`par_map`) and the self-scheduling work queue
//! (`par_map_dynamic`), checks that both produce bitwise-identical
//! outputs, and writes a machine-readable `BENCH_exec.json` so the perf
//! trajectory is diffable across PRs.
//!
//! ```text
//! exec_bench [--quick] [--enforce] [--jobs N] [--out PATH]
//! ```
//!
//! `--quick` shrinks the workload for CI smoke runs; `--enforce` exits
//! nonzero unless dynamic scheduling beats static by the 1.3x floor the
//! roadmap requires — and unless span tracing costs under the 2% ceiling
//! (ISSUE 5); `--jobs` defaults to 4 (the floor the acceptance criterion
//! names) or the hardware thread count if larger.

#![forbid(unsafe_code)]

use std::time::Instant;
use treu_bench::workload;
use treu_core::exec::Executor;
use treu_core::experiment::{Experiment, Params, RunContext};
use treu_core::ExperimentRegistry;
use treu_math::parallel::{default_threads, par_map, par_map_dynamic};

/// Minimum dynamic-over-static speedup `--enforce` accepts.
const SPEEDUP_FLOOR: f64 = 1.3;

/// Maximum trace overhead (tracing on vs off, percent) `--enforce`
/// accepts.
const TRACE_OVERHEAD_CEILING_PCT: f64 = 2.0;

/// A CPU-bound task wrapped as a registered experiment, so the
/// trace-overhead measurement exercises the same executor path `treu
/// run` uses. Compute-bound (an LCG dependency chain) rather than
/// sleep-based: sleep overshoot jitter is percent-scale at these batch
/// sizes and would drown the sub-percent signal being priced.
struct BenchTask {
    seed: u64,
    iters: u64,
}

impl Experiment for BenchTask {
    fn name(&self) -> &str {
        "bench-task"
    }

    fn run(&self, ctx: &mut RunContext) {
        let mut acc = self.seed;
        for k in 0..self.iters {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k | 1);
        }
        ctx.record("out", (acc >> 32) as f64);
    }
}

fn bench_registry(n_tasks: usize, iters: u64) -> ExperimentRegistry {
    let mut reg = ExperimentRegistry::new();
    for rank in 0..n_tasks {
        reg.register(
            &format!("B{rank:03}"),
            "bench",
            "compute-bound trace-overhead task",
            Params::new(),
            Box::new(BenchTask { seed: rank as u64, iters }),
        );
    }
    reg
}

struct Config {
    quick: bool,
    enforce: bool,
    jobs: usize,
    out: String,
}

fn parse_args() -> Result<Config, String> {
    let mut cfg = Config {
        quick: false,
        enforce: false,
        jobs: default_threads().max(4),
        out: "BENCH_exec.json".to_string(),
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => cfg.quick = true,
            "--enforce" => cfg.enforce = true,
            "--jobs" => {
                i += 1;
                let v = args.get(i).ok_or("--jobs requires a value")?;
                cfg.jobs = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&j| j >= 1)
                    .ok_or_else(|| format!("invalid --jobs value '{v}'"))?;
            }
            "--out" => {
                i += 1;
                cfg.out = args.get(i).ok_or("--out requires a value")?.clone();
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
        i += 1;
    }
    Ok(cfg)
}

/// Times `f` `repeats` times and keeps the minimum — the standard
/// benchmarking estimator for the noise-free cost — returning the last
/// output so the caller can compare results across schedulers.
fn time_min<T>(repeats: usize, f: impl Fn() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..repeats {
        // treu-lint: allow(wall-clock, reason = "benchmark harness measures wall time by definition")
        let t0 = Instant::now();
        let out = f();
        best = best.min(t0.elapsed().as_secs_f64());
        last = Some(out);
    }
    (best, last.expect("repeats >= 1"))
}

fn main() {
    let cfg = match parse_args() {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("exec_bench: {msg}");
            eprintln!("usage: exec_bench [--quick] [--enforce] [--jobs N] [--out PATH]");
            std::process::exit(2);
        }
    };
    let (n_tasks, scale_us, repeats) = if cfg.quick { (64, 3000, 3) } else { (256, 2000, 5) };
    let jobs = cfg.jobs;
    eprintln!(
        "exec_bench: {n_tasks} tasks, 1/rank cost curve (head {}µs), {jobs} job(s), min of {repeats}",
        workload::skewed_cost_us(0, scale_us)
    );

    let expected: Vec<u64> = (0..n_tasks).map(|i| workload::run_task(i, 0)).collect();
    let (static_wall, static_out) =
        time_min(repeats, || par_map(n_tasks, jobs, |i| workload::run_task(i, scale_us)));
    let (dynamic_wall, dynamic_out) =
        time_min(repeats, || par_map_dynamic(n_tasks, jobs, |i| workload::run_task(i, scale_us)));

    let identical = static_out == expected && dynamic_out == expected;
    assert!(identical, "scheduler changed task outputs — determinism violation");

    let speedup = static_wall / dynamic_wall;
    let ideal = workload::total_cost_seconds(n_tasks, scale_us) / jobs as f64;
    eprintln!("  static  bands : {static_wall:.4}s");
    eprintln!("  dynamic queue : {dynamic_wall:.4}s  (ideal {ideal:.4}s)");
    eprintln!("  speedup       : {speedup:.2}x  (outputs bitwise-identical: {identical})");

    // Trace overhead: the same registry batch with span recording on vs
    // off, through the executor path `treu run` takes. The stream costs
    // a handful of Vec pushes per run, so this must stay in the noise.
    let trace_iters = if cfg.quick { 2_000_000 } else { 4_000_000 };
    let reg = bench_registry(n_tasks, trace_iters);
    let trace_repeats = repeats + 2;
    // Interleave the two variants so slow drift (thermal, background
    // load) hits both equally; keep the per-variant minimum as usual.
    let mut untraced_wall = f64::INFINITY;
    let mut traced_wall = f64::INFINITY;
    let mut measured = None;
    for _ in 0..trace_repeats {
        let (w, out) =
            time_min(1, || Executor::new(jobs).with_tracing(false).run_all_report(&reg, 1));
        untraced_wall = untraced_wall.min(w);
        let untraced_recs = out.0;
        let (w, out) = time_min(1, || Executor::new(jobs).run_all_report(&reg, 1));
        traced_wall = traced_wall.min(w);
        measured = Some((untraced_recs, out.0, out.1));
    }
    let (untraced_recs, traced_recs, traced_report) = measured.expect("repeats >= 1");
    let trace_identical = untraced_recs
        .iter()
        .zip(traced_recs.iter())
        .all(|((ia, ra), (ib, rb))| ia == ib && ra.fingerprint() == rb.fingerprint());
    assert!(trace_identical, "tracing changed batch results — determinism violation");
    assert!(traced_report.counters.events > 0, "traced batch recorded no events");
    let trace_overhead_pct = (traced_wall - untraced_wall) / untraced_wall * 100.0;
    eprintln!(
        "  trace off     : {untraced_wall:.4}s\n  trace on      : {traced_wall:.4}s  \
         ({} event(s))\n  overhead      : {trace_overhead_pct:.2}%",
        traced_report.counters.events
    );

    let json = format!(
        "{{\n  \"bench\": \"executor/skewed\",\n  \"n_tasks\": {n_tasks},\n  \
         \"scale_us\": {scale_us},\n  \"jobs\": {jobs},\n  \"repeats\": {repeats},\n  \
         \"quick\": {quick},\n  \"static_wall_s\": {static_wall:.6},\n  \
         \"dynamic_wall_s\": {dynamic_wall:.6},\n  \"speedup\": {speedup:.4},\n  \
         \"identical_outputs\": {identical},\n  \
         \"untraced_wall_s\": {untraced_wall:.6},\n  \
         \"traced_wall_s\": {traced_wall:.6},\n  \
         \"trace_overhead_pct\": {trace_overhead_pct:.4}\n}}\n",
        quick = cfg.quick,
    );
    if let Err(e) = std::fs::write(&cfg.out, &json) {
        eprintln!("exec_bench: cannot write {}: {e}", cfg.out);
        std::process::exit(2);
    }
    eprintln!("  wrote {}", cfg.out);

    if cfg.enforce && speedup < SPEEDUP_FLOOR {
        eprintln!(
            "exec_bench: FAIL — dynamic speedup {speedup:.2}x is under the {SPEEDUP_FLOOR}x floor"
        );
        std::process::exit(1);
    }
    if cfg.enforce && trace_overhead_pct > TRACE_OVERHEAD_CEILING_PCT {
        eprintln!(
            "exec_bench: FAIL — trace overhead {trace_overhead_pct:.2}% is over the \
             {TRACE_OVERHEAD_CEILING_PCT}% ceiling"
        );
        std::process::exit(1);
    }
}
