//! `math_bench` — the closed autotune loop's GFLOP/s regression gate.
//!
//! The registry benches price whole experiments; this binary isolates the
//! math kernels the autotuner now schedules (ISSUE 8). For every probed
//! GEMM shape it measures four variants of the same multiplication:
//!
//! * **ijk** — the textbook triple loop, the untransformed nest every
//!   autotuning paper calls "naive";
//! * **axpy** — `Matrix::matmul_naive`, the repo's reference kernel
//!   (already loop-reordered, so a much stronger baseline);
//! * **tuned** — the schedule-dispatched blocked kernel, using the plan
//!   the in-bench genetic tune just installed for the shape's class;
//! * **tuned ∥** — the same plan band-parallelized at `--jobs` workers.
//!
//! All four are asserted **bitwise identical** before any timing is
//! trusted — the ascending-k reduction contract means blocking, packing
//! and banding may never change a single output bit. The conv2d packed
//! im2col path is priced against its naive six-loop reference the same
//! way. Results land in a machine-readable `BENCH_math.json` so the perf
//! trajectory is diffable across PRs.
//!
//! ```text
//! math_bench [--quick] [--enforce] [--jobs N] [--seed S] [--out PATH]
//! ```
//!
//! `--quick` shrinks shapes and the GA budget for CI smoke runs;
//! `--enforce` exits nonzero unless the tuned kernel clears the floors
//! below on the large square class.

#![forbid(unsafe_code)]

use std::time::Instant;
use treu_autotune::tuner::GaParams;
use treu_autotune::ScheduleBook;
use treu_math::gemm::{self, ShapeClass};
use treu_math::parallel::default_threads;
use treu_math::rng::{derive_seed, SplitMix64};
use treu_math::Matrix;
use treu_nn::conv2d::Conv2d;

/// Minimum parallel-tuned over ijk-naive speedup `--enforce` accepts on
/// the large square class.
const TUNED_SPEEDUP_FLOOR: f64 = 2.0;

/// Minimum tuned-sequential over axpy-reference ratio `--enforce`
/// accepts on every shape — the tuner must never regress the kernel it
/// replaced (0.9 rather than 1.0 absorbs timer noise on tiny shapes).
const NO_REGRESSION_FLOOR: f64 = 0.9;

struct Config {
    quick: bool,
    enforce: bool,
    jobs: usize,
    seed: u64,
    out: String,
}

fn parse_args() -> Result<Config, String> {
    let mut cfg = Config {
        quick: false,
        enforce: false,
        jobs: default_threads().max(4),
        seed: 2023,
        out: "BENCH_math.json".to_string(),
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => cfg.quick = true,
            "--enforce" => cfg.enforce = true,
            "--jobs" => {
                i += 1;
                let v = args.get(i).ok_or("--jobs requires a value")?;
                cfg.jobs = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&j| j >= 1)
                    .ok_or_else(|| format!("invalid --jobs value '{v}'"))?;
            }
            "--seed" => {
                i += 1;
                let v = args.get(i).ok_or("--seed requires a value")?;
                cfg.seed = v.parse::<u64>().map_err(|_| format!("invalid --seed value '{v}'"))?;
            }
            "--out" => {
                i += 1;
                cfg.out = args.get(i).ok_or("--out requires a value")?.clone();
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
        i += 1;
    }
    Ok(cfg)
}

/// Times `f` `repeats` times and keeps the minimum — the standard
/// estimator for the noise-free cost — returning the last output so the
/// caller can bitwise-compare results across kernel variants.
fn time_min<T>(repeats: usize, f: impl Fn() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..repeats {
        // treu-lint: allow(wall-clock, reason = "benchmark harness measures wall time by definition")
        let t0 = Instant::now();
        let out = f();
        best = best.min(t0.elapsed().as_secs_f64());
        last = Some(out);
    }
    (best, last.expect("repeats >= 1"))
}

/// The textbook ijk triple loop — strided B access, no blocking, no
/// packing. Each output element is the same ascending-k chain the tuned
/// kernels must reproduce, so it doubles as an independent bitwise
/// witness for `matmul_naive`.
fn matmul_ijk(a: &Matrix, b: &Matrix) -> Matrix {
    let m = a.rows();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        for j in 0..n {
            let mut acc = 0.0;
            for (kk, &av) in arow.iter().enumerate() {
                acc += av * b[(kk, j)];
            }
            out[(i, j)] = acc;
        }
    }
    out
}

fn assert_bitwise(want: &Matrix, got: &Matrix, what: &str) {
    assert_eq!(want.shape(), got.shape(), "{what}: shape changed");
    for (i, (w, g)) in want.as_slice().iter().zip(got.as_slice()).enumerate() {
        assert!(
            w.to_bits() == g.to_bits(),
            "{what}: element {i} diverged ({w:e} vs {g:e}) — determinism violation"
        );
    }
}

struct ShapeResult {
    shape: (usize, usize, usize),
    class: String,
    ijk_gflops: f64,
    axpy_gflops: f64,
    tuned_gflops: f64,
    parallel_gflops: f64,
}

fn gflops(flops: f64, secs: f64) -> f64 {
    if secs > 0.0 {
        flops / secs / 1e9
    } else {
        0.0
    }
}

fn bench_shape(
    (m, k, n): (usize, usize, usize),
    jobs: usize,
    seed: u64,
    repeats: usize,
) -> ShapeResult {
    let mut rng = SplitMix64::new(derive_seed(seed, "math_bench.gemm"));
    let a = Matrix::from_fn(m, k, |_, _| rng.next_gaussian());
    let b = Matrix::from_fn(k, n, |_, _| rng.next_gaussian());
    let class = ShapeClass::of(m, k, n);
    // The closed loop: dispatch through the same plan table `Matrix::
    // matmul` consults, seeded by the in-bench tune that just ran.
    let plan = gemm::plan_for(class).clamped(m, k, n);

    let (axpy_secs, reference) = time_min(repeats, || a.matmul_naive(&b));
    let (ijk_secs, ijk_out) = time_min(repeats, || matmul_ijk(&a, &b));
    let (tuned_secs, tuned_out) = time_min(repeats, || a.matmul_with_plan(&b, &plan.sequential()));
    let par_plan = plan.with_threads(jobs);
    let (par_secs, par_out) = time_min(repeats, || a.matmul_with_plan(&b, &par_plan));

    assert_bitwise(&reference, &ijk_out, "ijk reference");
    assert_bitwise(&reference, &tuned_out, "tuned sequential");
    assert_bitwise(&reference, &par_out, "tuned parallel");

    let flops = 2.0 * m as f64 * k as f64 * n as f64;
    ShapeResult {
        shape: (m, k, n),
        class: class.key(),
        ijk_gflops: gflops(flops, ijk_secs),
        axpy_gflops: gflops(flops, axpy_secs),
        tuned_gflops: gflops(flops, tuned_secs),
        parallel_gflops: gflops(flops, par_secs),
    }
}

struct ConvResult {
    label: String,
    naive_gflops: f64,
    packed_gflops: f64,
    parallel_gflops: f64,
}

fn bench_conv(quick: bool, jobs: usize, seed: u64, repeats: usize) -> ConvResult {
    let (batch, cin, cout, kernel, h, w) =
        if quick { (8, 3, 8, 3, 32, 32) } else { (16, 3, 16, 3, 48, 48) };
    let conv = Conv2d::new(cin, cout, kernel, h, w, derive_seed(seed, "math_bench.conv"));
    let mut rng = SplitMix64::new(derive_seed(seed, "math_bench.conv.x"));
    let x = Matrix::from_fn(batch, cin * h * w, |_, _| rng.next_gaussian());

    let (naive_secs, reference) = time_min(repeats, || conv.forward_naive(&x));
    let (packed_secs, packed_out) = time_min(repeats, || conv.forward_ref(&x, 1));
    let (par_secs, par_out) = time_min(repeats, || conv.forward_ref(&x, jobs));
    assert_bitwise(&reference, &packed_out, "conv packed");
    assert_bitwise(&reference, &par_out, "conv parallel");

    let (oh, ow) = (h - kernel + 1, w - kernel + 1);
    let flops = batch as f64 * (cout * oh * ow) as f64 * 2.0 * (cin * kernel * kernel) as f64;
    ConvResult {
        label: format!("{batch}x{cin}x{h}x{w} k{kernel} -> {cout}ch"),
        naive_gflops: gflops(flops, naive_secs),
        packed_gflops: gflops(flops, packed_secs),
        parallel_gflops: gflops(flops, par_secs),
    }
}

fn main() {
    let cfg = match parse_args() {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("math_bench: {msg}");
            eprintln!("usage: math_bench [--quick] [--enforce] [--jobs N] [--seed S] [--out PATH]");
            std::process::exit(2);
        }
    };
    let repeats = if cfg.quick { 3 } else { 5 };
    // The large square shape carries the enforcement gate; it leads the
    // list so its class is tuned first.
    let shapes: Vec<(usize, usize, usize)> = if cfg.quick {
        vec![(256, 256, 256), (96, 96, 96)]
    } else {
        vec![(320, 320, 320), (96, 96, 96), (128, 512, 128), (512, 64, 512)]
    };
    let enforce_shape = shapes[0];
    let jobs = cfg.jobs;
    eprintln!(
        "math_bench: {} shape(s), {jobs} job(s), seed {}, min of {repeats}",
        shapes.len(),
        cfg.seed
    );

    // Close the loop: a genetic tune over the real kernels picks the
    // schedule for every probed class, each winner is re-verified bitwise
    // against the naive kernel inside `tune_matmul`, and `install` makes
    // the plan table dispatch to it — the exact path `treu tune` persists
    // through the run cache.
    let ga = if cfg.quick {
        GaParams { population: 8, generations: 5, ..GaParams::default() }
    } else {
        GaParams { population: 12, generations: 8, ..GaParams::default() }
    };
    let mut book = ScheduleBook::new();
    for &shape in &shapes {
        let e = book.tune_matmul(shape, ga, cfg.seed, repeats.min(2));
        eprintln!(
            "  tuned {:>3}x{:>3}x{:>3} (class {}): {:.2} -> {:.2} GFLOP/s",
            shape.0,
            shape.1,
            shape.2,
            e.class.key(),
            e.naive_gflops,
            e.tuned_gflops
        );
    }
    book.measure_crossover(jobs, cfg.seed, repeats.min(2));
    book.install();
    let crossover = gemm::parallel_crossover();

    let results: Vec<ShapeResult> =
        shapes.iter().map(|&s| bench_shape(s, jobs, cfg.seed, repeats)).collect();
    eprintln!("  shape              class    ijk   axpy  tuned  tuned∥  (GFLOP/s)");
    for r in &results {
        let (m, k, n) = r.shape;
        eprintln!(
            "  {:<18} {:<5} {:>6.2} {:>6.2} {:>6.2} {:>7.2}",
            format!("{m}x{k}x{n}"),
            r.class,
            r.ijk_gflops,
            r.axpy_gflops,
            r.tuned_gflops,
            r.parallel_gflops
        );
    }
    let conv = bench_conv(cfg.quick, jobs, cfg.seed, repeats);
    eprintln!(
        "  conv {:<24} naive {:.2}  packed {:.2}  packed∥ {:.2}  (GFLOP/s)",
        conv.label, conv.naive_gflops, conv.packed_gflops, conv.parallel_gflops
    );
    eprintln!("  parallel crossover : {crossover} output elements");

    let mut shape_json = String::new();
    for (i, r) in results.iter().enumerate() {
        let (m, k, n) = r.shape;
        shape_json.push_str(&format!(
            "    {{\"shape\": \"{m}x{k}x{n}\", \"class\": \"{}\", \"ijk_gflops\": {:.4}, \
             \"axpy_gflops\": {:.4}, \"tuned_gflops\": {:.4}, \"parallel_gflops\": {:.4}}}{}\n",
            r.class,
            r.ijk_gflops,
            r.axpy_gflops,
            r.tuned_gflops,
            r.parallel_gflops,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"math/gemm+conv\",\n  \"jobs\": {jobs},\n  \"seed\": {},\n  \
         \"repeats\": {repeats},\n  \"quick\": {},\n  \"crossover_elems\": {crossover},\n  \
         \"shapes\": [\n{shape_json}  ],\n  \"conv\": {{\"shape\": \"{}\", \
         \"naive_gflops\": {:.4}, \"packed_gflops\": {:.4}, \"parallel_gflops\": {:.4}}}\n}}\n",
        cfg.seed,
        cfg.quick,
        conv.label,
        conv.naive_gflops,
        conv.packed_gflops,
        conv.parallel_gflops,
    );
    if let Err(e) = std::fs::write(&cfg.out, &json) {
        eprintln!("math_bench: cannot write {}: {e}", cfg.out);
        std::process::exit(2);
    }
    eprintln!("  wrote {}", cfg.out);

    if cfg.enforce {
        let gate = results.iter().find(|r| r.shape == enforce_shape).expect("enforce shape ran");
        let speedup = gate.parallel_gflops / gate.ijk_gflops;
        if speedup < TUNED_SPEEDUP_FLOOR {
            let (m, k, n) = gate.shape;
            eprintln!(
                "math_bench: FAIL — tuned∥ {m}x{k}x{n} is {speedup:.2}x the ijk naive, \
                 under the {TUNED_SPEEDUP_FLOOR}x floor"
            );
            std::process::exit(1);
        }
        for r in &results {
            let ratio = r.tuned_gflops / r.axpy_gflops;
            if ratio < NO_REGRESSION_FLOOR {
                let (m, k, n) = r.shape;
                eprintln!(
                    "math_bench: FAIL — tuned {m}x{k}x{n} is {ratio:.2}x the axpy reference, \
                     under the {NO_REGRESSION_FLOOR}x no-regression floor"
                );
                std::process::exit(1);
            }
        }
        if conv.packed_gflops < conv.naive_gflops * NO_REGRESSION_FLOOR {
            eprintln!(
                "math_bench: FAIL — packed conv ({:.2} GFLOP/s) regressed past the naive \
                 loop ({:.2} GFLOP/s)",
                conv.packed_gflops, conv.naive_gflops
            );
            std::process::exit(1);
        }
        eprintln!(
            "math_bench: PASS — tuned∥ {speedup:.2}x >= {TUNED_SPEEDUP_FLOOR}x on class {}, \
             no shape regressed",
            gate.class
        );
    }
}
