//! The multi-task model: shared trunk, segmentation head, counting head.

use crate::synth::{mask_iou, PatchDataset, PATCH_PIXELS};
use treu_math::rng::{derive_seed, SplitMix64};
use treu_math::Matrix;
use treu_nn::dense::Dense;
use treu_nn::layer::{Layer, Relu, Sigmoid};
use treu_nn::optimizer::{Adam, Optimizer};

/// Relative weights of the two task losses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskWeights {
    /// Segmentation (per-pixel MSE against the mask).
    pub seg: f64,
    /// Counting (MSE against the cell count, scaled).
    pub count: f64,
}

impl Default for TaskWeights {
    fn default() -> Self {
        Self { seg: 1.0, count: 0.05 }
    }
}

/// Model hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelConfig {
    /// Trunk hidden width.
    pub hidden: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch: usize,
    /// Task weights.
    pub weights: TaskWeights,
}

impl Default for ModelConfig {
    fn default() -> Self {
        Self { hidden: 48, lr: 0.005, epochs: 40, batch: 16, weights: TaskWeights::default() }
    }
}

/// Shared-trunk multi-task network.
pub struct MultiTaskModel {
    trunk: Dense,
    trunk_act: Relu,
    seg_head: Dense,
    seg_act: Sigmoid,
    count_head: Dense,
    opt: Adam,
    cfg: ModelConfig,
}

/// Validation metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistoMetrics {
    /// Mean IoU of predicted tissue masks.
    pub seg_iou: f64,
    /// Mean absolute error of cell counts.
    pub count_mae: f64,
}

impl MultiTaskModel {
    /// Builds the model.
    pub fn new(cfg: ModelConfig, seed: u64) -> Self {
        Self {
            trunk: Dense::new(PATCH_PIXELS, cfg.hidden, derive_seed(seed, "trunk")),
            trunk_act: Relu::new(),
            seg_head: Dense::new(cfg.hidden, PATCH_PIXELS, derive_seed(seed, "seg")),
            seg_act: Sigmoid::new(),
            count_head: Dense::new(cfg.hidden, 1, derive_seed(seed, "count")),
            opt: Adam::new(cfg.lr),
            cfg,
        }
    }

    /// Copies another model's trunk weights (the fine-tuning transplant).
    pub fn load_trunk_from(&mut self, other: &MultiTaskModel) {
        *self.trunk.weights_mut() = other.trunk.weights().clone();
    }

    /// Forward pass on a batch: returns `(seg probs, counts)`.
    fn forward(&mut self, x: &Matrix, train: bool) -> (Matrix, Matrix) {
        let h = self.trunk.forward(x, train);
        let h = self.trunk_act.forward(&h, train);
        let seg = self.seg_act.forward(&self.seg_head.forward(&h, train), train);
        let count = self.count_head.forward(&h, train);
        (seg, count)
    }

    /// One combined-loss training step on a batch; returns the loss.
    fn step(
        &mut self,
        x: &Matrix,
        masks: &Matrix,
        counts: &[f64],
        train_seg: bool,
        train_count: bool,
    ) -> f64 {
        let n = x.rows().max(1) as f64;
        let (seg, count) = self.forward(x, true);
        let w = self.cfg.weights;
        // Per-task gradients.
        let mut seg_grad = Matrix::zeros(seg.rows(), seg.cols());
        let mut loss = 0.0;
        if train_seg {
            for i in 0..seg.as_slice().len() {
                let d = seg.as_slice()[i] - masks.as_slice()[i];
                loss += w.seg * d * d / (n * PATCH_PIXELS as f64);
                seg_grad.as_mut_slice()[i] = 2.0 * w.seg * d / (n * PATCH_PIXELS as f64);
            }
        }
        let mut count_grad = Matrix::zeros(count.rows(), 1);
        if train_count {
            for r in 0..count.rows() {
                let d = count[(r, 0)] - counts[r];
                loss += w.count * d * d / n;
                count_grad[(r, 0)] = 2.0 * w.count * d / n;
            }
        }
        // Backward through both heads into the shared trunk.
        let g_seg = self.seg_head.backward(&self.seg_act.backward(&seg_grad));
        let g_count = self.count_head.backward(&count_grad);
        let g_h = g_seg.add(&g_count);
        let g_h = self.trunk_act.backward(&g_h);
        self.trunk.backward(&g_h);
        let mut opt = std::mem::replace(&mut self.opt, Adam::new(0.0));
        opt.step(self);
        self.opt = opt;
        self.zero_grads();
        loss
    }

    /// Trains on a dataset. `train_seg`/`train_count` select the active
    /// tasks (both = multi-task, one = single-task baseline/pretraining).
    pub fn train(&mut self, data: &PatchDataset, train_seg: bool, train_count: bool, seed: u64) {
        assert!(train_seg || train_count, "no task selected");
        let mut rng = SplitMix64::new(derive_seed(seed, "order"));
        for _ in 0..self.cfg.epochs {
            let order = treu_math::rng::permutation(&mut rng, data.len());
            for chunk in order.chunks(self.cfg.batch) {
                let mut bx = Matrix::zeros(chunk.len(), PATCH_PIXELS);
                let mut bm = Matrix::zeros(chunk.len(), PATCH_PIXELS);
                let mut bc = Vec::with_capacity(chunk.len());
                for (i, &idx) in chunk.iter().enumerate() {
                    bx.row_mut(i).copy_from_slice(data.images.row(idx));
                    bm.row_mut(i).copy_from_slice(data.masks.row(idx));
                    bc.push(data.counts[idx]);
                }
                self.step(&bx, &bm, &bc, train_seg, train_count);
            }
        }
    }

    /// Evaluates IoU and count MAE on a dataset.
    pub fn evaluate(&mut self, data: &PatchDataset) -> HistoMetrics {
        let (seg, count) = self.forward(&data.images, false);
        let mut iou = 0.0;
        let mut mae = 0.0;
        for i in 0..data.len() {
            iou += mask_iou(seg.row(i), data.masks.row(i));
            mae += (count[(i, 0)] - data.counts[i]).abs();
        }
        let n = data.len().max(1) as f64;
        HistoMetrics { seg_iou: iou / n, count_mae: mae / n }
    }
}

impl Layer for MultiTaskModel {
    fn forward(&mut self, _input: &Matrix, _train: bool) -> Matrix {
        panic!("MultiTaskModel: use train/evaluate");
    }

    fn backward(&mut self, _grad: &Matrix) -> Matrix {
        panic!("MultiTaskModel: use train/evaluate");
    }

    fn for_each_param(&mut self, f: &mut dyn FnMut(&mut [f64], &mut [f64])) {
        self.trunk.for_each_param(f);
        self.seg_head.for_each_param(f);
        self.count_head.for_each_param(f);
    }

    fn zero_grads(&mut self) {
        self.trunk.zero_grads();
        self.seg_head.zero_grads();
        self.count_head.zero_grads();
    }

    fn param_count(&self) -> usize {
        self.trunk.param_count() + self.seg_head.param_count() + self.count_head.param_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(seed: u64, n: usize) -> PatchDataset {
        let mut rng = SplitMix64::new(seed);
        PatchDataset::generate(n, &mut rng)
    }

    #[test]
    fn multitask_learns_both_tasks() {
        let train = data(1, 120);
        let val = data(2, 40);
        let mut m = MultiTaskModel::new(ModelConfig::default(), 3);
        let before = m.evaluate(&val);
        m.train(&train, true, true, 4);
        let after = m.evaluate(&val);
        assert!(after.seg_iou > before.seg_iou, "iou {} -> {}", before.seg_iou, after.seg_iou);
        assert!(after.seg_iou > 0.5, "final iou {}", after.seg_iou);
        assert!(
            after.count_mae < before.count_mae,
            "mae {} -> {}",
            before.count_mae,
            after.count_mae
        );
        assert!(after.count_mae < 2.0, "final mae {}", after.count_mae);
    }

    #[test]
    fn single_task_training_ignores_other_head() {
        let train = data(5, 60);
        let val = data(6, 30);
        let mut m = MultiTaskModel::new(ModelConfig { epochs: 20, ..ModelConfig::default() }, 7);
        m.train(&train, true, false, 8);
        let q = m.evaluate(&val);
        assert!(q.seg_iou > 0.45, "seg-only iou {}", q.seg_iou);
        // The count head was never trained: MAE stays large.
        assert!(q.count_mae > 1.5, "untrained count mae {}", q.count_mae);
    }

    #[test]
    #[should_panic(expected = "no task selected")]
    fn training_nothing_panics() {
        let train = data(9, 4);
        MultiTaskModel::new(ModelConfig::default(), 0).train(&train, false, false, 1);
    }

    #[test]
    fn trunk_transplant_copies_weights() {
        let a = MultiTaskModel::new(ModelConfig::default(), 11);
        let mut b = MultiTaskModel::new(ModelConfig::default(), 12);
        assert_ne!(a.trunk.weights(), b.trunk.weights());
        b.load_trunk_from(&a);
        assert_eq!(a.trunk.weights(), b.trunk.weights());
    }

    #[test]
    fn training_is_deterministic() {
        let train = data(13, 30);
        let val = data(14, 10);
        let run = || {
            let mut m =
                MultiTaskModel::new(ModelConfig { epochs: 5, ..ModelConfig::default() }, 15);
            m.train(&train, true, true, 16);
            let q = m.evaluate(&val);
            (q.seg_iou.to_bits(), q.count_mae.to_bits())
        };
        assert_eq!(run(), run());
    }
}
