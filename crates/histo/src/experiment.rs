//! Harnessed experiment E2.7: the four §2.7 studies.
//!
//! (a) device timing model, (b) hyper-parameter search over trunk width
//! and learning rate, (c) augmentation impact on a small training set,
//! (d) fine-tuning a pretrained trunk vs training from scratch — plus the
//! headline multi-task vs single-task comparison the section motivates.

use crate::augment::augment_dataset;
use crate::device::{flops_per_sample, Device};
use crate::model::{ModelConfig, MultiTaskModel};
use crate::synth::PatchDataset;
use treu_core::experiment::{Experiment, Params, RunContext};
use treu_core::ExperimentRegistry;
use treu_math::rng::{derive_seed, SplitMix64};
use treu_nn::layer::Layer;

/// E2.7: all four studies in one harnessed run.
pub struct HistoExperiment;

impl Experiment for HistoExperiment {
    fn name(&self) -> &str {
        "histo/multitask"
    }

    fn run(&self, ctx: &mut RunContext) {
        let n_train = ctx.int("n_train", 120) as usize;
        let n_val = ctx.int("n_val", 40) as usize;
        let epochs = ctx.int("epochs", 40) as usize;
        let mut rng = SplitMix64::new(derive_seed(ctx.seed(), "data"));
        let train = PatchDataset::generate(n_train, &mut rng);
        let val = PatchDataset::generate(n_val, &mut rng);
        let base = ModelConfig { epochs, ..ModelConfig::default() };

        // Headline: multi-task vs single-task counting.
        let mut multi = MultiTaskModel::new(base, derive_seed(ctx.seed(), "multi"));
        multi.train(&train, true, true, derive_seed(ctx.seed(), "multi.t"));
        let mq = multi.evaluate(&val);
        ctx.record("multitask_seg_iou", mq.seg_iou);
        ctx.record("multitask_count_mae", mq.count_mae);

        let mut single = MultiTaskModel::new(base, derive_seed(ctx.seed(), "single"));
        single.train(&train, false, true, derive_seed(ctx.seed(), "single.t"));
        ctx.record("singletask_count_mae", single.evaluate(&val).count_mae);

        // (a) Device model: epoch time CPU vs GPU for this model.
        let fps = flops_per_sample(Layer::param_count(&multi));
        let cpu = Device::cpu().epoch_seconds(fps, n_train, base.batch);
        let gpu = Device::gpu().epoch_seconds(fps, n_train, base.batch);
        ctx.record("cpu_epoch_seconds", cpu);
        ctx.record("gpu_epoch_seconds", gpu);
        ctx.record("gpu_speedup", cpu / gpu);

        // (b) Hyper-parameter search: small grid over width and lr.
        let mut best = (f64::INFINITY, 0usize, 0.0f64);
        for &hidden in &[16usize, 48, 96] {
            for &lr in &[0.001, 0.005, 0.02] {
                let cfg = ModelConfig { hidden, lr, epochs: epochs / 2, ..ModelConfig::default() };
                let mut m =
                    MultiTaskModel::new(cfg, derive_seed(ctx.seed(), &format!("hp{hidden}x{lr}")));
                m.train(&train, true, true, derive_seed(ctx.seed(), &format!("hp{hidden}x{lr}.t")));
                let q = m.evaluate(&val);
                let score = (1.0 - q.seg_iou) + 0.2 * q.count_mae;
                ctx.record(&format!("hp_h{hidden:03}_lr{}", (lr * 1000.0) as i64), score);
                if score < best.0 {
                    best = (score, hidden, lr);
                }
            }
        }
        ctx.record("hp_best_hidden", best.1 as f64);
        ctx.record("hp_best_lr", best.2);

        // (c) Augmentation on a small training subset.
        let small = train.take(n_train / 6);
        let mut plain = MultiTaskModel::new(base, derive_seed(ctx.seed(), "aug.plain"));
        plain.train(&small, true, true, derive_seed(ctx.seed(), "aug.plain.t"));
        let pq = plain.evaluate(&val);
        let mut arng = SplitMix64::new(derive_seed(ctx.seed(), "aug.rng"));
        let augmented = augment_dataset(&small, 5, &mut arng);
        let mut aug = MultiTaskModel::new(base, derive_seed(ctx.seed(), "aug.aug"));
        aug.train(&augmented, true, true, derive_seed(ctx.seed(), "aug.aug.t"));
        let aq = aug.evaluate(&val);
        ctx.record("small_plain_seg_iou", pq.seg_iou);
        ctx.record("small_augmented_seg_iou", aq.seg_iou);

        // (d) Fine-tuning: pretrain a trunk on plentiful seg-only data,
        // transplant, fine-tune briefly on the small set; compare to
        // scratch at the same (short) budget.
        let mut pre_rng = SplitMix64::new(derive_seed(ctx.seed(), "pretrain.data"));
        let pretrain_data = PatchDataset::generate(2 * n_train, &mut pre_rng);
        let mut pretrained = MultiTaskModel::new(base, derive_seed(ctx.seed(), "pre"));
        pretrained.train(&pretrain_data, true, false, derive_seed(ctx.seed(), "pre.t"));
        let short = ModelConfig { epochs: epochs / 4, ..base };
        let mut finetuned = MultiTaskModel::new(short, derive_seed(ctx.seed(), "ft"));
        finetuned.load_trunk_from(&pretrained);
        finetuned.train(&small, true, true, derive_seed(ctx.seed(), "ft.t"));
        let fq = finetuned.evaluate(&val);
        let mut scratch = MultiTaskModel::new(short, derive_seed(ctx.seed(), "scratch"));
        scratch.train(&small, true, true, derive_seed(ctx.seed(), "scratch.t"));
        let sq = scratch.evaluate(&val);
        ctx.record("finetune_seg_iou", fq.seg_iou);
        ctx.record("scratch_seg_iou", sq.seg_iou);
    }
}

/// Registers E2.7.
pub fn register(reg: &mut ExperimentRegistry) {
    reg.register(
        "E2.7",
        "Section 2.7",
        "multi-task histopathology: device model, HP search, augmentation, fine-tuning",
        Params::new().with_int("n_train", 120).with_int("epochs", 40),
        Box::new(HistoExperiment),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use treu_core::experiment::{assert_deterministic, run_once};

    fn record() -> &'static treu_core::RunRecord {
        // The full experiment is expensive; run it once and share across
        // the assertions below.
        static REC: std::sync::OnceLock<treu_core::RunRecord> = std::sync::OnceLock::new();
        REC.get_or_init(|| run_once(&HistoExperiment, 2023, Params::new()))
    }

    #[test]
    fn multitask_counting_beats_or_matches_single_task() {
        let rec = record();
        let multi = rec.metric("multitask_count_mae").unwrap();
        let single = rec.metric("singletask_count_mae").unwrap();
        assert!(
            multi <= single * 1.15,
            "multi-task MAE {multi} should be competitive with single-task {single}"
        );
        assert!(rec.metric("multitask_seg_iou").unwrap() > 0.5);
    }

    #[test]
    fn gpu_model_shows_speedup_at_this_batch() {
        let rec = record();
        assert!(rec.metric("gpu_speedup").unwrap() > 1.0);
        assert!(
            rec.metric("cpu_epoch_seconds").unwrap() > rec.metric("gpu_epoch_seconds").unwrap()
        );
    }

    #[test]
    fn augmentation_helps_small_data() {
        let rec = record();
        let plain = rec.metric("small_plain_seg_iou").unwrap();
        let aug = rec.metric("small_augmented_seg_iou").unwrap();
        assert!(aug > plain - 0.02, "augmented {aug} vs plain {plain}");
    }

    #[test]
    fn finetuning_beats_scratch_at_short_budget() {
        let rec = record();
        let ft = rec.metric("finetune_seg_iou").unwrap();
        let sc = rec.metric("scratch_seg_iou").unwrap();
        assert!(ft > sc, "fine-tuned {ft} must beat scratch {sc} at a quarter budget");
    }

    #[test]
    fn hp_search_records_grid_and_best() {
        let rec = record();
        assert!(rec.metric("hp_h048_lr5").is_some());
        assert!(rec.metric("hp_best_hidden").is_some());
        let lr = rec.metric("hp_best_lr").unwrap();
        assert!([0.001, 0.005, 0.02].contains(&lr));
    }

    #[test]
    fn experiment_is_deterministic() {
        let p = Params::new().with_int("n_train", 24).with_int("n_val", 8).with_int("epochs", 4);
        assert_deterministic(&HistoExperiment, 5, &p);
    }

    #[test]
    fn registry_id() {
        let mut reg = ExperimentRegistry::new();
        register(&mut reg);
        assert!(reg.get("E2.7").is_some());
    }
}
