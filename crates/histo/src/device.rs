//! CPU-vs-GPU throughput model for study (a).
//!
//! The students' study (a) compared "training on a CPU versus a GPU". Our
//! training runs entirely on CPU, so the device comparison is an explicit
//! analytic model (DESIGN.md substitution): per-step time is
//! `flops / throughput + launch_overhead`, with parameters representative
//! of a laptop core and a single CHPC-class GPU. The model exposes the real
//! phenomenon the students hit — GPUs win only when batches are large
//! enough to amortize launch overhead.

/// A device for throughput modelling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Device {
    /// Sustained FLOP/s for this workload.
    pub throughput: f64,
    /// Fixed overhead per training step (kernel launches etc.), seconds.
    pub step_overhead: f64,
    /// Human name.
    pub name: &'static str,
}

impl Device {
    /// A laptop CPU core: 20 GFLOP/s, negligible step overhead.
    pub fn cpu() -> Self {
        Self { throughput: 20e9, step_overhead: 2e-6, name: "cpu" }
    }

    /// A data-center GPU: 10 TFLOP/s sustained, 50 µs of launch overhead
    /// per step.
    pub fn gpu() -> Self {
        Self { throughput: 10e12, step_overhead: 50e-6, name: "gpu" }
    }

    /// Modelled seconds for one training step of `flops_per_sample *
    /// batch` work.
    pub fn step_seconds(&self, flops_per_sample: f64, batch: usize) -> f64 {
        flops_per_sample * batch as f64 / self.throughput + self.step_overhead
    }

    /// Modelled seconds for a full epoch of `n` samples at `batch`.
    pub fn epoch_seconds(&self, flops_per_sample: f64, n: usize, batch: usize) -> f64 {
        let steps = n.div_ceil(batch.max(1));
        steps as f64 * self.step_seconds(flops_per_sample, batch.min(n))
    }

    /// Speedup of `self` over `other` on the same epoch.
    pub fn speedup_over(
        &self,
        other: &Device,
        flops_per_sample: f64,
        n: usize,
        batch: usize,
    ) -> f64 {
        other.epoch_seconds(flops_per_sample, n, batch)
            / self.epoch_seconds(flops_per_sample, n, batch)
    }
}

/// Approximate FLOPs per sample for a dense trunk model with the given
/// parameter count (forward + backward ≈ 6 × params; the standard rule of
/// thumb).
pub fn flops_per_sample(param_count: usize) -> f64 {
    6.0 * param_count as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_wins_at_large_batch() {
        let f = flops_per_sample(100_000);
        let s = Device::gpu().speedup_over(&Device::cpu(), f, 10_000, 256);
        assert!(s > 20.0, "large-batch GPU speedup {s}");
    }

    #[test]
    fn cpu_competitive_at_tiny_batches() {
        // Tiny model, batch 1: launch overhead eats the GPU's advantage.
        let f = flops_per_sample(1_000);
        let s = Device::gpu().speedup_over(&Device::cpu(), f, 1_000, 1);
        assert!(s < 2.0, "tiny-batch GPU speedup {s} should collapse");
    }

    #[test]
    fn epoch_time_scales_with_samples() {
        let f = flops_per_sample(10_000);
        let d = Device::cpu();
        let t1 = d.epoch_seconds(f, 100, 10);
        let t2 = d.epoch_seconds(f, 200, 10);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn step_seconds_monotone_in_batch() {
        let f = flops_per_sample(50_000);
        let d = Device::gpu();
        assert!(d.step_seconds(f, 64) > d.step_seconds(f, 1));
    }
}
