//! Dihedral data augmentation for square patches.
//!
//! The eight symmetries of the square (4 rotations × optional mirror),
//! applied consistently to image and mask. Cell counts are invariant.

use crate::synth::{PatchDataset, PATCH_SIDE};
use treu_math::rng::SplitMix64;
use treu_math::Matrix;

/// One of the eight dihedral transforms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dihedral {
    /// Quarter-turns (0–3).
    pub rot: u8,
    /// Mirror horizontally first.
    pub flip: bool,
}

impl Dihedral {
    /// The identity transform.
    pub fn identity() -> Self {
        Self { rot: 0, flip: false }
    }

    /// Draws a uniformly random transform.
    pub fn random(rng: &mut SplitMix64) -> Self {
        Self { rot: (rng.next_bounded(4)) as u8, flip: rng.next_f64() < 0.5 }
    }

    /// Applies the transform to a flattened square image.
    pub fn apply(self, img: &[f64]) -> Vec<f64> {
        assert_eq!(img.len(), PATCH_SIDE * PATCH_SIDE, "augment: not a patch");
        let n = PATCH_SIDE;
        let mut out = vec![0.0; img.len()];
        for y in 0..n {
            for x in 0..n {
                let (mut sx, sy) = (x, y);
                if self.flip {
                    sx = n - 1 - sx;
                }
                // Rotate source coordinates `rot` quarter-turns.
                let (mut rx, mut ry) = (sx, sy);
                for _ in 0..self.rot {
                    let t = rx;
                    rx = ry;
                    ry = n - 1 - t;
                }
                out[y * n + x] = img[ry * n + rx];
            }
        }
        out
    }
}

/// Expands a dataset with `k` random augmented copies of each patch
/// (original included).
pub fn augment_dataset(d: &PatchDataset, k: usize, rng: &mut SplitMix64) -> PatchDataset {
    let n = d.len() * (k + 1);
    let px = d.images.cols();
    let mut images = Matrix::zeros(n, px);
    let mut masks = Matrix::zeros(n, px);
    let mut counts = Vec::with_capacity(n);
    let mut row = 0;
    for i in 0..d.len() {
        images.row_mut(row).copy_from_slice(d.images.row(i));
        masks.row_mut(row).copy_from_slice(d.masks.row(i));
        counts.push(d.counts[i]);
        row += 1;
        for _ in 0..k {
            let t = Dihedral::random(rng);
            images.row_mut(row).copy_from_slice(&t.apply(d.images.row(i)));
            masks.row_mut(row).copy_from_slice(&t.apply(d.masks.row(i)));
            counts.push(d.counts[i]);
            row += 1;
        }
    }
    PatchDataset { images, masks, counts }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_identity() {
        let img: Vec<f64> = (0..PATCH_SIDE * PATCH_SIDE).map(|i| i as f64).collect();
        assert_eq!(Dihedral::identity().apply(&img), img);
    }

    #[test]
    fn four_rotations_compose_to_identity() {
        let img: Vec<f64> = (0..PATCH_SIDE * PATCH_SIDE).map(|i| (i as f64).sin()).collect();
        let r = Dihedral { rot: 1, flip: false };
        let mut x = img.clone();
        for _ in 0..4 {
            x = r.apply(&x);
        }
        assert_eq!(x, img);
    }

    #[test]
    fn double_flip_is_identity() {
        let img: Vec<f64> = (0..PATCH_SIDE * PATCH_SIDE).map(|i| (i * 7 % 13) as f64).collect();
        let f = Dihedral { rot: 0, flip: true };
        assert_eq!(f.apply(&f.apply(&img)), img);
    }

    #[test]
    fn transforms_preserve_pixel_multiset() {
        let mut rng = SplitMix64::new(1);
        let img: Vec<f64> = (0..PATCH_SIDE * PATCH_SIDE).map(|i| i as f64).collect();
        for _ in 0..8 {
            let t = Dihedral::random(&mut rng);
            let mut out = t.apply(&img);
            out.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mut orig = img.clone();
            orig.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert_eq!(out, orig);
        }
    }

    #[test]
    fn augment_dataset_multiplies_and_preserves_counts() {
        let mut rng = SplitMix64::new(2);
        let d = PatchDataset::generate(4, &mut rng);
        let a = augment_dataset(&d, 3, &mut rng);
        assert_eq!(a.len(), 16);
        // Counts repeat in blocks of k+1.
        assert_eq!(a.counts[0], a.counts[1]);
        assert_eq!(a.counts[0], d.counts[0]);
        assert_eq!(a.counts[4], d.counts[1]);
    }

    #[test]
    fn mask_and_image_transform_together() {
        let mut rng = SplitMix64::new(3);
        let d = PatchDataset::generate(2, &mut rng);
        let a = augment_dataset(&d, 2, &mut rng);
        // Tissue area is invariant under dihedral transforms.
        for i in 0..a.len() {
            let area: f64 = a.masks.row(i).iter().sum();
            let orig_area: f64 = d.masks.row(i / 3).iter().sum();
            assert_eq!(area, orig_area, "row {i}");
        }
    }
}
