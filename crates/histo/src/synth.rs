//! Synthetic tissue/cell patches with overlapping annotations.
//!
//! Each patch is a `PATCH_SIDE²` grayscale image: a smooth blobby *tissue*
//! region (elevated intensity) on background, with *cells* (small bright
//! peaks) placed mostly inside the tissue — the structural coupling that
//! makes multi-task sharing profitable. Ground truth per patch: the binary
//! tissue mask and the cell count.

use treu_math::rng::SplitMix64;
use treu_math::Matrix;

/// Patch side length in pixels.
pub const PATCH_SIDE: usize = 16;
/// Pixels per patch.
pub const PATCH_PIXELS: usize = PATCH_SIDE * PATCH_SIDE;

/// A labelled patch dataset.
#[derive(Debug, Clone)]
pub struct PatchDataset {
    /// Patch images, one per row (`n x PATCH_PIXELS`).
    pub images: Matrix,
    /// Binary tissue masks, one per row.
    pub masks: Matrix,
    /// Cell counts.
    pub counts: Vec<f64>,
}

impl PatchDataset {
    /// Generates `n` patches.
    pub fn generate(n: usize, rng: &mut SplitMix64) -> Self {
        let mut images = Matrix::zeros(n, PATCH_PIXELS);
        let mut masks = Matrix::zeros(n, PATCH_PIXELS);
        let mut counts = Vec::with_capacity(n);
        for i in 0..n {
            let (img, mask, count) = Self::one_patch(rng);
            images.row_mut(i).copy_from_slice(&img);
            masks.row_mut(i).copy_from_slice(&mask);
            counts.push(count);
        }
        Self { images, masks, counts }
    }

    fn one_patch(rng: &mut SplitMix64) -> (Vec<f64>, Vec<f64>, f64) {
        let s = PATCH_SIDE as f64;
        // Tissue: an ellipse with random center/axes covering ~20-60%.
        let cx = s * (0.3 + 0.4 * rng.next_f64());
        let cy = s * (0.3 + 0.4 * rng.next_f64());
        let rx = s * (0.2 + 0.2 * rng.next_f64());
        let ry = s * (0.2 + 0.2 * rng.next_f64());
        let mut img = vec![0.0; PATCH_PIXELS];
        let mut mask = vec![0.0; PATCH_PIXELS];
        for y in 0..PATCH_SIDE {
            for x in 0..PATCH_SIDE {
                let dx = (x as f64 - cx) / rx;
                let dy = (y as f64 - cy) / ry;
                let inside = dx * dx + dy * dy <= 1.0;
                let idx = y * PATCH_SIDE + x;
                mask[idx] = if inside { 1.0 } else { 0.0 };
                img[idx] = if inside { 0.5 } else { 0.1 } + rng.next_gaussian() * 0.05;
            }
        }
        // Cells: Poisson-ish count, ~85% inside tissue.
        let n_cells = 2 + rng.next_bounded(7) as usize;
        let mut placed = 0usize;
        let mut attempts = 0usize;
        while placed < n_cells && attempts < 200 {
            attempts += 1;
            let x = rng.next_bounded(PATCH_SIDE as u64) as usize;
            let y = rng.next_bounded(PATCH_SIDE as u64) as usize;
            let idx = y * PATCH_SIDE + x;
            let in_tissue = mask[idx] > 0.5;
            let want_inside = rng.next_f64() < 0.85;
            if in_tissue == want_inside {
                img[idx] += 0.9;
                if x + 1 < PATCH_SIDE {
                    img[idx + 1] += 0.4;
                }
                if y + 1 < PATCH_SIDE {
                    img[idx + PATCH_SIDE] += 0.4;
                }
                placed += 1;
            }
        }
        (img, mask, placed as f64)
    }

    /// Number of patches.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Splits off the first `k` patches into a new dataset (for few-shot
    /// fine-tuning experiments).
    pub fn take(&self, k: usize) -> PatchDataset {
        assert!(k <= self.len(), "take: not enough patches");
        let mut images = Matrix::zeros(k, PATCH_PIXELS);
        let mut masks = Matrix::zeros(k, PATCH_PIXELS);
        for i in 0..k {
            images.row_mut(i).copy_from_slice(self.images.row(i));
            masks.row_mut(i).copy_from_slice(self.masks.row(i));
        }
        PatchDataset { images, masks, counts: self.counts[..k].to_vec() }
    }
}

/// Intersection-over-union of a predicted mask (thresholded at 0.5)
/// against ground truth.
pub fn mask_iou(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "iou: length mismatch");
    let mut inter = 0.0;
    let mut union = 0.0;
    for (p, t) in pred.iter().zip(truth) {
        let p = if *p > 0.5 { 1.0 } else { 0.0 };
        inter += p * t;
        union += (p + t - p * t).min(1.0);
    }
    if union == 0.0 {
        1.0
    } else {
        inter / union
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_shapes() {
        let mut rng = SplitMix64::new(1);
        let d = PatchDataset::generate(10, &mut rng);
        assert_eq!(d.len(), 10);
        assert_eq!(d.images.shape(), (10, PATCH_PIXELS));
        assert_eq!(d.masks.shape(), (10, PATCH_PIXELS));
        assert!(d.counts.iter().all(|&c| c >= 0.0));
    }

    #[test]
    fn masks_are_binary_and_nonempty() {
        let mut rng = SplitMix64::new(2);
        let d = PatchDataset::generate(20, &mut rng);
        for i in 0..d.len() {
            let m = d.masks.row(i);
            assert!(m.iter().all(|&v| v == 0.0 || v == 1.0));
            let area: f64 = m.iter().sum();
            assert!(area > 5.0, "patch {i} tissue area {area}");
            assert!(area < PATCH_PIXELS as f64 * 0.9);
        }
    }

    #[test]
    fn tissue_is_brighter_than_background() {
        let mut rng = SplitMix64::new(3);
        let d = PatchDataset::generate(10, &mut rng);
        for i in 0..d.len() {
            let img = d.images.row(i);
            let m = d.masks.row(i);
            let (mut tin, mut nin, mut tout, mut nout) = (0.0, 0.0, 0.0, 0.0);
            for (v, t) in img.iter().zip(m) {
                if *t > 0.5 {
                    tin += v;
                    nin += 1.0;
                } else {
                    tout += v;
                    nout += 1.0;
                }
            }
            assert!(tin / nin > tout / nout + 0.2, "patch {i} tissue contrast");
        }
    }

    #[test]
    fn cells_concentrate_in_tissue() {
        // Across many patches, bright cell peaks should mostly fall inside
        // tissue, implementing the task coupling.
        let mut rng = SplitMix64::new(4);
        let d = PatchDataset::generate(50, &mut rng);
        let (mut inside, mut total) = (0.0, 0.0);
        for i in 0..d.len() {
            let img = d.images.row(i);
            let m = d.masks.row(i);
            for (v, t) in img.iter().zip(m) {
                // A cell peak is far above both base intensities.
                if *v > 1.1 {
                    total += 1.0;
                    inside += t;
                }
            }
        }
        assert!(total > 20.0, "need cells to count");
        assert!(inside / total > 0.6, "cells inside fraction {}", inside / total);
    }

    #[test]
    fn iou_known_values() {
        assert_eq!(mask_iou(&[1.0, 1.0, 0.0], &[1.0, 1.0, 0.0]), 1.0);
        assert_eq!(mask_iou(&[1.0, 0.0], &[0.0, 1.0]), 0.0);
        assert_eq!(mask_iou(&[0.0, 0.0], &[0.0, 0.0]), 1.0);
        assert!((mask_iou(&[1.0, 1.0], &[1.0, 0.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn take_prefixes() {
        let mut rng = SplitMix64::new(5);
        let d = PatchDataset::generate(10, &mut rng);
        let t = d.take(3);
        assert_eq!(t.len(), 3);
        assert_eq!(t.images.row(2), d.images.row(2));
    }
}
