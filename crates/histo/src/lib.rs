//! `treu-histo` — multi-task computational histopathology (paper §2.7).
//!
//! The project: "Deep learning models for cell detection/counting in
//! digital histopathology are trained independently from tissue/tumor
//! segmentation models as two separate tasks. But a pathologist zooms out
//! ... to identify tissues of interest and zooms in to detect cells ...
//! This workflow indicates a dependence between these tasks. The aim of
//! this project was to train a deep learning model that closely matches a
//! pathologist's workflow," on OCELOT, "where tissue annotations and cell
//! annotations are available for overlapping patches and multi-task
//! learning could be used to share features."
//!
//! Substitution (DESIGN.md §2): OCELOT patches become a synthetic
//! tissue/cell generator ([`synth`]) in which cells are *structurally
//! coupled to tissue* — they concentrate inside tissue regions — so sharing
//! features between segmentation and counting genuinely helps, which is the
//! section's premise. The model ([`model`]) is a shared trunk with a
//! segmentation head and a cell-count head; [`augment`] provides the
//! dihedral augmentations; [`device`] models the CPU-vs-GPU throughput
//! comparison the students ran on CHPC; and [`experiment`] reproduces the
//! four studies (a)–(d): device timing, hyper-parameter search,
//! augmentation impact, and fine-tuning a pretrained trunk.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod augment;
pub mod device;
pub mod experiment;
pub mod model;
pub mod synth;

pub use model::{MultiTaskModel, TaskWeights};
pub use synth::{PatchDataset, PATCH_SIDE};
