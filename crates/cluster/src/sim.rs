//! The discrete-event GPU-pool simulator.
//!
//! Besides the fault-free queueing model, [`Cluster::simulate_faulty`]
//! layers a seeded node-failure/preemption model on top: each job draws
//! its failure count from a per-job RNG stream (so the chaos is exactly
//! reproducible for a seed, the same discipline the core fault plan
//! follows), and a [`RecoveryPolicy`] decides how much GPU time each
//! failure burns before the job completes.

use crate::trace::Job;
use treu_math::rng::{derive_seed, SplitMix64};
use treu_math::stats;

/// Scheduling discipline for the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheduler {
    /// Strict FIFO: the head of the queue blocks everyone behind it.
    Fifo,
    /// FIFO with backfill: any queued job that fits the currently free
    /// GPUs may start, in queue order (the slurm-like behaviour CHPC runs).
    Backfill,
}

impl Scheduler {
    /// Short stable name.
    pub fn name(self) -> &'static str {
        match self {
            Scheduler::Fifo => "fifo",
            Scheduler::Backfill => "backfill",
        }
    }
}

/// Simulation outcome metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct Metrics {
    /// Mean queue wait (hours).
    pub mean_wait: f64,
    /// 95th-percentile queue wait.
    pub p95_wait: f64,
    /// Fraction of jobs waiting longer than the stuck threshold.
    pub stuck_fraction: f64,
    /// Makespan: last finish time.
    pub makespan: f64,
    /// GPU utilization over the makespan.
    pub utilization: f64,
    /// Per-job waits, job-id order.
    pub waits: Vec<f64>,
}

/// A GPU pool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cluster {
    /// Number of identical GPUs.
    pub gpus: usize,
    /// Wait threshold (hours) past which a student counts as "stuck".
    pub stuck_threshold: f64,
}

impl Default for Cluster {
    fn default() -> Self {
        Self { gpus: 8, stuck_threshold: 4.0 }
    }
}

impl Cluster {
    /// Runs the trace to completion under a scheduler and returns metrics.
    ///
    /// # Panics
    ///
    /// Panics if any job demands more GPUs than the cluster has.
    pub fn simulate(&self, jobs: &[Job], scheduler: Scheduler) -> Metrics {
        assert!(jobs.iter().all(|j| j.gpus <= self.gpus), "job exceeds cluster size");
        // Sort by submit time, stable by id.
        let mut order: Vec<usize> = (0..jobs.len()).collect();
        order.sort_by(|&a, &b| {
            jobs[a]
                .submit
                .partial_cmp(&jobs[b].submit)
                .expect("NaN submit")
                .then(jobs[a].id.cmp(&jobs[b].id))
        });

        let mut queue: Vec<usize> = Vec::new(); // indices into jobs, FIFO order
        let mut running: Vec<(f64, usize)> = Vec::new(); // (end_time, job idx)
        let mut free = self.gpus;
        let mut now = 0.0f64;
        let mut next_arrival = 0usize;
        let mut starts = vec![f64::NAN; jobs.len()];
        let mut busy_gpu_hours = 0.0;

        loop {
            // Start whatever the discipline allows.
            let mut i = 0;
            while i < queue.len() {
                let idx = queue[i];
                if jobs[idx].gpus <= free {
                    free -= jobs[idx].gpus;
                    starts[idx] = now;
                    busy_gpu_hours += jobs[idx].gpus as f64 * jobs[idx].duration;
                    running.push((now + jobs[idx].duration, idx));
                    queue.remove(i);
                    // FIFO stops scanning past a blocked head; backfill
                    // keeps scanning.
                } else if scheduler == Scheduler::Fifo {
                    break;
                } else {
                    i += 1;
                }
            }

            // Advance to the next event.
            let next_end = running.iter().map(|&(t, _)| t).fold(f64::INFINITY, f64::min);
            let next_sub = if next_arrival < order.len() {
                jobs[order[next_arrival]].submit
            } else {
                f64::INFINITY
            };
            if next_end.is_infinite() && next_sub.is_infinite() {
                break;
            }
            if next_sub <= next_end {
                now = now.max(next_sub);
                queue.push(order[next_arrival]);
                next_arrival += 1;
            } else {
                now = next_end;
                running.retain(|&(t, idx)| {
                    if t <= now {
                        free += jobs[idx].gpus;
                        false
                    } else {
                        true
                    }
                });
            }
        }

        let waits: Vec<f64> =
            jobs.iter().enumerate().map(|(i, j)| (starts[i] - j.submit).max(0.0)).collect();
        let makespan =
            jobs.iter().enumerate().map(|(i, j)| starts[i] + j.duration).fold(0.0f64, f64::max);
        Metrics {
            mean_wait: stats::mean(&waits),
            p95_wait: stats::quantile(&waits, 0.95),
            stuck_fraction: waits.iter().filter(|&&w| w > self.stuck_threshold).count() as f64
                / waits.len().max(1) as f64,
            makespan,
            utilization: if makespan > 0.0 {
                busy_gpu_hours / (self.gpus as f64 * makespan)
            } else {
                0.0
            },
            waits,
        }
    }
}

/// Seeded node-failure / job-preemption model.
///
/// Failures are drawn per job from `SplitMix64(derive_seed(seed,
/// "job{id}"))`: the probability a given attempt fails is
/// `1 - exp(-duration / mtbf)` (exponential failure law over the job's
/// exposure window), and attempts repeat until one survives (capped at
/// [`FailureModel::MAX_FAILURES`] so a pathological trace still
/// terminates). The draw depends only on `(seed, job id, duration)` —
/// never on schedule order — so the same trace fails the same way under
/// every scheduler and recovery policy, which is what makes the A/B
/// comparison fair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureModel {
    /// Mean time between failures a single job experiences (hours).
    pub mtbf: f64,
    /// Fixed restage/requeue overhead each failure costs (hours).
    pub restart_cost: f64,
    /// Seed for the failure draws.
    pub seed: u64,
}

impl FailureModel {
    /// Failure-count cap per job: keeps the inflated trace finite even
    /// when `mtbf` is tiny relative to job durations.
    pub const MAX_FAILURES: usize = 4;

    /// Number of failures job `id` with `duration` suffers under this
    /// model — deterministic per `(seed, id)`.
    pub fn failures_for(&self, id: usize, duration: f64) -> usize {
        let mut rng = SplitMix64::new(derive_seed(self.seed, &format!("job{id}")));
        let p = 1.0 - (-duration / self.mtbf.max(1e-9)).exp();
        let mut k = 0;
        while k < Self::MAX_FAILURES && rng.next_f64() < p {
            k += 1;
        }
        k
    }

    /// The same per-job RNG stream, positioned after the failure draws —
    /// recovery-cost draws come from here so they never perturb `k`.
    fn recovery_rng(&self, id: usize, failures: usize) -> SplitMix64 {
        let mut rng = SplitMix64::new(derive_seed(self.seed, &format!("job{id}")));
        for _ in 0..=failures.min(Self::MAX_FAILURES) {
            rng.next_f64();
        }
        rng
    }
}

/// What a failed job loses before it can continue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// No checkpoints: every failure throws away a uniform-random
    /// fraction of the work done so far, plus the restart cost.
    Restage,
    /// Checkpoint/restart: a failure costs only the fixed restart
    /// overhead; completed work survives.
    Checkpoint,
}

impl RecoveryPolicy {
    /// Short stable name.
    pub fn name(self) -> &'static str {
        match self {
            RecoveryPolicy::Restage => "restage",
            RecoveryPolicy::Checkpoint => "checkpoint",
        }
    }
}

/// [`Metrics`] plus the failure accounting of a faulty run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultMetrics {
    /// Queueing metrics of the inflated (failure-burdened) trace.
    pub metrics: Metrics,
    /// Total failures injected across the trace.
    pub failures: usize,
    /// GPU-hours burnt on rework and restart overhead (not on results).
    pub wasted_gpu_hours: f64,
}

impl Cluster {
    /// [`Cluster::simulate`] under a seeded [`FailureModel`]: each job's
    /// duration is inflated by what its failures cost under `recovery`,
    /// then the trace runs through the ordinary discrete-event queue.
    ///
    /// # Panics
    ///
    /// Panics if any job demands more GPUs than the cluster has.
    pub fn simulate_faulty(
        &self,
        jobs: &[Job],
        scheduler: Scheduler,
        fm: &FailureModel,
        recovery: RecoveryPolicy,
    ) -> FaultMetrics {
        self.simulate_faulty_traced(jobs, scheduler, fm, recovery).0
    }

    /// [`Cluster::simulate_faulty`] plus a per-job event trace: every
    /// job's failure draws and recovery cost land in a
    /// `treu_core::trace::BatchTrace` of kind `cluster-sim`, so the
    /// simulated chaos is as inspectable as the harness's real runs.
    /// Simulated time has no wall clock, so every event's timestamp is
    /// the job's recovery overhead itself (hours) — the sidecar doubles
    /// as a per-job cost profile — and the hashed stream is a pure
    /// function of `(jobs, failure model, recovery policy)`.
    pub fn simulate_faulty_traced(
        &self,
        jobs: &[Job],
        scheduler: Scheduler,
        fm: &FailureModel,
        recovery: RecoveryPolicy,
    ) -> (FaultMetrics, treu_core::trace::BatchTrace) {
        let mut failures = 0usize;
        let mut wasted_gpu_hours = 0.0f64;
        let mut trace = treu_core::trace::BatchTrace::empty("cluster-sim", fm.seed);
        let burdened: Vec<Job> = jobs
            .iter()
            .map(|j| {
                let k = fm.failures_for(j.id, j.duration);
                failures += k;
                let mut rng = fm.recovery_rng(j.id, k);
                let overhead: f64 = match recovery {
                    RecoveryPolicy::Checkpoint => k as f64 * fm.restart_cost,
                    RecoveryPolicy::Restage => {
                        (0..k).map(|_| rng.next_f64() * j.duration + fm.restart_cost).sum()
                    }
                };
                wasted_gpu_hours += overhead * j.gpus as f64;
                let mut rt = treu_core::trace::RunTrace::new(&format!("job{}", j.id), fm.seed);
                rt.push(treu_core::trace::TraceEvent::SimFailures { failures: k }, overhead);
                rt.push(
                    treu_core::trace::TraceEvent::SimRecovery {
                        policy: recovery.name(),
                        overhead_millihours: (overhead * 1000.0).round() as u64,
                    },
                    overhead,
                );
                trace.runs.push(rt);
                Job { duration: j.duration + overhead, ..j.clone() }
            })
            .collect();
        let metrics = self.simulate(&burdened, scheduler);
        (FaultMetrics { metrics, failures, wasted_gpu_hours }, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: usize, submit: f64, duration: f64, gpus: usize) -> Job {
        Job { id, submit, duration, gpus }
    }

    #[test]
    fn uncontended_jobs_never_wait() {
        let c = Cluster { gpus: 4, stuck_threshold: 1.0 };
        let jobs = vec![job(0, 0.0, 2.0, 1), job(1, 0.0, 2.0, 1), job(2, 0.0, 2.0, 2)];
        let m = c.simulate(&jobs, Scheduler::Fifo);
        assert_eq!(m.mean_wait, 0.0);
        assert_eq!(m.stuck_fraction, 0.0);
        assert_eq!(m.makespan, 2.0);
        assert!((m.utilization - 8.0 / (4.0 * 2.0)).abs() < 1e-12);
    }

    #[test]
    fn contended_fifo_serializes() {
        let c = Cluster { gpus: 1, stuck_threshold: 0.5 };
        let jobs = vec![job(0, 0.0, 1.0, 1), job(1, 0.0, 1.0, 1), job(2, 0.0, 1.0, 1)];
        let m = c.simulate(&jobs, Scheduler::Fifo);
        assert_eq!(m.waits, vec![0.0, 1.0, 2.0]);
        assert_eq!(m.makespan, 3.0);
        assert!((m.utilization - 1.0).abs() < 1e-12);
    }

    #[test]
    fn backfill_lets_small_jobs_through() {
        // Head job wants the whole cluster and must wait for job 0; a
        // 1-GPU job behind it can backfill on the free GPU.
        let c = Cluster { gpus: 2, stuck_threshold: 10.0 };
        let jobs = vec![
            job(0, 0.0, 4.0, 1), // runs immediately, one GPU busy
            job(1, 0.1, 4.0, 2), // blocked until t=4
            job(2, 0.2, 1.0, 1), // backfill candidate
        ];
        let fifo = c.simulate(&jobs, Scheduler::Fifo);
        let back = c.simulate(&jobs, Scheduler::Backfill);
        assert!(fifo.waits[2] > 3.0, "fifo blocks the small job: {:?}", fifo.waits);
        assert!(back.waits[2] < 0.5, "backfill frees the small job: {:?}", back.waits);
        // The big job is not starved in this scenario.
        assert_eq!(back.waits[1], fifo.waits[1]);
    }

    #[test]
    fn late_submitters_get_stuck_in_a_rush() {
        // The §3 anecdote: the huge job launches fine; slightly-late small
        // jobs are stuck behind it.
        let c = Cluster { gpus: 4, stuck_threshold: 2.0 };
        let mut jobs = vec![job(0, 0.0, 10.0, 4)];
        for i in 1..5 {
            jobs.push(job(i, 0.1, 1.0, 1));
        }
        let m = c.simulate(&jobs, Scheduler::Fifo);
        assert_eq!(m.waits[0], 0.0, "early big job is fine");
        assert!(m.stuck_fraction >= 0.8, "late jobs stuck: {:?}", m.waits);
    }

    #[test]
    #[should_panic(expected = "exceeds cluster size")]
    fn oversized_job_panics() {
        let c = Cluster { gpus: 2, stuck_threshold: 1.0 };
        c.simulate(&[job(0, 0.0, 1.0, 3)], Scheduler::Fifo);
    }

    #[test]
    fn empty_trace_is_trivial() {
        let c = Cluster::default();
        let m = c.simulate(&[], Scheduler::Backfill);
        assert_eq!(m.makespan, 0.0);
        assert_eq!(m.utilization, 0.0);
    }

    #[test]
    fn simulation_is_deterministic() {
        let mut rng = treu_math::rng::SplitMix64::new(5);
        let jobs =
            crate::trace::cohort_trace(40, crate::trace::SubmissionPolicy::Clustered, &mut rng);
        let c = Cluster::default();
        let a = c.simulate(&jobs, Scheduler::Backfill);
        let b = c.simulate(&jobs, Scheduler::Backfill);
        assert_eq!(a, b);
    }

    fn rush(n: usize, seed: u64) -> Vec<Job> {
        let mut rng = treu_math::rng::SplitMix64::new(seed);
        crate::trace::cohort_trace(n, crate::trace::SubmissionPolicy::Clustered, &mut rng)
    }

    #[test]
    fn faulty_simulation_is_deterministic_and_seed_sensitive() {
        let jobs = rush(30, 5);
        let c = Cluster::default();
        let fm = FailureModel { mtbf: 6.0, restart_cost: 0.5, seed: 9 };
        let a = c.simulate_faulty(&jobs, Scheduler::Backfill, &fm, RecoveryPolicy::Restage);
        let b = c.simulate_faulty(&jobs, Scheduler::Backfill, &fm, RecoveryPolicy::Restage);
        assert_eq!(a, b, "same seed, same chaos, same metrics");
        let other = FailureModel { seed: 10, ..fm };
        let d = c.simulate_faulty(&jobs, Scheduler::Backfill, &other, RecoveryPolicy::Restage);
        assert_ne!(a.failures, d.failures, "different seeds draw different failures");
    }

    #[test]
    fn failure_draws_are_schedule_and_policy_independent() {
        let jobs = rush(30, 6);
        let c = Cluster::default();
        let fm = FailureModel { mtbf: 6.0, restart_cost: 0.5, seed: 3 };
        let fifo = c.simulate_faulty(&jobs, Scheduler::Fifo, &fm, RecoveryPolicy::Restage);
        let back = c.simulate_faulty(&jobs, Scheduler::Backfill, &fm, RecoveryPolicy::Checkpoint);
        assert_eq!(fifo.failures, back.failures, "failure count keys on (seed, job) only");
    }

    #[test]
    fn checkpointing_wastes_less_than_restaging() {
        let jobs = rush(40, 7);
        let c = Cluster::default();
        let fm = FailureModel { mtbf: 4.0, restart_cost: 0.25, seed: 11 };
        let restage = c.simulate_faulty(&jobs, Scheduler::Backfill, &fm, RecoveryPolicy::Restage);
        let ckpt = c.simulate_faulty(&jobs, Scheduler::Backfill, &fm, RecoveryPolicy::Checkpoint);
        assert!(restage.failures > 0, "an mtbf of 4h over multi-hour jobs must fail someone");
        assert!(
            ckpt.wasted_gpu_hours < restage.wasted_gpu_hours,
            "checkpoint {:.2} GPU-h vs restage {:.2} GPU-h",
            ckpt.wasted_gpu_hours,
            restage.wasted_gpu_hours
        );
        assert!(ckpt.metrics.makespan <= restage.metrics.makespan + 1e-9);
    }

    #[test]
    fn infinite_reliability_recovers_the_fault_free_metrics() {
        let jobs = rush(25, 8);
        let c = Cluster::default();
        let fm = FailureModel { mtbf: 1e12, restart_cost: 0.5, seed: 2 };
        let faulty = c.simulate_faulty(&jobs, Scheduler::Backfill, &fm, RecoveryPolicy::Restage);
        let clean = c.simulate(&jobs, Scheduler::Backfill);
        assert_eq!(faulty.failures, 0);
        assert_eq!(faulty.wasted_gpu_hours, 0.0);
        assert_eq!(faulty.metrics, clean, "no failures ⇒ bitwise the fault-free simulation");
    }

    #[test]
    fn failure_count_is_capped() {
        let fm = FailureModel { mtbf: 1e-6, restart_cost: 0.1, seed: 1 };
        assert_eq!(fm.failures_for(0, 100.0), FailureModel::MAX_FAILURES);
    }

    #[test]
    fn traced_simulation_matches_untraced_and_hashes_deterministically() {
        let jobs = rush(20, 5);
        let c = Cluster::default();
        let fm = FailureModel { mtbf: 4.0, restart_cost: 0.25, seed: 11 };
        let plain = c.simulate_faulty(&jobs, Scheduler::Backfill, &fm, RecoveryPolicy::Restage);
        let (traced, trace) =
            c.simulate_faulty_traced(&jobs, Scheduler::Backfill, &fm, RecoveryPolicy::Restage);
        assert_eq!(plain, traced, "tracing must never perturb the simulation");
        assert_eq!(trace.runs.len(), jobs.len(), "one run trace per job");
        let counters = trace.counters();
        assert_eq!(counters.events, 2 * jobs.len() as u64);
        // The trace's failure events sum to the metric's failure count —
        // the report-equals-trace property, simulator edition.
        let parsed = treu_core::trace::parse_trace(&trace.render_events()).unwrap();
        let traced_failures: u64 = parsed
            .events
            .iter()
            .filter(|e| e.ev == "sim-failures")
            .filter_map(|e| e.field_u64("failures"))
            .sum();
        assert_eq!(traced_failures as usize, traced.failures);
        // Same inputs ⇒ same content address; different seed ⇒ different.
        let (_, again) =
            c.simulate_faulty_traced(&jobs, Scheduler::Backfill, &fm, RecoveryPolicy::Restage);
        assert_eq!(trace.content_hash(), again.content_hash());
        let other = FailureModel { seed: 12, ..fm };
        let (_, moved) =
            c.simulate_faulty_traced(&jobs, Scheduler::Backfill, &other, RecoveryPolicy::Restage);
        assert_ne!(trace.content_hash(), moved.content_hash());
    }
}
