//! Harnessed experiments: E3 (clustered-rush vs staged-batches) and
//! `cluster_faults` (node failures and recovery-policy cost).

use crate::sim::{Cluster, FailureModel, RecoveryPolicy, Scheduler};
use crate::trace::{cohort_trace, SubmissionPolicy};
use treu_core::experiment::{Experiment, Params, RunContext};
use treu_core::ExperimentRegistry;
use treu_math::rng::{derive_seed, SplitMix64};

/// E3: per (policy, scheduler) pair, report the §3 pain metrics.
pub struct GpuContentionExperiment;

impl Experiment for GpuContentionExperiment {
    fn name(&self) -> &str {
        "cluster/contention"
    }

    fn run(&self, ctx: &mut RunContext) {
        let n_jobs = ctx.int("jobs", 40) as usize;
        let gpus = ctx.int("gpus", 8) as usize;
        let trials = ctx.int("trials", 5) as u64;
        let cluster = Cluster { gpus, stuck_threshold: 4.0 };
        let policies = [
            SubmissionPolicy::Clustered,
            SubmissionPolicy::Staged { batches: 4, window: 8.0 },
            SubmissionPolicy::Uniform { span: 32.0 },
        ];
        for policy in policies {
            for scheduler in [Scheduler::Fifo, Scheduler::Backfill] {
                let (mut mean_wait, mut p95, mut stuck, mut util) = (0.0, 0.0, 0.0, 0.0);
                for t in 0..trials {
                    let mut rng = SplitMix64::new(derive_seed(ctx.seed(), &format!("t{t}")));
                    let jobs = cohort_trace(n_jobs, policy, &mut rng);
                    let m = cluster.simulate(&jobs, scheduler);
                    mean_wait += m.mean_wait / trials as f64;
                    p95 += m.p95_wait / trials as f64;
                    stuck += m.stuck_fraction / trials as f64;
                    util += m.utilization / trials as f64;
                }
                let tag = format!("{}_{}", policy.name(), scheduler.name());
                ctx.record(&format!("{tag}_mean_wait"), mean_wait);
                ctx.record(&format!("{tag}_p95_wait"), p95);
                ctx.record(&format!("{tag}_stuck_fraction"), stuck);
                ctx.record(&format!("{tag}_utilization"), util);
            }
        }
    }
}

/// `cluster_faults`: the §3 contention study under a seeded node-failure
/// model — per (submission policy, recovery policy) pair, how much the
/// failures cost in stuck students, makespan, and wasted GPU-hours.
pub struct ClusterFaultsExperiment;

impl Experiment for ClusterFaultsExperiment {
    fn name(&self) -> &str {
        "cluster/faults"
    }

    fn run(&self, ctx: &mut RunContext) {
        let n_jobs = ctx.int("jobs", 40) as usize;
        let gpus = ctx.int("gpus", 8) as usize;
        let trials = ctx.int("trials", 3) as u64;
        let mtbf = ctx.float("mtbf_hours", 12.0);
        let restart_cost = ctx.float("restart_cost_hours", 0.5);
        let cluster = Cluster { gpus, stuck_threshold: 4.0 };
        let policies =
            [SubmissionPolicy::Clustered, SubmissionPolicy::Staged { batches: 4, window: 8.0 }];
        for policy in policies {
            for recovery in [RecoveryPolicy::Restage, RecoveryPolicy::Checkpoint] {
                let (mut stuck, mut makespan, mut wasted, mut fails) = (0.0, 0.0, 0.0, 0.0);
                for t in 0..trials {
                    let mut rng = SplitMix64::new(derive_seed(ctx.seed(), &format!("t{t}")));
                    let jobs = cohort_trace(n_jobs, policy, &mut rng);
                    let fm = FailureModel {
                        mtbf,
                        restart_cost,
                        seed: derive_seed(ctx.seed(), &format!("fm{t}")),
                    };
                    let fmx = cluster.simulate_faulty(&jobs, Scheduler::Backfill, &fm, recovery);
                    stuck += fmx.metrics.stuck_fraction / trials as f64;
                    makespan += fmx.metrics.makespan / trials as f64;
                    wasted += fmx.wasted_gpu_hours / trials as f64;
                    fails += fmx.failures as f64 / trials as f64;
                }
                let tag = format!("{}_{}", policy.name(), recovery.name());
                ctx.record(&format!("{tag}_stuck_fraction"), stuck);
                ctx.record(&format!("{tag}_makespan"), makespan);
                ctx.record(&format!("{tag}_wasted_gpu_hours"), wasted);
                ctx.record(&format!("{tag}_failures"), fails);
            }
        }
    }
}

/// Registers E3 and `cluster_faults`.
pub fn register(reg: &mut ExperimentRegistry) {
    reg.register(
        "E3",
        "Section 3",
        "GPU contention: clustered rush vs staged batches, FIFO vs backfill",
        Params::new().with_int("jobs", 40).with_int("gpus", 8),
        Box::new(GpuContentionExperiment),
    );
    reg.register(
        "cluster_faults",
        "Section 3",
        "Node failures on the shared pool: restage vs checkpoint recovery cost",
        Params::new()
            .with_int("jobs", 40)
            .with_int("gpus", 8)
            .with_int("trials", 3)
            .with_float("mtbf_hours", 12.0)
            .with_float("restart_cost_hours", 0.5),
        Box::new(ClusterFaultsExperiment),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use treu_core::experiment::{assert_deterministic, run_once};

    fn record() -> &'static treu_core::RunRecord {
        static REC: std::sync::OnceLock<treu_core::RunRecord> = std::sync::OnceLock::new();
        REC.get_or_init(|| run_once(&GpuContentionExperiment, 2023, Params::new()))
    }

    #[test]
    fn staging_relieves_the_rush() {
        let rec = record();
        let rush = rec.metric("clustered_fifo_stuck_fraction").unwrap();
        let staged = rec.metric("staged_fifo_stuck_fraction").unwrap();
        assert!(staged < rush * 0.6, "staging must cut the stuck fraction: {rush} -> {staged}");
        assert!(
            rec.metric("staged_fifo_p95_wait").unwrap()
                < rec.metric("clustered_fifo_p95_wait").unwrap()
        );
    }

    #[test]
    fn backfill_helps_under_clustered_load() {
        let rec = record();
        let fifo = rec.metric("clustered_fifo_mean_wait").unwrap();
        let back = rec.metric("clustered_backfill_mean_wait").unwrap();
        assert!(back <= fifo, "backfill mean wait {back} vs fifo {fifo}");
    }

    #[test]
    fn clustered_rush_really_hurts() {
        let rec = record();
        assert!(
            rec.metric("clustered_fifo_stuck_fraction").unwrap() > 0.2,
            "the rush should leave a meaningful fraction stuck"
        );
    }

    #[test]
    fn experiment_is_deterministic() {
        assert_deterministic(
            &GpuContentionExperiment,
            5,
            &Params::new().with_int("jobs", 15).with_int("trials", 2),
        );
    }

    #[test]
    fn registry_id() {
        let mut reg = ExperimentRegistry::new();
        register(&mut reg);
        assert!(reg.get("E3").is_some());
        assert!(reg.get("cluster_faults").is_some());
    }

    fn faults_record() -> &'static treu_core::RunRecord {
        static REC: std::sync::OnceLock<treu_core::RunRecord> = std::sync::OnceLock::new();
        REC.get_or_init(|| {
            run_once(
                &ClusterFaultsExperiment,
                2023,
                Params::new().with_float("mtbf_hours", 4.0).with_int("trials", 2),
            )
        })
    }

    #[test]
    fn faults_experiment_checkpoint_beats_restage() {
        let rec = faults_record();
        for policy in ["clustered", "staged"] {
            let restage = rec.metric(&format!("{policy}_restage_wasted_gpu_hours")).unwrap();
            let ckpt = rec.metric(&format!("{policy}_checkpoint_wasted_gpu_hours")).unwrap();
            assert!(ckpt < restage, "{policy}: checkpoint {ckpt} vs restage {restage}");
        }
        assert!(rec.metric("clustered_restage_failures").unwrap() > 0.0);
    }

    #[test]
    fn faults_experiment_is_deterministic() {
        assert_deterministic(
            &ClusterFaultsExperiment,
            5,
            &Params::new().with_int("jobs", 12).with_int("trials", 1),
        );
    }
}
