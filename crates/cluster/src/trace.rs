//! Job traces: the cohort's training runs and how they get submitted.

use treu_math::rng::SplitMix64;

/// One GPU job (a student project's training run).
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// Job id.
    pub id: usize,
    /// Submission time (hours from the rush's start).
    pub submit: f64,
    /// Run duration (hours).
    pub duration: f64,
    /// GPUs required for the whole duration.
    pub gpus: usize,
}

/// How the cohort schedules its submissions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SubmissionPolicy {
    /// Everyone submits in the final crunch: all jobs arrive within a
    /// small window (the paper's "array of ML/AI projects finishing at the
    /// same time").
    Clustered,
    /// Submissions staged across `k` non-overlapping batch windows — the
    /// paper's recommendation.
    Staged {
        /// Number of batches.
        batches: usize,
        /// Hours between batch starts.
        window: f64,
    },
    /// Uniformly spread submissions (the idealized well-planned cohort).
    Uniform {
        /// Total span in hours.
        span: f64,
    },
}

impl SubmissionPolicy {
    /// Short stable name.
    pub fn name(self) -> &'static str {
        match self {
            SubmissionPolicy::Clustered => "clustered",
            SubmissionPolicy::Staged { .. } => "staged",
            SubmissionPolicy::Uniform { .. } => "uniform",
        }
    }
}

/// Generates the cohort's job trace under a submission policy.
///
/// Job shapes are policy-independent (same durations/GPU demands drawn
/// from the same stream), so the comparison isolates the submission
/// pattern.
pub fn cohort_trace(n_jobs: usize, policy: SubmissionPolicy, rng: &mut SplitMix64) -> Vec<Job> {
    // Shapes first, deterministically shared across policies for a seed.
    let shapes: Vec<(f64, usize)> = (0..n_jobs)
        .map(|_| {
            // Durations: mostly 0.5-3h, a few long hauls; the occasional
            // "huge allocation" job wants several GPUs. Sized so the
            // cohort's total demand fits a staged day but swamps a rush.
            let duration =
                0.5 + rng.next_f64() * 2.5 + if rng.next_f64() < 0.1 { 4.0 } else { 0.0 };
            let gpus = if rng.next_f64() < 0.15 { 4 } else { 1 + rng.next_bounded(2) as usize };
            (duration, gpus)
        })
        .collect();
    shapes
        .into_iter()
        .enumerate()
        .map(|(id, (duration, gpus))| {
            let submit = match policy {
                SubmissionPolicy::Clustered => rng.next_f64() * 0.5,
                SubmissionPolicy::Staged { batches, window } => {
                    let b = id % batches.max(1);
                    b as f64 * window + rng.next_f64() * 0.5
                }
                SubmissionPolicy::Uniform { span } => rng.next_f64() * span,
            };
            Job { id, submit, duration, gpus }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clustered_trace_arrives_in_the_crunch() {
        let mut rng = SplitMix64::new(1);
        let jobs = cohort_trace(30, SubmissionPolicy::Clustered, &mut rng);
        assert_eq!(jobs.len(), 30);
        assert!(jobs.iter().all(|j| j.submit < 0.5));
        assert!(jobs.iter().all(|j| j.duration >= 0.5 && j.gpus >= 1));
    }

    #[test]
    fn staged_trace_spreads_batches() {
        let mut rng = SplitMix64::new(2);
        let jobs = cohort_trace(30, SubmissionPolicy::Staged { batches: 3, window: 8.0 }, &mut rng);
        let in_batch =
            |lo: f64, hi: f64| jobs.iter().filter(|j| j.submit >= lo && j.submit < hi).count();
        assert_eq!(in_batch(0.0, 4.0), 10);
        assert_eq!(in_batch(8.0, 12.0), 10);
        assert_eq!(in_batch(16.0, 20.0), 10);
    }

    #[test]
    fn same_seed_same_shapes_across_policies() {
        let shapes = |policy| {
            let mut rng = SplitMix64::new(3);
            cohort_trace(20, policy, &mut rng)
                .into_iter()
                .map(|j| (j.duration.to_bits(), j.gpus))
                .collect::<Vec<_>>()
        };
        assert_eq!(
            shapes(SubmissionPolicy::Clustered),
            shapes(SubmissionPolicy::Staged { batches: 4, window: 6.0 })
        );
    }

    #[test]
    fn some_jobs_want_big_allocations() {
        let mut rng = SplitMix64::new(4);
        let jobs = cohort_trace(100, SubmissionPolicy::Clustered, &mut rng);
        assert!(jobs.iter().any(|j| j.gpus == 4), "big-allocation jobs exist");
        assert!(jobs.iter().any(|j| j.duration > 4.0), "long jobs exist");
    }
}
