//! `treu-cluster` — GPU-cluster contention simulation (paper §3).
//!
//! The paper's operational findings: "Some students launched a job
//! requiring a huge allocation and that was fine but others who were even
//! slightly late to launch were stuck (GPU availability was a bottleneck)"
//! and "an array of ML/AI projects finishing at the same time resulted in
//! GPU availability issues — something that needs to be addressed by
//! staging GPU result collection across non-overlapping batches (requiring
//! proactive planning)."
//!
//! This crate quantifies both with a discrete-event simulator of a shared
//! GPU pool ([`sim`]): job traces model a cohort's end-of-program rush
//! ([`trace`]), schedulers are FIFO with optional backfill, and submission
//! policies compare the rush against the recommended staged batches
//! ([`experiment`], E3). Metrics are the ones the complaint is about:
//! queue-wait percentiles and the fraction of "stuck" students.
//!
//! A seeded failure model ([`sim::FailureModel`]) extends the simulator
//! with node failures / job preemptions and a [`sim::RecoveryPolicy`]
//! (restage vs checkpoint), quantifying what unreliable shared hardware
//! costs the cohort — the `cluster_faults` experiment.
//!
//! # Example
//!
//! ```
//! use treu_cluster::{Cluster, Scheduler, SubmissionPolicy};
//! use treu_cluster::trace::cohort_trace;
//! use treu_math::rng::SplitMix64;
//!
//! let mut rng = SplitMix64::new(1);
//! let rush = cohort_trace(30, SubmissionPolicy::Clustered, &mut rng);
//! let metrics = Cluster::default().simulate(&rush, Scheduler::Backfill);
//! assert!(metrics.utilization > 0.0 && metrics.utilization <= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
pub mod sim;
pub mod trace;

pub use sim::{Cluster, FailureModel, FaultMetrics, Metrics, RecoveryPolicy, Scheduler};
pub use trace::{Job, SubmissionPolicy};
