//! Independent verification of the discrete-event simulator: reconstruct
//! the schedule implied by the reported waits and check the physical
//! invariants (capacity never exceeded, no job starts before submission,
//! FIFO never reorders starts against queue order).

use proptest::prelude::*;
use treu_cluster::sim::Scheduler;
use treu_cluster::trace::{cohort_trace, SubmissionPolicy};
use treu_cluster::Cluster;
use treu_math::rng::SplitMix64;

/// Checks GPU capacity at every start/end event of the reconstructed
/// schedule.
fn max_concurrent_gpus(jobs: &[treu_cluster::Job], waits: &[f64]) -> usize {
    // Quantize times to a nanosecond-scale grid: reconstructing a start as
    // `submit + (start - submit)` can differ from the simulator's own event
    // time by an ULP, which would misorder genuinely simultaneous end/start
    // pairs.
    let q = |t: f64| (t * 1e9).round() as i64;
    let mut events: Vec<(i64, i64)> = Vec::new();
    for (j, w) in jobs.iter().zip(waits) {
        let start = j.submit + w;
        events.push((q(start), j.gpus as i64));
        events.push((q(start + j.duration), -(j.gpus as i64)));
    }
    // Ends before starts at the same instant (a finishing job frees GPUs
    // for one starting at that moment).
    events.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut cur = 0i64;
    let mut peak = 0i64;
    for (_, d) in events {
        cur += d;
        peak = peak.max(cur);
    }
    peak as usize
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn capacity_and_causality_hold(seed in any::<u64>(), n_jobs in 1usize..30, gpus in 4usize..10) {
        let mut rng = SplitMix64::new(seed);
        let jobs = cohort_trace(n_jobs, SubmissionPolicy::Clustered, &mut rng);
        let cluster = Cluster { gpus, stuck_threshold: 4.0 };
        for sched in [Scheduler::Fifo, Scheduler::Backfill] {
            let m = cluster.simulate(&jobs, sched);
            // Causality: no negative waits (start >= submit).
            prop_assert!(m.waits.iter().all(|&w| w >= 0.0));
            // Physics: concurrent GPU demand never exceeds the pool.
            let peak = max_concurrent_gpus(&jobs, &m.waits);
            prop_assert!(peak <= gpus, "{}: peak {} > {}", sched.name(), peak, gpus);
        }
    }

    #[test]
    fn fifo_starts_respect_submission_order_per_feasibility(seed in any::<u64>(), n_jobs in 2usize..20) {
        // Under strict FIFO, a job never starts before an earlier-submitted
        // job *that was already runnable*: formally, start times of jobs in
        // submission order are non-decreasing whenever the earlier job's
        // demand fits the pool alone (all our jobs do).
        let mut rng = SplitMix64::new(seed);
        let jobs = cohort_trace(n_jobs, SubmissionPolicy::Clustered, &mut rng);
        let cluster = Cluster::default();
        let m = cluster.simulate(&jobs, Scheduler::Fifo);
        let mut order: Vec<usize> = (0..jobs.len()).collect();
        order.sort_by(|&a, &b| {
            jobs[a].submit.partial_cmp(&jobs[b].submit).unwrap().then(a.cmp(&b))
        });
        let starts: Vec<f64> = jobs.iter().zip(&m.waits).map(|(j, w)| j.submit + w).collect();
        for w in order.windows(2) {
            prop_assert!(
                starts[w[0]] <= starts[w[1]] + 1e-9,
                "FIFO reordered starts: job {} at {} vs job {} at {}",
                w[0], starts[w[0]], w[1], starts[w[1]]
            );
        }
    }

    #[test]
    fn utilization_is_work_over_capacity(seed in any::<u64>(), n_jobs in 1usize..15) {
        let mut rng = SplitMix64::new(seed);
        let jobs = cohort_trace(n_jobs, SubmissionPolicy::Uniform { span: 20.0 }, &mut rng);
        let cluster = Cluster::default();
        let m = cluster.simulate(&jobs, Scheduler::Backfill);
        let work: f64 = jobs.iter().map(|j| j.duration * j.gpus as f64).sum();
        let expect = work / (cluster.gpus as f64 * m.makespan);
        prop_assert!((m.utilization - expect).abs() < 1e-9);
    }
}

/// Greedy backfill can delay an individual blocked wide job (it holds no
/// reservations), so "never hurts" is false per trace — but it helps in
/// expectation, which is the claim E3 relies on. Check the aggregate.
#[test]
fn backfill_helps_in_expectation() {
    let cluster = Cluster::default();
    let mut improvement = 0.0;
    for seed in 0..60u64 {
        let mut rng = SplitMix64::new(seed);
        let jobs = cohort_trace(25, SubmissionPolicy::Clustered, &mut rng);
        let fifo = cluster.simulate(&jobs, Scheduler::Fifo);
        let back = cluster.simulate(&jobs, Scheduler::Backfill);
        improvement += fifo.mean_wait - back.mean_wait;
    }
    assert!(
        improvement > 0.0,
        "backfill should reduce mean wait in aggregate; total delta {improvement}"
    );
}
