//! Synthetic 3-D shape cohorts with a known number of variation modes.
//!
//! A [`Shape`] here is an implicit ellipsoid `x²/a² + y²/b² + z²/c² = 1`
//! plus a rigid pose (translation). Cohorts come from an
//! [`EllipsoidFamily`] whose radii vary along a controlled number of modes,
//! so the "right answer" for the PCA mode analysis is known by
//! construction — the one-mode spherical warm-up is exactly the paper's
//! familiarization exercise.

use treu_math::rng::SplitMix64;

/// A 3-vector.
pub type Vec3 = [f64; 3];

/// An ellipsoid shape instance with a pose.
#[derive(Debug, Clone, PartialEq)]
pub struct Shape {
    /// Semi-axes `(a, b, c)`.
    pub radii: Vec3,
    /// Center translation.
    pub center: Vec3,
    /// The latent mode coordinates that generated this instance (ground
    /// truth for validation; the pipeline never reads it).
    pub latent: Vec<f64>,
}

impl Shape {
    /// Projects a unit direction onto the surface: the surface point in
    /// direction `u` from the center.
    pub fn surface_point(&self, u: Vec3) -> Vec3 {
        // For direction u, the ellipsoid surface point is u scaled so the
        // implicit equation holds.
        let s = (u[0] * u[0] / (self.radii[0] * self.radii[0])
            + u[1] * u[1] / (self.radii[1] * self.radii[1])
            + u[2] * u[2] / (self.radii[2] * self.radii[2]))
            .sqrt();
        [self.center[0] + u[0] / s, self.center[1] + u[1] / s, self.center[2] + u[2] / s]
    }

    /// True if `p` lies (approximately) on the surface.
    pub fn on_surface(&self, p: Vec3, tol: f64) -> bool {
        let v = [p[0] - self.center[0], p[1] - self.center[1], p[2] - self.center[2]];
        let q = v[0] * v[0] / (self.radii[0] * self.radii[0])
            + v[1] * v[1] / (self.radii[1] * self.radii[1])
            + v[2] * v[2] / (self.radii[2] * self.radii[2]);
        (q - 1.0).abs() < tol
    }
}

/// A cohort generator with `modes` independent modes of radius variation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EllipsoidFamily {
    /// Base radius of the spherical template.
    pub base_radius: f64,
    /// Number of variation modes (1 = the paper's warm-up).
    pub modes: usize,
    /// Scale of each mode's radius perturbation.
    pub mode_scale: f64,
    /// Scale of random rigid translations (tests alignment).
    pub translation_scale: f64,
}

impl Default for EllipsoidFamily {
    fn default() -> Self {
        Self { base_radius: 5.0, modes: 1, mode_scale: 1.5, translation_scale: 2.0 }
    }
}

impl EllipsoidFamily {
    /// Samples a cohort of `n` shapes.
    ///
    /// Mode 1 stretches the x-axis, mode 2 the y-axis, mode 3 the z-axis;
    /// more than 3 modes are rejected (an ellipsoid has 3 radii).
    pub fn sample(&self, n: usize, rng: &mut SplitMix64) -> Vec<Shape> {
        assert!((1..=3).contains(&self.modes), "1..=3 modes supported");
        (0..n)
            .map(|_| {
                let latent: Vec<f64> = (0..self.modes).map(|_| rng.next_gaussian()).collect();
                let mut radii = [self.base_radius; 3];
                for (m, &z) in latent.iter().enumerate() {
                    radii[m] = (self.base_radius + self.mode_scale * z).max(1.0);
                }
                let center = [
                    rng.next_gaussian() * self.translation_scale,
                    rng.next_gaussian() * self.translation_scale,
                    rng.next_gaussian() * self.translation_scale,
                ];
                Shape { radii, center, latent }
            })
            .collect()
    }
}

/// The spherical Fibonacci lattice: `n` near-uniform unit directions.
/// Deterministic, so the same lattice indexes correspond across shapes.
pub fn fibonacci_directions(n: usize) -> Vec<Vec3> {
    assert!(n > 0, "need at least one direction");
    let phi = (1.0 + 5.0f64.sqrt()) / 2.0;
    (0..n)
        .map(|i| {
            let z = 1.0 - (2.0 * i as f64 + 1.0) / n as f64;
            let r = (1.0 - z * z).max(0.0).sqrt();
            let theta = std::f64::consts::TAU * (i as f64 / phi).fract();
            [r * theta.cos(), r * theta.sin(), z]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surface_points_satisfy_implicit_equation() {
        let s = Shape { radii: [3.0, 4.0, 5.0], center: [1.0, -2.0, 0.5], latent: vec![] };
        for u in fibonacci_directions(50) {
            let p = s.surface_point(u);
            assert!(s.on_surface(p, 1e-9));
        }
    }

    #[test]
    fn one_mode_family_varies_only_x() {
        let mut rng = SplitMix64::new(1);
        let fam = EllipsoidFamily::default();
        let shapes = fam.sample(30, &mut rng);
        for s in &shapes {
            assert_eq!(s.radii[1], 5.0);
            assert_eq!(s.radii[2], 5.0);
            assert_eq!(s.latent.len(), 1);
        }
        let xs: Vec<f64> = shapes.iter().map(|s| s.radii[0]).collect();
        assert!(treu_math::stats::std_dev(&xs) > 0.5, "x radius must vary");
    }

    #[test]
    fn two_mode_family_varies_x_and_y() {
        let mut rng = SplitMix64::new(2);
        let fam = EllipsoidFamily { modes: 2, ..EllipsoidFamily::default() };
        let shapes = fam.sample(30, &mut rng);
        let ys: Vec<f64> = shapes.iter().map(|s| s.radii[1]).collect();
        assert!(treu_math::stats::std_dev(&ys) > 0.5);
        assert!(shapes.iter().all(|s| s.radii[2] == 5.0));
    }

    #[test]
    #[should_panic(expected = "modes supported")]
    fn too_many_modes_panics() {
        let mut rng = SplitMix64::new(3);
        EllipsoidFamily { modes: 4, ..EllipsoidFamily::default() }.sample(1, &mut rng);
    }

    #[test]
    fn fibonacci_directions_are_unit_and_spread() {
        let dirs = fibonacci_directions(200);
        for d in &dirs {
            let n = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
            assert!((n - 1.0).abs() < 1e-12);
        }
        // Mean direction of a uniform set is near zero.
        let mut mean = [0.0; 3];
        for d in &dirs {
            for k in 0..3 {
                mean[k] += d[k] / 200.0;
            }
        }
        assert!(mean.iter().all(|m| m.abs() < 0.05), "{mean:?}");
    }

    #[test]
    fn radii_never_degenerate() {
        let mut rng = SplitMix64::new(4);
        let fam = EllipsoidFamily { mode_scale: 10.0, ..EllipsoidFamily::default() };
        let shapes = fam.sample(100, &mut rng);
        assert!(shapes.iter().all(|s| s.radii.iter().all(|&r| r >= 1.0)));
    }
}
