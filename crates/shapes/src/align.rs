//! Generalized Procrustes alignment ("data grooming and preprocessing").
//!
//! Before PCA, the cohort's particle clouds are aligned: translations are
//! removed by centering each shape at its particle centroid, and rotations
//! by orthogonal Procrustes against the cohort mean (via the Jacobi SVD in
//! `treu-math`). Scale is preserved — radius variation *is* the signal the
//! mode analysis must find.

use treu_math::decomp::svd;
use treu_math::Matrix;

/// Centers each row-shape (flattened `m x 3` particles) at its centroid.
/// Returns the per-shape centroids that were removed.
pub fn center_rows(shapes: &mut Matrix) -> Vec<[f64; 3]> {
    let m = shapes.cols() / 3;
    let mut centroids = Vec::with_capacity(shapes.rows());
    for r in 0..shapes.rows() {
        let row = shapes.row_mut(r);
        let mut c = [0.0; 3];
        for k in 0..m {
            for a in 0..3 {
                c[a] += row[k * 3 + a] / m as f64;
            }
        }
        for k in 0..m {
            for a in 0..3 {
                row[k * 3 + a] -= c[a];
            }
        }
        centroids.push(c);
    }
    centroids
}

/// Optimal rotation aligning particle cloud `a` (as `m x 3`) to `b`, via
/// orthogonal Procrustes: `R = U V^T` of `SVD(bᵀ a)` — applied as
/// `a_aligned = a Rᵀ`.
pub fn procrustes_rotation(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.shape(), b.shape(), "procrustes: shape mismatch");
    assert_eq!(a.cols(), 3, "procrustes: expected m x 3 clouds");
    let cross = b.transpose().matmul(a); // 3 x 3
    let d = svd(&cross, 1e-14, 60);
    d.u.matmul(&d.vt)
}

/// Aligns every row-shape of the matrix to the first shape's cloud
/// (translation + rotation). Returns the aligned matrix.
pub fn align_cohort(shapes: &Matrix) -> Matrix {
    let mut out = shapes.clone();
    center_rows(&mut out);
    let m = out.cols() / 3;
    let reference = row_to_cloud(&out, 0, m);
    for r in 1..out.rows() {
        let cloud = row_to_cloud(&out, r, m);
        let rot = procrustes_rotation(&cloud, &reference);
        let aligned = cloud.matmul(&rot.transpose());
        let row = out.row_mut(r);
        for k in 0..m {
            for a in 0..3 {
                row[k * 3 + a] = aligned[(k, a)];
            }
        }
    }
    out
}

fn row_to_cloud(shapes: &Matrix, r: usize, m: usize) -> Matrix {
    let row = shapes.row(r);
    Matrix::from_fn(m, 3, |k, a| row[k * 3 + a])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correspond::ParticleSystem;
    use crate::sample::{EllipsoidFamily, Shape};
    use treu_math::rng::SplitMix64;

    #[test]
    fn centering_zeroes_centroids() {
        let mut rng = SplitMix64::new(1);
        let shapes = EllipsoidFamily::default().sample(4, &mut rng);
        let ps = ParticleSystem::fibonacci(32);
        let mut m = ps.shape_matrix(&shapes);
        let removed = center_rows(&mut m);
        assert_eq!(removed.len(), 4);
        for r in 0..4 {
            let row = m.row(r);
            for a in 0..3 {
                let mean: f64 = (0..32).map(|k| row[k * 3 + a]).sum::<f64>() / 32.0;
                assert!(mean.abs() < 1e-9);
            }
        }
        // The removed centroids approximate the shape centers.
        for (c, s) in removed.iter().zip(&shapes) {
            for a in 0..3 {
                assert!((c[a] - s.center[a]).abs() < 1.0, "axis {a}");
            }
        }
    }

    #[test]
    fn procrustes_recovers_a_rotation() {
        // Rotate a cloud by a known rotation about z; Procrustes must undo it.
        let theta: f64 = 0.7;
        let rot = Matrix::from_rows(&[
            &[theta.cos(), -theta.sin(), 0.0],
            &[theta.sin(), theta.cos(), 0.0],
            &[0.0, 0.0, 1.0],
        ]);
        let shape = Shape { radii: [5.0, 3.0, 2.0], center: [0.0; 3], latent: vec![] };
        let ps = ParticleSystem::fibonacci(64);
        let cloud = {
            let m = ps.shape_matrix(&[shape]);
            Matrix::from_fn(64, 3, |k, a| m[(0, k * 3 + a)])
        };
        let rotated = cloud.matmul(&rot.transpose());
        let r = procrustes_rotation(&rotated, &cloud);
        let back = rotated.matmul(&r.transpose());
        assert!(back.max_abs_diff(&cloud) < 1e-8, "diff {}", back.max_abs_diff(&cloud));
    }

    #[test]
    fn rotation_is_orthogonal() {
        let mut rng = SplitMix64::new(2);
        let a = Matrix::from_fn(20, 3, |_, _| rng.next_gaussian());
        let b = Matrix::from_fn(20, 3, |_, _| rng.next_gaussian());
        let r = procrustes_rotation(&a, &b);
        let should_be_i = r.matmul(&r.transpose());
        assert!(should_be_i.max_abs_diff(&Matrix::identity(3)) < 1e-8);
    }

    #[test]
    fn alignment_removes_translation_variance() {
        let mut rng = SplitMix64::new(3);
        // Identical spheres, random translations: after alignment all rows
        // must coincide.
        let fam = EllipsoidFamily { mode_scale: 0.0, ..EllipsoidFamily::default() };
        let shapes = fam.sample(6, &mut rng);
        let ps = ParticleSystem::fibonacci(32);
        let aligned = align_cohort(&ps.shape_matrix(&shapes));
        for r in 1..6 {
            let d: f64 = aligned
                .row(0)
                .iter()
                .zip(aligned.row(r))
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            assert!(d < 1e-6, "row {r} differs by {d}");
        }
    }
}
