//! Harnessed experiment E2.11: the one-mode atlas and the particle-count
//! ablation.

use crate::align::align_cohort;
use crate::correspond::ParticleSystem;
use crate::sample::EllipsoidFamily;
use treu_core::experiment::{Experiment, Params, RunContext};
use treu_core::ExperimentRegistry;
use treu_math::pca::Pca;
use treu_math::rng::{derive_seed, SplitMix64};
use treu_math::stats;

/// Result of one atlas computation.
#[derive(Debug, Clone, PartialEq)]
pub struct AtlasResult {
    /// Fraction of variance in the first mode.
    pub mode1_ratio: f64,
    /// |correlation| between mode-1 scores and the ground-truth latent.
    pub mode1_latent_corr: f64,
    /// Full compactness curve.
    pub compactness: Vec<f64>,
}

/// Computes a shape atlas: sample the cohort, optimize correspondence,
/// align, PCA, and validate mode 1 against the generator's latent.
pub fn compute_atlas(
    family: EllipsoidFamily,
    n_shapes: usize,
    particles: usize,
    seed: u64,
) -> AtlasResult {
    let mut rng = SplitMix64::new(derive_seed(seed, "cohort"));
    let shapes = family.sample(n_shapes, &mut rng);
    let mut ps =
        ParticleSystem::random(particles, &mut SplitMix64::new(derive_seed(seed, "particles")));
    ps.optimize(40, 0.02);
    let aligned = align_cohort(&ps.shape_matrix(&shapes));
    let pca = Pca::fit(&aligned, n_shapes.min(aligned.cols()).min(6));
    let ratios = pca.explained_variance_ratio();
    let scores = pca.transform_all(&aligned);
    let mode1: Vec<f64> = (0..n_shapes).map(|r| scores[(r, 0)]).collect();
    let latent: Vec<f64> = shapes.iter().map(|s| s.latent[0]).collect();
    AtlasResult {
        mode1_ratio: ratios.first().copied().unwrap_or(0.0),
        mode1_latent_corr: stats::pearson(&mode1, &latent).abs(),
        compactness: pca.compactness(),
    }
}

/// E2.11: the one-mode warm-up, a two-mode check, and the particle
/// ablation.
pub struct ShapeAtlasExperiment;

impl Experiment for ShapeAtlasExperiment {
    fn name(&self) -> &str {
        "shapes/atlas"
    }

    fn run(&self, ctx: &mut RunContext) {
        let n_shapes = ctx.int("shapes", 24) as usize;

        // One-mode family (the paper's familiarization exercise).
        let one =
            compute_atlas(EllipsoidFamily::default(), n_shapes, 64, derive_seed(ctx.seed(), "one"));
        ctx.record("one_mode_ratio", one.mode1_ratio);
        ctx.record("one_mode_latent_corr", one.mode1_latent_corr);

        // Two-mode family: the first two modes should carry ~everything.
        let fam2 = EllipsoidFamily { modes: 2, ..EllipsoidFamily::default() };
        let two = compute_atlas(fam2, n_shapes, 64, derive_seed(ctx.seed(), "two"));
        ctx.record("two_mode_top2_compactness", two.compactness.get(1).copied().unwrap_or(0.0));

        // Particle-count ablation on the one-mode family.
        for particles in [8usize, 16, 64, 256] {
            let r = compute_atlas(
                EllipsoidFamily::default(),
                n_shapes,
                particles,
                derive_seed(ctx.seed(), &format!("abl{particles}")),
            );
            ctx.record(&format!("abl_p{particles:03}_mode1_ratio"), r.mode1_ratio);
            ctx.record(&format!("abl_p{particles:03}_latent_corr"), r.mode1_latent_corr);
        }
    }
}

/// Registers E2.11.
pub fn register(reg: &mut ExperimentRegistry) {
    reg.register(
        "E2.11",
        "Section 2.11",
        "shape atlas: one-mode recovery and particle-count ablation",
        Params::new().with_int("shapes", 24),
        Box::new(ShapeAtlasExperiment),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use treu_core::experiment::{assert_deterministic, run_once};

    #[test]
    fn one_mode_family_yields_one_dominant_mode() {
        let r = compute_atlas(EllipsoidFamily::default(), 24, 64, 1);
        assert!(r.mode1_ratio > 0.9, "mode-1 ratio {}", r.mode1_ratio);
        assert!(r.mode1_latent_corr > 0.95, "mode-1/latent correlation {}", r.mode1_latent_corr);
    }

    #[test]
    fn compactness_saturates_after_true_modes() {
        let fam2 = EllipsoidFamily { modes: 2, ..EllipsoidFamily::default() };
        let r = compute_atlas(fam2, 24, 64, 2);
        assert!(r.compactness[1] > 0.95, "two modes must explain ~all: {:?}", r.compactness);
    }

    #[test]
    fn ablation_more_particles_never_hurts_much() {
        let small = compute_atlas(EllipsoidFamily::default(), 20, 8, 3);
        let large = compute_atlas(EllipsoidFamily::default(), 20, 128, 3);
        assert!(
            large.mode1_latent_corr >= small.mode1_latent_corr - 0.05,
            "corr {} -> {}",
            small.mode1_latent_corr,
            large.mode1_latent_corr
        );
    }

    #[test]
    fn experiment_records_all_metrics() {
        let rec = run_once(&ShapeAtlasExperiment, 2023, Params::new().with_int("shapes", 16));
        assert!(rec.metric("one_mode_ratio").unwrap() > 0.85);
        assert!(rec.metric("two_mode_top2_compactness").unwrap() > 0.9);
        for p in ["p008", "p016", "p064", "p256"] {
            assert!(rec.metric(&format!("abl_{p}_mode1_ratio")).is_some(), "{p}");
        }
    }

    #[test]
    fn experiment_is_deterministic() {
        assert_deterministic(&ShapeAtlasExperiment, 7, &Params::new().with_int("shapes", 10));
    }

    #[test]
    fn registry_id() {
        let mut reg = ExperimentRegistry::new();
        register(&mut reg);
        assert!(reg.get("E2.11").is_some());
    }
}
