//! `treu-shapes` — statistical shape atlases (paper §2.11).
//!
//! The project: "Use Shapeworks to compute a statistical shape model for
//! different anatomies ... The student was instructed to compute a shape
//! atlas and principal modes of variations for synthetic 3D spherical data
//! (one mode of variation) to familiarize themselves with the entire
//! computational pipeline. ... The student also conducted an ablation study
//! by analyzing the modes of variation using varying quantities of
//! particles for the same anatomy."
//!
//! This crate is that pipeline: a synthetic ellipsoid cohort with a known
//! number of variation modes ([`sample`]), particle-based surface
//! correspondence via shared-direction optimization ([`correspond`]),
//! generalized Procrustes alignment ([`align`]), and PCA mode analysis with
//! the particle-count ablation ([`experiment`]).

#![forbid(unsafe_code)]
// Indexed loops over multiple parallel arrays are the clearest idiom in
// this crate's numeric kernels; the zip-chain rewrite the lint suggests
// obscures them.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod align;
pub mod correspond;
pub mod experiment;
pub mod sample;

pub use correspond::{ParticleSystem, Particles};
pub use sample::{EllipsoidFamily, Shape};
