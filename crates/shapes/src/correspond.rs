//! Particle-based surface correspondence.
//!
//! ShapeWorks' core idea: represent every shape in a cohort by the same
//! number of particles, positioned so that (i) particles spread uniformly
//! over each surface and (ii) particle `k` sits at *corresponding*
//! anatomical locations across shapes. This implementation enforces (ii)
//! by construction — all shapes share one set of direction parameters, and
//! particle `k` of shape `s` is the surface projection of direction `k` —
//! and achieves (i) by gradient-descent repulsion of the shared directions
//! on the unit sphere (initialized randomly, like ShapeWorks' splitting
//! initialization, and optimized; the Fibonacci lattice is available as a
//! fixed alternative).

use crate::sample::{fibonacci_directions, Shape, Vec3};
use treu_math::rng::SplitMix64;
use treu_math::Matrix;

/// The particle representation of one shape: `m` surface points.
pub type Particles = Vec<Vec3>;

/// A cohort-wide particle system: shared directions + per-shape surface
/// projections.
#[derive(Debug, Clone)]
pub struct ParticleSystem {
    directions: Vec<Vec3>,
}

impl ParticleSystem {
    /// Initializes `m` random directions.
    pub fn random(m: usize, rng: &mut SplitMix64) -> Self {
        assert!(m >= 2, "need at least two particles");
        let directions = (0..m)
            .map(|_| {
                let mut d = [rng.next_gaussian(), rng.next_gaussian(), rng.next_gaussian()];
                normalize3(&mut d);
                d
            })
            .collect();
        Self { directions }
    }

    /// Initializes from the deterministic Fibonacci lattice (the
    /// no-optimization baseline).
    pub fn fibonacci(m: usize) -> Self {
        Self { directions: fibonacci_directions(m) }
    }

    /// Number of particles.
    pub fn len(&self) -> usize {
        self.directions.len()
    }

    /// True when empty (cannot happen through constructors).
    pub fn is_empty(&self) -> bool {
        self.directions.is_empty()
    }

    /// Mean nearest-neighbour spherical distance of the directions — the
    /// uniformity objective (larger = more uniform).
    pub fn uniformity(&self) -> f64 {
        let m = self.directions.len();
        let mut total = 0.0;
        for i in 0..m {
            let mut best = f64::INFINITY;
            for j in 0..m {
                if i != j {
                    best = best.min(dist3(self.directions[i], self.directions[j]));
                }
            }
            total += best;
        }
        total / m as f64
    }

    /// Runs `iters` steps of repulsion descent: each direction moves away
    /// from its neighbours (inverse-square forces), then renormalizes.
    pub fn optimize(&mut self, iters: usize, step: f64) {
        let m = self.directions.len();
        for _ in 0..iters {
            let snapshot = self.directions.clone();
            for i in 0..m {
                let mut force = [0.0; 3];
                for (j, other) in snapshot.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    let d = [
                        snapshot[i][0] - other[0],
                        snapshot[i][1] - other[1],
                        snapshot[i][2] - other[2],
                    ];
                    let r2 = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).max(1e-6);
                    for k in 0..3 {
                        force[k] += d[k] / (r2 * r2.sqrt());
                    }
                }
                for k in 0..3 {
                    self.directions[i][k] += step * force[k];
                }
                normalize3(&mut self.directions[i]);
            }
        }
    }

    /// Projects the shared directions onto one shape's surface.
    pub fn particles_for(&self, shape: &Shape) -> Particles {
        self.directions.iter().map(|&u| shape.surface_point(u)).collect()
    }

    /// Builds the cohort shape matrix: one row per shape, columns are the
    /// flattened particle coordinates `(m * 3)` — the input to Procrustes
    /// and PCA.
    pub fn shape_matrix(&self, shapes: &[Shape]) -> Matrix {
        let m = self.len();
        let mut out = Matrix::zeros(shapes.len(), m * 3);
        for (r, s) in shapes.iter().enumerate() {
            let parts = self.particles_for(s);
            let row = out.row_mut(r);
            for (k, p) in parts.iter().enumerate() {
                row[k * 3] = p[0];
                row[k * 3 + 1] = p[1];
                row[k * 3 + 2] = p[2];
            }
        }
        out
    }
}

fn normalize3(v: &mut Vec3) {
    let n = (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt().max(1e-12);
    for k in 0..3 {
        v[k] /= n;
    }
}

fn dist3(a: Vec3, b: Vec3) -> f64 {
    ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::EllipsoidFamily;

    #[test]
    fn optimization_improves_uniformity() {
        let mut rng = SplitMix64::new(1);
        let mut ps = ParticleSystem::random(32, &mut rng);
        let before = ps.uniformity();
        ps.optimize(60, 0.02);
        let after = ps.uniformity();
        assert!(after > before, "uniformity {before} -> {after}");
        // Approaches (within 2x) the Fibonacci reference.
        let reference = ParticleSystem::fibonacci(32).uniformity();
        assert!(after > reference * 0.5, "after {after} vs fib {reference}");
    }

    #[test]
    fn particles_lie_on_surfaces() {
        let mut rng = SplitMix64::new(2);
        let shapes = EllipsoidFamily::default().sample(5, &mut rng);
        let ps = ParticleSystem::fibonacci(64);
        for s in &shapes {
            for p in ps.particles_for(s) {
                assert!(s.on_surface(p, 1e-9));
            }
        }
    }

    #[test]
    fn correspondence_is_by_index() {
        // Particle k of a sphere scaled 2x is exactly 2x particle k of the
        // unit-ish sphere (same direction).
        let a = Shape { radii: [5.0, 5.0, 5.0], center: [0.0; 3], latent: vec![] };
        let b = Shape { radii: [10.0, 10.0, 10.0], center: [0.0; 3], latent: vec![] };
        let ps = ParticleSystem::fibonacci(16);
        let pa = ps.particles_for(&a);
        let pb = ps.particles_for(&b);
        for (x, y) in pa.iter().zip(&pb) {
            for k in 0..3 {
                assert!((y[k] - 2.0 * x[k]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn shape_matrix_dimensions() {
        let mut rng = SplitMix64::new(3);
        let shapes = EllipsoidFamily::default().sample(7, &mut rng);
        let ps = ParticleSystem::fibonacci(24);
        let m = ps.shape_matrix(&shapes);
        assert_eq!(m.shape(), (7, 72));
    }

    #[test]
    #[should_panic(expected = "at least two particles")]
    fn single_particle_panics() {
        let mut rng = SplitMix64::new(4);
        ParticleSystem::random(1, &mut rng);
    }

    #[test]
    fn optimization_is_deterministic() {
        let run = || {
            let mut rng = SplitMix64::new(5);
            let mut ps = ParticleSystem::random(16, &mut rng);
            ps.optimize(20, 0.02);
            ps.uniformity().to_bits()
        };
        assert_eq!(run(), run());
    }
}
