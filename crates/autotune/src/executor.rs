//! Schedule executors: real loop nests restructured by a [`Schedule`].
//!
//! Two backends play the paper's two compiler frameworks. Both realize the
//! same schedule IR but lower the innermost computation differently:
//!
//! * [`Backend::AxpyLowering`] — broadcast `A[i][k]` and update a row of C
//!   (`C[i][j..] += a * B[k][j..]`): streams through B rows, strong for
//!   compute-intense kernels with wide output rows (matmul family).
//! * [`Backend::DotLowering`] — accumulate `C[i][j] = Σ_k A[i][k]·B[k][j]`
//!   per output element: minimal output traffic, strong for matvec and
//!   convolutions, weaker for matmul (strided B access).
//!
//! Schedules found by tuning on one backend can be *replicated* on the
//! other — the §2.5 experiment — and every scheduled execution is checked
//! against the naive reference in tests.

use crate::kernels::{Kernel, Workload};
use crate::schedule::Schedule;
use std::time::Instant;

/// An executor backend (the "compiler framework").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Row-update lowering (plays the tuned-native framework, "TVM").
    AxpyLowering,
    /// Dot-product lowering (plays the replication target, "MLIR").
    DotLowering,
}

impl Backend {
    /// Both backends.
    pub fn all() -> [Backend; 2] {
        [Backend::AxpyLowering, Backend::DotLowering]
    }

    /// Short stable name.
    pub fn name(self) -> &'static str {
        match self {
            Backend::AxpyLowering => "axpy",
            Backend::DotLowering => "dot",
        }
    }
}

/// Executes `kernel` under `schedule` on `backend`, filling `w.c`.
/// Returns the wall-clock seconds of the compute (excluding buffer zeroing).
pub fn execute(kernel: &Kernel, schedule: Schedule, backend: Backend, w: &mut Workload) -> f64 {
    let s = schedule.clamped_for(kernel);
    w.c.fill(0.0);
    // treu-lint: allow(wall-clock, reason = "autotuning scores schedules by measured compute time")
    let start = Instant::now();
    match *kernel {
        Kernel::MatMul { m, k, n } => mm(&w.a, &w.b, &mut w.c, m, k, n, s, backend, false),
        Kernel::MatMulT { m, k, n } => mm(&w.a, &w.b, &mut w.c, m, k, n, s, backend, true),
        Kernel::MatVec { m, k } => mm(&w.a, &w.b, &mut w.c, m, k, 1, s, backend, false),
        Kernel::Conv1d { len, k } => conv1d(&w.a, &w.b, &mut w.c, len, k, s),
        Kernel::Conv2d { h, w: iw, k } => conv2d(&w.a, &w.b, &mut w.c, h, iw, k, s),
    }
    start.elapsed().as_secs_f64()
}

/// Tiled matmul family. `transposed` selects `A[k][i]` (stored `k x m`)
/// instead of `A[i][k]`.
#[allow(clippy::too_many_arguments)]
fn mm(
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    m: usize,
    kdim: usize,
    n: usize,
    s: Schedule,
    backend: Backend,
    transposed: bool,
) {
    let aidx = |i: usize, p: usize| if transposed { p * m + i } else { i * kdim + p };
    let do_rows = |i0: usize, i1: usize, c: &mut [f64]| {
        // c here covers rows [i0, i1); index rows relative to i0.
        for it in (i0..i1).step_by(s.tile_i) {
            let iend = (it + s.tile_i).min(i1);
            for kt in (0..kdim).step_by(s.tile_k) {
                let kend = (kt + s.tile_k).min(kdim);
                for jt in (0..n).step_by(s.tile_j) {
                    let jend = (jt + s.tile_j).min(n);
                    match backend {
                        Backend::AxpyLowering => {
                            for i in it..iend {
                                let crow = &mut c[(i - i0) * n..(i - i0 + 1) * n];
                                for p in kt..kend {
                                    let aip = a[aidx(i, p)];
                                    let brow = &b[p * n..(p + 1) * n];
                                    unrolled_axpy(
                                        aip,
                                        &brow[jt..jend],
                                        &mut crow[jt..jend],
                                        s.unroll,
                                    );
                                }
                            }
                        }
                        Backend::DotLowering => {
                            for i in it..iend {
                                for j in jt..jend {
                                    let mut acc = c[(i - i0) * n + j];
                                    acc += unrolled_strided_dot(
                                        a,
                                        b,
                                        aidx(i, kt),
                                        if transposed { m } else { 1 },
                                        kt * n + j,
                                        n,
                                        kend - kt,
                                        s.unroll,
                                    );
                                    c[(i - i0) * n + j] = acc;
                                }
                            }
                        }
                    }
                }
            }
        }
    };
    if s.threads <= 1 || m < 2 {
        do_rows(0, m, c);
    } else {
        treu_math::parallel::for_each_band(c, n, s.threads, |row0, band| {
            let rows = band.len() / n;
            do_rows(row0, row0 + rows, band);
        });
    }
}

/// `y += alpha * x` with a manual unroll factor.
fn unrolled_axpy(alpha: f64, x: &[f64], y: &mut [f64], unroll: usize) {
    let u = unroll.max(1);
    let chunks = x.len() / u;
    for cidx in 0..chunks {
        let base = cidx * u;
        for o in 0..u {
            y[base + o] += alpha * x[base + o];
        }
    }
    for i in chunks * u..x.len() {
        y[i] += alpha * x[i];
    }
}

/// Dot product of `len` elements, `a` starting at `a0` with stride
/// `a_stride`, `b` starting at `b0` with stride `b_stride`, with unrolled
/// accumulators.
#[allow(clippy::too_many_arguments)]
fn unrolled_strided_dot(
    a: &[f64],
    b: &[f64],
    a0: usize,
    a_stride: usize,
    b0: usize,
    b_stride: usize,
    len: usize,
    unroll: usize,
) -> f64 {
    let u = unroll.clamp(1, 8);
    let mut acc = [0.0f64; 8];
    let chunks = len / u;
    for cidx in 0..chunks {
        let base = cidx * u;
        for o in 0..u {
            let p = base + o;
            acc[o] += a[a0 + p * a_stride] * b[b0 + p * b_stride];
        }
    }
    let mut tail = 0.0;
    for p in chunks * u..len {
        tail += a[a0 + p * a_stride] * b[b0 + p * b_stride];
    }
    acc.iter().sum::<f64>() + tail
}

/// Tiled, unrolled 1-D convolution (output is one logical row, so the
/// parallel axis degenerates; `tile_j` tiles the output positions).
fn conv1d(a: &[f64], b: &[f64], c: &mut [f64], len: usize, k: usize, s: Schedule) {
    let out = len - k + 1;
    for t0 in (0..out).step_by(s.tile_j.max(1)) {
        let t1 = (t0 + s.tile_j.max(1)).min(out);
        for t in t0..t1 {
            c[t] = unrolled_strided_dot(a, b, t, 1, 0, 1, k, s.unroll);
        }
    }
}

/// Tiled, unrolled 2-D convolution; `tile_i`/`tile_j` tile output rows and
/// columns.
fn conv2d(a: &[f64], b: &[f64], c: &mut [f64], h: usize, iw: usize, k: usize, s: Schedule) {
    let oh = h - k + 1;
    let ow = iw - k + 1;
    for yt in (0..oh).step_by(s.tile_i.max(1)) {
        let yend = (yt + s.tile_i.max(1)).min(oh);
        for xt in (0..ow).step_by(s.tile_j.max(1)) {
            let xend = (xt + s.tile_j.max(1)).min(ow);
            for y in yt..yend {
                for x in xt..xend {
                    let mut acc = 0.0;
                    for dy in 0..k {
                        acc += unrolled_strided_dot(
                            a,
                            b,
                            (y + dy) * iw + x,
                            1,
                            dy * k,
                            1,
                            k,
                            s.unroll,
                        );
                    }
                    c[y * ow + x] = acc;
                }
            }
        }
    }
}

/// Maximum absolute difference between a scheduled execution and the naive
/// reference — the correctness oracle for the whole search space.
pub fn verify(kernel: &Kernel, schedule: Schedule, backend: Backend, seed: u64) -> f64 {
    let mut rng = treu_math::rng::SplitMix64::new(seed);
    let mut w = kernel.workload(&mut rng);
    let mut w_ref = w.clone();
    kernel.reference(&mut w_ref);
    execute(kernel, schedule, backend, &mut w);
    w.c.iter().zip(&w_ref.c).fold(0.0f64, |acc, (x, y)| acc.max((x - y).abs()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use treu_math::rng::SplitMix64;

    #[test]
    fn every_suite_kernel_correct_under_naive_and_reference_schedules() {
        for kern in Kernel::suite() {
            for backend in Backend::all() {
                for sched in [Schedule::naive(), Schedule::reference()] {
                    let d = verify(&kern, sched, backend, 42);
                    assert!(d < 1e-9, "{} {} {:?}: diff {d}", kern.name(), backend.name(), sched);
                }
            }
        }
    }

    #[test]
    fn random_schedules_are_always_correct() {
        let mut rng = SplitMix64::new(7);
        for kern in Kernel::suite() {
            for _ in 0..8 {
                let sched = Schedule::random(&mut rng);
                for backend in Backend::all() {
                    let d = verify(&kern, sched, backend, 11);
                    assert!(
                        d < 1e-9,
                        "{} {} {}: diff {d}",
                        kern.name(),
                        backend.name(),
                        sched.render()
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_schedules_are_correct() {
        let kern = Kernel::MatMul { m: 64, k: 32, n: 48 };
        for threads in [2, 4] {
            let sched = Schedule { threads, ..Schedule::reference() };
            for backend in Backend::all() {
                assert!(verify(&kern, sched, backend, 5) < 1e-9, "threads={threads}");
            }
        }
    }

    #[test]
    fn unrolled_axpy_matches_plain() {
        let x: Vec<f64> = (0..37).map(|i| i as f64 * 0.1).collect();
        for unroll in [1, 2, 4, 8] {
            let mut y = vec![1.0; 37];
            unrolled_axpy(2.0, &x, &mut y, unroll);
            for (i, v) in y.iter().enumerate() {
                assert!((v - (1.0 + 0.2 * i as f64)).abs() < 1e-12, "unroll {unroll}");
            }
        }
    }

    #[test]
    fn unrolled_strided_dot_matches_plain() {
        let a: Vec<f64> = (0..60).map(|i| (i as f64).sin()).collect();
        let b: Vec<f64> = (0..60).map(|i| (i as f64).cos()).collect();
        let plain: f64 = (0..10).map(|p| a[3 + p * 2] * b[1 + p * 5]).sum();
        for unroll in [1, 2, 3, 4, 8] {
            let v = unrolled_strided_dot(&a, &b, 3, 2, 1, 5, 10, unroll);
            assert!((v - plain).abs() < 1e-12, "unroll {unroll}");
        }
    }

    #[test]
    fn execute_reports_positive_time() {
        let kern = Kernel::MatMul { m: 32, k: 32, n: 32 };
        let mut rng = SplitMix64::new(1);
        let mut w = kern.workload(&mut rng);
        let t = execute(&kern, Schedule::reference(), Backend::AxpyLowering, &mut w);
        assert!(t >= 0.0);
        assert!(w.c.iter().any(|&v| v != 0.0));
    }
}
