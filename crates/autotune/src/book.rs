//! The schedule book: the autotune loop's output, closed back into the
//! math kernels.
//!
//! `treu tune` runs the genetic tuner over **real GEMM timings** per
//! [`ShapeClass`], records each class's winning [`Schedule`] in a
//! [`ScheduleBook`], persists the book content-addressed through
//! `treu-core::cache` (one blob under [`BOOK_KIND`]/[`BOOK_TAG`], so the
//! cache's fingerprint validation and atomic writes apply), and
//! [`ScheduleBook::install`] pushes the winners into
//! `treu_math::gemm`'s plan table — from then on every
//! `Matrix::matmul` in the process dispatches to its tuned plan.
//!
//! Timing is inherently wall-clock and machine-dependent, so *which*
//! schedule wins is environment, not result: every candidate plan computes
//! the bitwise-identical product (the ascending-k rule), and the tuner
//! re-verifies the winner against the naive kernel before it is admitted
//! to the book.

use crate::schedule::Schedule;
use crate::tuner::{GaParams, Tuner};
use std::collections::BTreeMap;
use std::time::Instant;
use treu_core::cache::RunCache;
use treu_math::gemm::{self, GemmPlan, ShapeClass};
use treu_math::rng::{derive_seed, SplitMix64};
use treu_math::Matrix;

/// Cache blob kind the book is persisted under.
pub const BOOK_KIND: &str = "schedule-book";
/// Cache blob tag (bump on format changes).
pub const BOOK_TAG: &str = "v1";

/// Shapes the spawn-overhead crossover probe sweeps (square extents).
const CROSSOVER_SIZES: [usize; 6] = [16, 24, 32, 48, 64, 96];

/// One tuned (kernel, shape-class) record.
#[derive(Debug, Clone, PartialEq)]
pub struct TunedEntry {
    /// Shape class the schedule was tuned for.
    pub class: ShapeClass,
    /// The concrete `(m, k, n)` workload the class was tuned on.
    pub shape: (usize, usize, usize),
    /// The GA's winning schedule.
    pub schedule: Schedule,
    /// Naive-kernel throughput on the tuning workload, GFLOP/s.
    pub naive_gflops: f64,
    /// Winning-schedule throughput on the tuning workload, GFLOP/s.
    pub tuned_gflops: f64,
}

impl TunedEntry {
    /// The GEMM plan this entry's schedule lowers to.
    pub fn plan(&self) -> GemmPlan {
        plan_from_schedule(&self.schedule)
    }
}

/// Lowers a schedule from the GA's discrete space into a [`GemmPlan`].
///
/// The schedule's tile axes are in register-quad units: each is scaled ×4
/// into a cache-block extent, so the GA's 1..=64 tile range spans
/// register-tile (4) to L2-panel (256) blocking. `unroll` maps directly to
/// the microkernel width and `threads` to the band-parallel worker count.
pub fn plan_from_schedule(s: &Schedule) -> GemmPlan {
    GemmPlan {
        mc: s.tile_i.saturating_mul(4).max(1),
        kc: s.tile_k.saturating_mul(4).max(1),
        nc: s.tile_j.saturating_mul(4).max(1),
        nr: s.unroll.max(1),
        threads: s.threads.max(1),
    }
}

/// The inverse lowering: a plan expressed back in the schedule IR (tile
/// axes in register-quad units). Used to let hand-written plans — like
/// the class default — compete in the tuner's bake-off and still be
/// recorded as schedules; such schedules may sit outside the GA's
/// discrete choice lists, which only constrain random generation.
///
/// Tiles are capped at 2^16 register-quads (a 262144-wide block after
/// lowering): the kernel clamps every plan to the actual shape anyway,
/// so the cap never changes a dispatched plan — it only keeps the
/// "unblocked" small-class default from rendering as `usize::MAX / 4`.
fn schedule_from_plan(p: &GemmPlan) -> Schedule {
    const TILE_CAP: usize = 1 << 16;
    Schedule {
        tile_i: (p.mc / 4).clamp(1, TILE_CAP),
        tile_j: (p.nc / 4).clamp(1, TILE_CAP),
        tile_k: (p.kc / 4).clamp(1, TILE_CAP),
        unroll: p.nr.max(1),
        threads: p.threads.max(1),
    }
}

/// The tuned-schedule registry: winning schedules per shape class plus the
/// measured sequential/parallel crossover, serializable to one cache blob.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct ScheduleBook {
    entries: BTreeMap<String, TunedEntry>,
    crossover: Option<usize>,
}

impl ScheduleBook {
    /// An empty book.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tuned classes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the book holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The tuned entry for a class, if any.
    pub fn entry(&self, class: ShapeClass) -> Option<&TunedEntry> {
        self.entries.get(&class.key())
    }

    /// All entries in class-key order.
    pub fn entries(&self) -> impl Iterator<Item = &TunedEntry> {
        self.entries.values()
    }

    /// The measured spawn-overhead crossover (output elements), if probed.
    pub fn crossover(&self) -> Option<usize> {
        self.crossover
    }

    /// Tunes the matmul kernel for the shape class of `(m, k, n)` with the
    /// genetic tuner over real timings of the schedule-driven kernel, and
    /// records the winner. Deterministic workload from `seed`; timing (and
    /// therefore which schedule wins) is machine-dependent, results never
    /// are — the winner is re-verified bitwise against the naive kernel.
    ///
    /// Returns the recorded entry.
    ///
    /// # Panics
    ///
    /// Panics if the winning schedule's product diverges bitwise from the
    /// naive kernel — that would be a determinism bug in the GEMM kernel,
    /// and admitting the schedule would poison every downstream matmul.
    pub fn tune_matmul(
        &mut self,
        (m, k, n): (usize, usize, usize),
        ga: GaParams,
        seed: u64,
        repeats: usize,
    ) -> &TunedEntry {
        let class = ShapeClass::of(m, k, n);
        let mut rng = SplitMix64::new(derive_seed(seed, "book.workload"));
        let a = Matrix::from_fn(m, k, |_, _| rng.next_gaussian());
        let b = Matrix::from_fn(k, n, |_, _| rng.next_gaussian());
        let reference = a.matmul_naive(&b);
        let mut tuner = Tuner::new(ga, derive_seed(seed, "book.ga"));
        let (ga_best, _) = tuner.tune(|s| {
            let plan = plan_from_schedule(&s).clamped(m, k, n);
            time_min(repeats, || a.matmul_with_plan(&b, &plan))
        });
        // The GA's reported cost is a minimum taken over many noisy
        // measurements, so it is biased optimistic — on a loaded machine a
        // mediocre schedule can "win" on a lucky sample. Before admission
        // the winner must beat the hand-written class default in a fresh
        // head-to-head timing at higher repeat count; the default is
        // expressible in the schedule IR, so the book's entry stays a
        // schedule either way.
        let bake = repeats.max(3);
        let naive_secs = time_min(bake, || a.matmul_naive(&b));
        let dflt = schedule_from_plan(&GemmPlan::default_for(class));
        let mut best = ga_best;
        let mut best_secs = f64::INFINITY;
        for cand in [ga_best, dflt] {
            let plan = plan_from_schedule(&cand).clamped(m, k, n);
            let secs = time_min(bake, || a.matmul_with_plan(&b, &plan));
            if secs < best_secs {
                best = cand;
                best_secs = secs;
            }
        }
        let plan = plan_from_schedule(&best).clamped(m, k, n);
        let tuned = a.matmul_with_plan(&b, &plan);
        assert_bitwise(&reference, &tuned, &format!("tuned schedule for class {}", class.key()));
        let flops = 2.0 * m as f64 * k as f64 * n as f64;
        let entry = TunedEntry {
            class,
            shape: (m, k, n),
            schedule: best,
            naive_gflops: gflops(flops, naive_secs),
            tuned_gflops: gflops(flops, best_secs),
        };
        self.entries.insert(class.key(), entry);
        self.entries.get(&class.key()).expect("entry just inserted")
    }

    /// Measures the spawn-overhead crossover: the smallest probed square
    /// GEMM whose band-parallel run at `jobs` workers beats the sequential
    /// run. Records `size²` (the output-element count) as the crossover;
    /// leaves the previous value when parallel never wins (callers then
    /// fall back to the historical constant).
    pub fn measure_crossover(&mut self, jobs: usize, seed: u64, repeats: usize) -> Option<usize> {
        if jobs <= 1 {
            return self.crossover;
        }
        let mut rng = SplitMix64::new(derive_seed(seed, "book.crossover"));
        for size in CROSSOVER_SIZES {
            let a = Matrix::from_fn(size, size, |_, _| rng.next_gaussian());
            let b = Matrix::from_fn(size, size, |_, _| rng.next_gaussian());
            let class = ShapeClass::of(size, size, size);
            let seq_plan = gemm::plan_for(class).sequential().clamped(size, size, size);
            let par_plan = seq_plan.with_threads(jobs);
            let seq = time_min(repeats, || a.matmul_with_plan(&b, &seq_plan));
            let par = time_min(repeats, || a.matmul_with_plan(&b, &par_plan));
            if par < seq {
                self.crossover = Some(size * size);
                return self.crossover;
            }
        }
        self.crossover
    }

    /// Installs the book into the process-global dispatch tables: every
    /// entry's plan into `treu_math::gemm`'s plan table, and the measured
    /// crossover (when present) as the parallel gate.
    pub fn install(&self) {
        for e in self.entries.values() {
            gemm::install_plan(e.class, e.plan().clamped_soft());
        }
        if let Some(c) = self.crossover {
            gemm::install_parallel_crossover(c);
        }
    }

    /// Serializes the book to its line format (one entry per line,
    /// `matmul <class> <m> <k> <n> <tile_i> <tile_j> <tile_k> <unroll>
    /// <threads> <naive_gflops> <tuned_gflops>`, plus an optional
    /// `crossover <elems>` line).
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        for e in self.entries.values() {
            let s = &e.schedule;
            out.push_str(&format!(
                "matmul {} {} {} {} {} {} {} {} {} {:.4} {:.4}\n",
                e.class.key(),
                e.shape.0,
                e.shape.1,
                e.shape.2,
                s.tile_i,
                s.tile_j,
                s.tile_k,
                s.unroll,
                s.threads,
                e.naive_gflops,
                e.tuned_gflops,
            ));
        }
        if let Some(c) = self.crossover {
            out.push_str(&format!("crossover {c}\n"));
        }
        out
    }

    /// Parses a book serialized by [`ScheduleBook::serialize`]. Unknown or
    /// malformed lines are skipped (forward compatibility), so a partially
    /// readable book degrades to fewer tuned classes, never an error.
    pub fn parse(payload: &str) -> Self {
        let mut book = Self::new();
        for line in payload.lines() {
            let parts: Vec<&str> = line.split_whitespace().collect();
            match parts.as_slice() {
                ["crossover", c] => {
                    book.crossover = c.parse::<usize>().ok().filter(|&v| v > 0);
                }
                ["matmul", key, m, k, n, ti, tj, tk, un, th, ng, tg] => {
                    let parsed = (|| {
                        let class = ShapeClass::parse_key(key)?;
                        Some(TunedEntry {
                            class,
                            shape: (m.parse().ok()?, k.parse().ok()?, n.parse().ok()?),
                            schedule: Schedule {
                                tile_i: ti.parse().ok()?,
                                tile_j: tj.parse().ok()?,
                                tile_k: tk.parse().ok()?,
                                unroll: un.parse().ok()?,
                                threads: th.parse().ok()?,
                            },
                            naive_gflops: ng.parse().ok()?,
                            tuned_gflops: tg.parse().ok()?,
                        })
                    })();
                    if let Some(e) = parsed {
                        book.entries.insert(e.class.key(), e);
                    }
                }
                _ => {}
            }
        }
        book
    }

    /// Loads the persisted book from a run cache; empty book on miss.
    pub fn load(cache: &RunCache) -> Self {
        match cache.lookup_blob(BOOK_KIND, BOOK_TAG) {
            Some(payload) => Self::parse(&payload),
            None => Self::new(),
        }
    }

    /// Persists the book through the cache's atomic content-addressed blob
    /// store.
    pub fn persist(&self, cache: &RunCache) -> std::io::Result<()> {
        cache.store_blob(BOOK_KIND, BOOK_TAG, &self.serialize())
    }

    /// Human-readable table for CLI output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("class  shape              schedule                                            naive    tuned  speedup\n");
        for e in self.entries.values() {
            let (m, k, n) = e.shape;
            let speedup = if e.naive_gflops > 0.0 { e.tuned_gflops / e.naive_gflops } else { 0.0 };
            out.push_str(&format!(
                "{:<6} {:<18} {:<51} {:>6.2} {:>8.2} {:>7.2}x\n",
                e.class.key(),
                format!("{m}x{k}x{n}"),
                e.schedule.render(),
                e.naive_gflops,
                e.tuned_gflops,
                speedup,
            ));
        }
        match self.crossover {
            Some(c) => out.push_str(&format!("parallel crossover: {c} output elements\n")),
            None => out.push_str(&format!(
                "parallel crossover: not measured (fallback {})\n",
                gemm::FALLBACK_PARALLEL_CROSSOVER
            )),
        }
        out
    }
}

/// A plan clamp that keeps extents sane without knowing the final shape
/// (the per-call clamp in the kernel handles that): only normalizes nr and
/// threads.
trait ClampSoft {
    fn clamped_soft(self) -> Self;
}

impl ClampSoft for GemmPlan {
    fn clamped_soft(self) -> Self {
        GemmPlan { threads: self.threads.max(1), ..self }
    }
}

fn gflops(flops: f64, secs: f64) -> f64 {
    if secs > 0.0 {
        flops / secs / 1e9
    } else {
        0.0
    }
}

/// Minimum wall time of `repeats` runs of `f` — minimum, not mean, because
/// scheduling noise only ever adds time.
fn time_min<T>(repeats: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        // treu-lint: allow(wall-clock, reason = "kernel timing is the tuner's fitness signal; report-only, never fingerprinted")
        let t0 = Instant::now();
        let _keep = f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn assert_bitwise(want: &Matrix, got: &Matrix, ctx: &str) {
    assert_eq!(want.shape(), got.shape(), "{ctx}: shape mismatch");
    for (i, (a, b)) in want.as_slice().iter().zip(got.as_slice()).enumerate() {
        assert!(
            a.to_bits() == b.to_bits(),
            "{ctx}: element {i} diverges bitwise ({a} vs {b}) — determinism bug"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ga() -> GaParams {
        GaParams { population: 4, generations: 2, tournament: 2, elites: 1, ..GaParams::default() }
    }

    #[test]
    fn plan_lowering_scales_tiles() {
        let s = Schedule { tile_i: 16, tile_j: 32, tile_k: 64, unroll: 8, threads: 2 };
        let p = plan_from_schedule(&s);
        assert_eq!(p, GemmPlan { mc: 64, kc: 256, nc: 128, nr: 8, threads: 2 });
        let naive = plan_from_schedule(&Schedule::naive());
        assert_eq!((naive.mc, naive.kc, naive.nc, naive.nr, naive.threads), (4, 4, 4, 1, 1));
    }

    #[test]
    fn tune_records_a_verified_entry() {
        let mut book = ScheduleBook::new();
        let e = book.tune_matmul((24, 18, 20), tiny_ga(), 7, 1).clone();
        assert_eq!(e.class, ShapeClass::of(24, 18, 20));
        assert_eq!(e.shape, (24, 18, 20));
        assert!(e.tuned_gflops > 0.0 && e.naive_gflops > 0.0);
        assert_eq!(book.len(), 1);
        assert_eq!(book.entry(e.class), Some(&e));
    }

    #[test]
    fn serialize_parse_roundtrip() {
        let mut book = ScheduleBook::new();
        book.tune_matmul((20, 12, 16), tiny_ga(), 3, 1);
        book.tune_matmul((70, 12, 16), tiny_ga(), 4, 1);
        book.crossover = Some(2304);
        let text = book.serialize();
        let parsed = ScheduleBook::parse(&text);
        assert_eq!(parsed.len(), book.len());
        assert_eq!(parsed.crossover(), Some(2304));
        for (a, b) in parsed.entries().zip(book.entries()) {
            assert_eq!(a.class, b.class);
            assert_eq!(a.schedule, b.schedule);
            assert_eq!(a.shape, b.shape);
        }
    }

    #[test]
    fn parse_skips_garbage_lines() {
        let text =
            "matmul zzz 1 2\nnot-a-line\ncrossover 100\nmatmul mmm 64 64 64 8 8 8 4 1 1.0 2.0\n";
        let book = ScheduleBook::parse(text);
        assert_eq!(book.len(), 1);
        assert_eq!(book.crossover(), Some(100));
        let e = book.entries().next().unwrap();
        assert_eq!(e.class, ShapeClass::of(64, 64, 64));
        assert_eq!(e.schedule.unroll, 4);
    }

    #[test]
    fn install_pushes_plans_into_the_dispatch_table() {
        let mut book = ScheduleBook::new();
        // A deliberately odd class no default workload hits: m Huge, k Tiny.
        let e = book.tune_matmul((1030, 4, 20), tiny_ga(), 9, 1).clone();
        book.install();
        let installed = gemm::installed_plan(e.class).expect("plan installed");
        assert_eq!(installed.nr, plan_from_schedule(&e.schedule).nr);
    }

    #[test]
    fn crossover_measurement_is_bounded_and_optional() {
        let mut book = ScheduleBook::new();
        let before = book.crossover();
        assert_eq!(before, None);
        // jobs=1 cannot beat itself: measurement declines to run.
        assert_eq!(book.measure_crossover(1, 1, 1), None);
        let measured = book.measure_crossover(2, 1, 1);
        if let Some(c) = measured {
            let max = CROSSOVER_SIZES[CROSSOVER_SIZES.len() - 1];
            assert!(c >= CROSSOVER_SIZES[0] * CROSSOVER_SIZES[0] && c <= max * max);
        }
    }

    #[test]
    fn render_mentions_every_class() {
        let mut book = ScheduleBook::new();
        book.tune_matmul((20, 12, 16), tiny_ga(), 3, 1);
        let r = book.render();
        assert!(r.contains("ss") || r.contains("st"), "render: {r}");
        assert!(r.contains("crossover"));
    }

    #[test]
    fn cache_roundtrip() {
        let dir = std::env::temp_dir().join(format!("treu-book-{}", std::process::id()));
        let cache = RunCache::open(&dir).expect("open cache");
        let mut book = ScheduleBook::new();
        book.tune_matmul((20, 12, 16), tiny_ga(), 3, 1);
        book.persist(&cache).expect("persist");
        let loaded = ScheduleBook::load(&cache);
        assert_eq!(loaded.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
