//! Deterministic analytic cost model.
//!
//! Harnessed experiments need seed-stable fitness, and wall-clock time is
//! environment, not result — so the tuner's experiments run on this model
//! while the criterion benches time the real executors to validate its
//! ranking. The model is a standard loop-nest estimate: MAC count scaled by
//! (a) a backend/kernel affinity factor for the inner-loop access pattern,
//! (b) a cache factor from the tile working set, (c) loop-overhead factors
//! for degenerate tiles, (d) an unroll-efficiency factor with a register-
//! pressure penalty at 8×, and (e) parallel speedup with a per-thread spawn
//! overhead. Units are abstract "cycles".

use crate::executor::Backend;
use crate::kernels::Kernel;
use crate::schedule::Schedule;

/// Modelled cache sizes (bytes).
const L1_BYTES: f64 = 32.0 * 1024.0;
/// L2 size used by the cache factor.
const L2_BYTES: f64 = 256.0 * 1024.0;
/// Spawn overhead per extra thread, in model cycles.
const SPAWN_OVERHEAD: f64 = 50_000.0;

/// Estimated cost (abstract cycles) of executing `kernel` under
/// `schedule` on `backend`.
pub fn estimate(kernel: &Kernel, schedule: Schedule, backend: Backend) -> f64 {
    let s = schedule.clamped_for(kernel);
    let macs = kernel.flops() as f64 / 2.0;

    // (a) Backend/kernel affinity: how the lowering's inner access pattern
    // matches the kernel's layout.
    let (_, out_cols) = kernel.output_shape();
    let affinity = match (backend, kernel) {
        // Row updates need wide rows to amortize; degenerate at n = 1.
        (Backend::AxpyLowering, Kernel::MatVec { .. }) => 1.6,
        (Backend::AxpyLowering, Kernel::Conv1d { .. }) => 1.4,
        (Backend::AxpyLowering, _) => 1.0,
        // Dot lowering strides through B with stride n in the matmul
        // family: each element lands on a fresh cache line when n is wide.
        (Backend::DotLowering, Kernel::MatMul { .. }) => 1.9,
        (Backend::DotLowering, Kernel::MatMulT { .. }) => 2.1,
        // Contiguous operands: dot lowering is the natural fit.
        (Backend::DotLowering, Kernel::MatVec { .. }) => 1.0,
        (Backend::DotLowering, Kernel::Conv1d { .. }) => 1.0,
        (Backend::DotLowering, Kernel::Conv2d { .. }) => 1.1,
    };

    // (b) Cache factor from the per-tile working set.
    let ws = 8.0
        * (s.tile_i * s.tile_k + s.tile_k * s.tile_j.min(out_cols) + s.tile_i * s.tile_j) as f64;
    let cache = if ws <= L1_BYTES {
        1.0
    } else if ws <= L2_BYTES {
        1.35
    } else {
        2.2
    };

    // (c) Loop overhead: unit tiles re-enter loop prologues constantly.
    let overhead =
        1.0 + 1.5 / s.tile_k as f64 + 0.5 / s.tile_j.max(1) as f64 + 0.25 / s.tile_i.max(1) as f64;

    // (d) Unroll efficiency, with register pressure at 8.
    let unroll = match s.unroll {
        1 => 1.0,
        2 => 0.88,
        4 => 0.81,
        _ => 0.84,
    };

    // (e) Parallelism (conv1d's single output row cannot parallelize).
    let parallelizable = !matches!(kernel, Kernel::Conv1d { .. });
    let threads = if parallelizable { s.threads.max(1) as f64 } else { 1.0 };
    let spawn = if parallelizable { SPAWN_OVERHEAD * (s.threads.max(1) - 1) as f64 } else { 0.0 };

    macs * affinity * cache * overhead * unroll / threads + spawn
}

/// Model GFLOP/s for reporting (`flops / cost`, scaled so the naive matmul
/// lands at a plausible single-core figure).
pub fn model_gflops(kernel: &Kernel, schedule: Schedule, backend: Backend) -> f64 {
    // One model cycle ≈ 1/3.5e9 s (a 3.5 GHz scalar MAC machine).
    let seconds = estimate(kernel, schedule, backend) / 3.5e9;
    kernel.flops() as f64 / seconds / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_beats_naive_everywhere() {
        for kern in Kernel::suite() {
            for backend in Backend::all() {
                let n = estimate(&kern, Schedule::naive(), backend);
                let r = estimate(&kern, Schedule::reference(), backend);
                assert!(r < n, "{} {}: ref {r} vs naive {n}", kern.name(), backend.name());
            }
        }
    }

    #[test]
    fn matvec_prefers_dot_lowering() {
        let k = Kernel::MatVec { m: 256, k: 256 };
        let s = Schedule::reference();
        assert!(estimate(&k, s, Backend::DotLowering) < estimate(&k, s, Backend::AxpyLowering));
    }

    #[test]
    fn matmul_prefers_axpy_lowering() {
        let k = Kernel::MatMul { m: 96, k: 96, n: 96 };
        let s = Schedule::reference();
        assert!(estimate(&k, s, Backend::AxpyLowering) < estimate(&k, s, Backend::DotLowering));
    }

    #[test]
    fn threads_help_large_kernels_but_cost_spawn() {
        let k = Kernel::MatMul { m: 96, k: 96, n: 96 };
        let s1 = Schedule::reference();
        let s4 = Schedule { threads: 4, ..s1 };
        assert!(estimate(&k, s4, Backend::AxpyLowering) < estimate(&k, s1, Backend::AxpyLowering));
        // Tiny kernel: spawn overhead dominates.
        let tiny = Kernel::MatVec { m: 8, k: 8 };
        assert!(
            estimate(&tiny, s4, Backend::DotLowering) > estimate(&tiny, s1, Backend::DotLowering)
        );
    }

    #[test]
    fn conv1d_ignores_thread_axis() {
        let k = Kernel::Conv1d { len: 4096, k: 16 };
        let s1 = Schedule::reference();
        let s4 = Schedule { threads: 4, ..s1 };
        assert_eq!(estimate(&k, s1, Backend::DotLowering), estimate(&k, s4, Backend::DotLowering));
    }

    #[test]
    fn cost_is_deterministic_and_positive() {
        for kern in Kernel::suite() {
            let c = estimate(&kern, Schedule::reference(), Backend::AxpyLowering);
            assert!(c > 0.0);
            assert_eq!(c, estimate(&kern, Schedule::reference(), Backend::AxpyLowering));
        }
    }

    #[test]
    fn model_gflops_sane_range() {
        let k = Kernel::MatMul { m: 96, k: 96, n: 96 };
        let g = model_gflops(&k, Schedule::reference(), Backend::AxpyLowering);
        assert!(g > 0.5 && g < 100.0, "model gflops {g}");
    }
}
