//! The schedule IR: the transformations a "scheduling language" exposes.
//!
//! A [`Schedule`] is the compiler-agnostic description of how to execute a
//! kernel — tile sizes for the two output dimensions and the reduction,
//! an unroll factor for the innermost loop, and a worker count. The
//! genetic tuner searches this space; either executor backend can realize
//! any schedule (the crate's stand-in for "expressing Ansor's schedules in
//! MLIR's transform dialect").

use crate::kernels::Kernel;
use treu_math::rng::SplitMix64;

/// Tile/unroll/parallelism choices for one kernel execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Schedule {
    /// Tile size along the first output dimension.
    pub tile_i: usize,
    /// Tile size along the second output dimension.
    pub tile_j: usize,
    /// Tile size along the reduction dimension.
    pub tile_k: usize,
    /// Innermost-loop unroll factor (1, 2, 4 or 8).
    pub unroll: usize,
    /// Worker threads for the outer tile loop.
    pub threads: usize,
}

/// Candidate values per axis — the discrete search space.
pub const TILE_CHOICES: [usize; 6] = [1, 4, 8, 16, 32, 64];
/// Unroll factor choices.
pub const UNROLL_CHOICES: [usize; 4] = [1, 2, 4, 8];
/// Thread-count choices.
pub const THREAD_CHOICES: [usize; 3] = [1, 2, 4];

impl Schedule {
    /// The untransformed default: unit tiles, no unrolling, single thread.
    /// This plays the role of the unscheduled (naive compiler) baseline.
    pub fn naive() -> Self {
        Self { tile_i: 1, tile_j: 1, tile_k: 1, unroll: 1, threads: 1 }
    }

    /// A sensible hand-written default (the "reference schedule" a compiler
    /// ships): 16×16 output tiles, full-depth reduction tiles, 4× unroll.
    pub fn reference() -> Self {
        Self { tile_i: 16, tile_j: 16, tile_k: 64, unroll: 4, threads: 1 }
    }

    /// Draws a uniformly random schedule from the discrete space.
    pub fn random(rng: &mut SplitMix64) -> Self {
        let pick =
            |rng: &mut SplitMix64, xs: &[usize]| xs[rng.next_bounded(xs.len() as u64) as usize];
        Self {
            tile_i: pick(rng, &TILE_CHOICES),
            tile_j: pick(rng, &TILE_CHOICES),
            tile_k: pick(rng, &TILE_CHOICES),
            unroll: pick(rng, &UNROLL_CHOICES),
            threads: pick(rng, &THREAD_CHOICES),
        }
    }

    /// Clamps tiles to the kernel's actual extents (a schedule is valid for
    /// every kernel after clamping, mirroring how scheduling languages
    /// handle partial tiles).
    pub fn clamped_for(mut self, kernel: &Kernel) -> Self {
        let (oi, oj) = kernel.output_shape();
        let kk = kernel.reduction_len();
        self.tile_i = self.tile_i.min(oi.max(1));
        self.tile_j = self.tile_j.min(oj.max(1));
        self.tile_k = self.tile_k.min(kk.max(1));
        self
    }

    /// Mutates one axis at random (the GA's mutation operator).
    pub fn mutate(mut self, rng: &mut SplitMix64) -> Self {
        let pick =
            |rng: &mut SplitMix64, xs: &[usize]| xs[rng.next_bounded(xs.len() as u64) as usize];
        match rng.next_bounded(5) {
            0 => self.tile_i = pick(rng, &TILE_CHOICES),
            1 => self.tile_j = pick(rng, &TILE_CHOICES),
            2 => self.tile_k = pick(rng, &TILE_CHOICES),
            3 => self.unroll = pick(rng, &UNROLL_CHOICES),
            _ => self.threads = pick(rng, &THREAD_CHOICES),
        }
        self
    }

    /// Uniform crossover (the GA's recombination operator).
    pub fn crossover(self, other: Schedule, rng: &mut SplitMix64) -> Self {
        let flip = |rng: &mut SplitMix64, a, b| if rng.next_f64() < 0.5 { a } else { b };
        Self {
            tile_i: flip(rng, self.tile_i, other.tile_i),
            tile_j: flip(rng, self.tile_j, other.tile_j),
            tile_k: flip(rng, self.tile_k, other.tile_k),
            unroll: flip(rng, self.unroll, other.unroll),
            threads: flip(rng, self.threads, other.threads),
        }
    }

    /// Renders the schedule as transform-dialect-style text — the "schedule
    /// as code" representation the MLIR lesson demonstrates.
    pub fn render(&self) -> String {
        format!(
            "tile(i={}, j={}, k={}) |> unroll({}) |> parallelize(threads={})",
            self.tile_i, self.tile_j, self.tile_k, self.unroll, self.threads
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_schedules_are_in_space() {
        let mut rng = SplitMix64::new(1);
        for _ in 0..200 {
            let s = Schedule::random(&mut rng);
            assert!(TILE_CHOICES.contains(&s.tile_i));
            assert!(TILE_CHOICES.contains(&s.tile_j));
            assert!(TILE_CHOICES.contains(&s.tile_k));
            assert!(UNROLL_CHOICES.contains(&s.unroll));
            assert!(THREAD_CHOICES.contains(&s.threads));
        }
    }

    #[test]
    fn clamping_respects_kernel_extents() {
        let s = Schedule { tile_i: 64, tile_j: 64, tile_k: 64, unroll: 8, threads: 4 };
        let k = Kernel::MatVec { m: 10, k: 3 };
        let c = s.clamped_for(&k);
        assert_eq!(c.tile_i, 10);
        assert_eq!(c.tile_j, 1);
        assert_eq!(c.tile_k, 3);
    }

    #[test]
    fn mutation_changes_exactly_one_axis_value_or_is_lateral() {
        let mut rng = SplitMix64::new(2);
        let base = Schedule::reference();
        let mut changed = 0;
        for _ in 0..100 {
            let m = base.mutate(&mut rng);
            let diffs = [
                m.tile_i != base.tile_i,
                m.tile_j != base.tile_j,
                m.tile_k != base.tile_k,
                m.unroll != base.unroll,
                m.threads != base.threads,
            ]
            .iter()
            .filter(|&&d| d)
            .count();
            assert!(diffs <= 1, "mutation touched {diffs} axes");
            changed += diffs;
        }
        assert!(changed > 30, "mutation should usually change something");
    }

    #[test]
    fn crossover_takes_fields_from_parents() {
        let mut rng = SplitMix64::new(3);
        let a = Schedule::naive();
        let b = Schedule { tile_i: 64, tile_j: 64, tile_k: 64, unroll: 8, threads: 4 };
        for _ in 0..50 {
            let c = a.crossover(b, &mut rng);
            assert!(c.tile_i == a.tile_i || c.tile_i == b.tile_i);
            assert!(c.unroll == a.unroll || c.unroll == b.unroll);
        }
    }

    #[test]
    fn render_mentions_all_axes() {
        let s = Schedule::reference();
        let r = s.render();
        assert!(r.contains("tile(i=16"));
        assert!(r.contains("unroll(4)"));
        assert!(r.contains("threads=1"));
    }
}
