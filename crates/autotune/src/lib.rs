//! `treu-autotune` — compiler scheduling and autotuning for ML primitives
//! (paper §2.5).
//!
//! The project: students "used an autotuner called Ansor to generate the
//! best schedule for a set of kernels for the state-of-the-art TVM
//! compiler. Ansor uses genetic algorithms to generate potential
//! candidates. Students were interested in whether the schedules in Ansor
//! could be replicated in another compiler framework, MLIR ... and achieve
//! the same performance." The kernel suite is the paper's own lesson list:
//! matrix-vector multiplication, conv1d, conv2d, transposed matrix-matrix
//! multiplication, and matrix-matrix multiplication; the roofline model is
//! the performance-analysis lesson.
//!
//! The substitution (DESIGN.md §2): instead of TVM and MLIR this crate has
//! one **schedule IR** ([`schedule::Schedule`]: tiling, unrolling,
//! parallelization, lowering strategy) and two executable **backends**
//! ([`executor::Backend::AxpyLowering`] and `DotLowering`) that play the
//! roles of the two frameworks. Everything runs for real: schedules
//! restructure actual Rust loop nests over actual buffers, the genetic
//! tuner ([`tuner`]) searches the real space, and correctness of every
//! scheduled variant is checked against the naive kernel. A deterministic
//! [`cost`] model provides seed-stable fitness for harnessed experiments;
//! the criterion benches time the real executors to validate the model's
//! ranking.

#![forbid(unsafe_code)]
// Indexed loops over multiple parallel arrays are the clearest idiom in
// this crate's numeric kernels; the zip-chain rewrite the lint suggests
// obscures them.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod book;
pub mod cost;
pub mod executor;
pub mod experiment;
pub mod kernels;
pub mod roofline;
pub mod schedule;
pub mod tuner;

pub use book::ScheduleBook;
pub use kernels::Kernel;
pub use schedule::Schedule;
pub use tuner::{GaParams, Tuner};
