//! The kernel suite: the five ML primitives from the paper's compiler
//! lessons, with reference implementations and workload generators.

use treu_math::rng::SplitMix64;

/// A kernel instance (shape included).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// `C[m,n] = A[m,k] * B[k,n]`.
    MatMul {
        /// Rows of A/C.
        m: usize,
        /// Inner dimension.
        k: usize,
        /// Columns of B/C.
        n: usize,
    },
    /// `C[m,n] = A^T[m,k] * B[k,n]` with `A` stored `k x m` (transposed
    /// access on the left operand).
    MatMulT {
        /// Rows of the logical A/C.
        m: usize,
        /// Inner dimension.
        k: usize,
        /// Columns of B/C.
        n: usize,
    },
    /// `y[m] = A[m,k] * x[k]`.
    MatVec {
        /// Rows.
        m: usize,
        /// Columns.
        k: usize,
    },
    /// 1-D valid convolution of a length-`len` signal with a `k`-tap filter.
    Conv1d {
        /// Signal length.
        len: usize,
        /// Filter taps.
        k: usize,
    },
    /// 2-D valid convolution of an `h x w` image with a `k x k` filter.
    Conv2d {
        /// Image height.
        h: usize,
        /// Image width.
        w: usize,
        /// Filter side.
        k: usize,
    },
}

/// Input/output buffers for one kernel execution.
#[derive(Debug, Clone)]
pub struct Workload {
    /// First operand, row-major.
    pub a: Vec<f64>,
    /// Second operand.
    pub b: Vec<f64>,
    /// Output buffer (zeroed).
    pub c: Vec<f64>,
}

impl Kernel {
    /// The paper's five-kernel suite at a laptop-scale default size.
    pub fn suite() -> [Kernel; 5] {
        [
            Kernel::MatMul { m: 96, k: 96, n: 96 },
            Kernel::MatMulT { m: 96, k: 96, n: 96 },
            Kernel::MatVec { m: 256, k: 256 },
            Kernel::Conv1d { len: 4096, k: 16 },
            Kernel::Conv2d { h: 64, w: 64, k: 5 },
        ]
    }

    /// Short stable name.
    pub fn name(&self) -> &'static str {
        match self {
            Kernel::MatMul { .. } => "matmul",
            Kernel::MatMulT { .. } => "matmul_t",
            Kernel::MatVec { .. } => "matvec",
            Kernel::Conv1d { .. } => "conv1d",
            Kernel::Conv2d { .. } => "conv2d",
        }
    }

    /// Floating-point operations (multiply-adds counted as 2).
    pub fn flops(&self) -> u64 {
        match *self {
            Kernel::MatMul { m, k, n } | Kernel::MatMulT { m, k, n } => 2 * (m * k * n) as u64,
            Kernel::MatVec { m, k } => 2 * (m * k) as u64,
            Kernel::Conv1d { len, k } => 2 * ((len - k + 1) * k) as u64,
            Kernel::Conv2d { h, w, k } => 2 * ((h - k + 1) * (w - k + 1) * k * k) as u64,
        }
    }

    /// Minimum bytes that must cross memory (each input read once, output
    /// written once) — the roofline's traffic floor.
    pub fn min_bytes(&self) -> u64 {
        let (ra, rb, wc) = match *self {
            Kernel::MatMul { m, k, n } | Kernel::MatMulT { m, k, n } => (m * k, k * n, m * n),
            Kernel::MatVec { m, k } => (m * k, k, m),
            Kernel::Conv1d { len, k } => (len, k, len - k + 1),
            Kernel::Conv2d { h, w, k } => (h * w, k * k, (h - k + 1) * (w - k + 1)),
        };
        8 * (ra + rb + wc) as u64
    }

    /// Arithmetic intensity in FLOPs per byte.
    pub fn arithmetic_intensity(&self) -> f64 {
        self.flops() as f64 / self.min_bytes() as f64
    }

    /// Buffer lengths `(|a|, |b|, |c|)`.
    pub fn buffer_sizes(&self) -> (usize, usize, usize) {
        match *self {
            Kernel::MatMul { m, k, n } | Kernel::MatMulT { m, k, n } => (m * k, k * n, m * n),
            Kernel::MatVec { m, k } => (m * k, k, m),
            Kernel::Conv1d { len, k } => (len, k, len - k + 1),
            Kernel::Conv2d { h, w, k } => (h * w, k * k, (h - k + 1) * (w - k + 1)),
        }
    }

    /// Generates a deterministic random workload.
    pub fn workload(&self, rng: &mut SplitMix64) -> Workload {
        let (sa, sb, sc) = self.buffer_sizes();
        let mut a = vec![0.0; sa];
        let mut b = vec![0.0; sb];
        treu_math::rng::fill_uniform(rng, &mut a, -1.0, 1.0);
        treu_math::rng::fill_uniform(rng, &mut b, -1.0, 1.0);
        Workload { a, b, c: vec![0.0; sc] }
    }

    /// Reference (naive, obviously-correct) execution into `w.c`.
    pub fn reference(&self, w: &mut Workload) {
        w.c.fill(0.0);
        match *self {
            Kernel::MatMul { m, k, n } => {
                for i in 0..m {
                    for p in 0..k {
                        let aip = w.a[i * k + p];
                        for j in 0..n {
                            w.c[i * n + j] += aip * w.b[p * n + j];
                        }
                    }
                }
            }
            Kernel::MatMulT { m, k, n } => {
                // A stored k x m; logical A[i][p] = a[p*m + i].
                for i in 0..m {
                    for p in 0..k {
                        let aip = w.a[p * m + i];
                        for j in 0..n {
                            w.c[i * n + j] += aip * w.b[p * n + j];
                        }
                    }
                }
            }
            Kernel::MatVec { m, k } => {
                for i in 0..m {
                    let mut acc = 0.0;
                    for p in 0..k {
                        acc += w.a[i * k + p] * w.b[p];
                    }
                    w.c[i] = acc;
                }
            }
            Kernel::Conv1d { len, k } => {
                for t in 0..len - k + 1 {
                    let mut acc = 0.0;
                    for p in 0..k {
                        acc += w.a[t + p] * w.b[p];
                    }
                    w.c[t] = acc;
                }
            }
            Kernel::Conv2d { h, w: iw, k } => {
                let oh = h - k + 1;
                let ow = iw - k + 1;
                for y in 0..oh {
                    for x in 0..ow {
                        let mut acc = 0.0;
                        for dy in 0..k {
                            for dx in 0..k {
                                acc += w.a[(y + dy) * iw + (x + dx)] * w.b[dy * k + dx];
                            }
                        }
                        w.c[y * ow + x] = acc;
                    }
                }
            }
        }
    }

    /// Logical output dimensions `(rows, cols)` used by the tiled executor.
    pub fn output_shape(&self) -> (usize, usize) {
        match *self {
            Kernel::MatMul { m, n, .. } | Kernel::MatMulT { m, n, .. } => (m, n),
            Kernel::MatVec { m, .. } => (m, 1),
            Kernel::Conv1d { len, k } => (1, len - k + 1),
            Kernel::Conv2d { h, w, k } => (h - k + 1, w - k + 1),
        }
    }

    /// Reduction depth (the `k` loop the schedule may tile).
    pub fn reduction_len(&self) -> usize {
        match *self {
            Kernel::MatMul { k, .. } | Kernel::MatMulT { k, .. } | Kernel::MatVec { k, .. } => k,
            Kernel::Conv1d { k, .. } => k,
            Kernel::Conv2d { k, .. } => k * k,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flops_and_bytes_positive_for_suite() {
        for kern in Kernel::suite() {
            assert!(kern.flops() > 0, "{}", kern.name());
            assert!(kern.min_bytes() > 0);
            assert!(kern.arithmetic_intensity() > 0.0);
        }
    }

    #[test]
    fn matmul_is_compute_intense_matvec_is_not() {
        let mm = Kernel::MatMul { m: 96, k: 96, n: 96 };
        let mv = Kernel::MatVec { m: 256, k: 256 };
        assert!(
            mm.arithmetic_intensity() > 10.0 * mv.arithmetic_intensity(),
            "matmul AI {} vs matvec {}",
            mm.arithmetic_intensity(),
            mv.arithmetic_intensity()
        );
    }

    #[test]
    fn reference_matmul_matches_treu_math() {
        let kern = Kernel::MatMul { m: 7, k: 5, n: 6 };
        let mut rng = SplitMix64::new(1);
        let mut w = kern.workload(&mut rng);
        kern.reference(&mut w);
        let a = treu_math::Matrix::from_vec(7, 5, w.a.clone());
        let b = treu_math::Matrix::from_vec(5, 6, w.b.clone());
        let c = a.matmul(&b);
        for (x, y) in w.c.iter().zip(c.as_slice()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn reference_matmul_t_matches_explicit_transpose() {
        let kern = Kernel::MatMulT { m: 4, k: 6, n: 5 };
        let mut rng = SplitMix64::new(2);
        let mut w = kern.workload(&mut rng);
        kern.reference(&mut w);
        let at = treu_math::Matrix::from_vec(6, 4, w.a.clone()); // k x m
        let b = treu_math::Matrix::from_vec(6, 5, w.b.clone());
        let c = at.transpose().matmul(&b);
        for (x, y) in w.c.iter().zip(c.as_slice()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn reference_conv1d_hand_checked() {
        let kern = Kernel::Conv1d { len: 5, k: 2 };
        let mut w =
            Workload { a: vec![1.0, 2.0, 3.0, 4.0, 5.0], b: vec![10.0, 1.0], c: vec![0.0; 4] };
        kern.reference(&mut w);
        assert_eq!(w.c, vec![12.0, 23.0, 34.0, 45.0]);
    }

    #[test]
    fn reference_conv2d_identity_filter() {
        let kern = Kernel::Conv2d { h: 3, w: 3, k: 1 };
        let mut w = Workload { a: (1..=9).map(f64::from).collect(), b: vec![2.0], c: vec![0.0; 9] };
        kern.reference(&mut w);
        assert_eq!(w.c[0], 2.0);
        assert_eq!(w.c[8], 18.0);
    }

    #[test]
    fn workload_shapes_match() {
        let mut rng = SplitMix64::new(3);
        for kern in Kernel::suite() {
            let w = kern.workload(&mut rng);
            let (sa, sb, sc) = kern.buffer_sizes();
            assert_eq!((w.a.len(), w.b.len(), w.c.len()), (sa, sb, sc), "{}", kern.name());
        }
    }

    #[test]
    fn names_distinct() {
        let names: std::collections::BTreeSet<&str> =
            Kernel::suite().iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), 5);
    }
}
