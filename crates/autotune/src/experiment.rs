//! Harnessed experiment E2.5 and the GA-population ablation.
//!
//! E2.5 reproduces the section's finding: tune each kernel with the GA on
//! the native backend, replicate the winning schedule on the other backend,
//! and compare. "The students were able to generate MLIR schedules and
//! achieve high performance on matrix-vector multiplication, which exceeded
//! the performance of TVM+Ansor. For other kernels, there were some
//! performance gaps." In model terms: the replicated backend matches or
//! beats the native one on matvec (`replication_ratio <= 1`) and trails on
//! the matmul family (`replication_ratio > 1`).

use crate::cost;
use crate::executor::Backend;
use crate::kernels::Kernel;
use crate::roofline::Machine;
use crate::schedule::Schedule;
use crate::tuner::{GaParams, Tuner};
use treu_core::experiment::{Experiment, Params, RunContext};
use treu_core::ExperimentRegistry;
use treu_math::rng::derive_seed;

/// Tunes one kernel on the native backend and replicates on the other.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelTuningResult {
    /// Kernel name.
    pub kernel: &'static str,
    /// Best schedule found.
    pub best: Schedule,
    /// Model cost of the naive schedule on the native backend.
    pub naive_cost: f64,
    /// Model cost of the best schedule on the native backend.
    pub tuned_cost: f64,
    /// Model cost of the *same* schedule on the replication backend.
    pub replicated_cost: f64,
}

impl KernelTuningResult {
    /// Autotuning speedup over naive on the native backend.
    pub fn speedup(&self) -> f64 {
        self.naive_cost / self.tuned_cost
    }

    /// Replicated / native cost: `<= 1` means the replication matched or
    /// exceeded the native framework.
    pub fn replication_ratio(&self) -> f64 {
        self.replicated_cost / self.tuned_cost
    }
}

/// Tunes `kernel` with the GA (cost-model fitness) and evaluates the
/// replication.
pub fn tune_kernel(kernel: Kernel, ga: GaParams, seed: u64) -> KernelTuningResult {
    let mut tuner = Tuner::new(ga, seed);
    let (best, tuned_cost) = tuner.tune(|s| cost::estimate(&kernel, s, Backend::AxpyLowering));
    KernelTuningResult {
        kernel: kernel.name(),
        best,
        naive_cost: cost::estimate(&kernel, Schedule::naive(), Backend::AxpyLowering),
        tuned_cost,
        replicated_cost: cost::estimate(&kernel, best, Backend::DotLowering),
    }
}

/// E2.5: full-suite tuning + replication + roofline classification.
pub struct AutotuneExperiment;

impl Experiment for AutotuneExperiment {
    fn name(&self) -> &str {
        "autotune/suite"
    }

    fn run(&self, ctx: &mut RunContext) {
        let ga = GaParams {
            population: ctx.int("population", 24) as usize,
            generations: ctx.int("generations", 20) as usize,
            ..GaParams::default()
        };
        let machine = Machine::laptop();
        for kernel in Kernel::suite() {
            let r = tune_kernel(kernel, ga, derive_seed(ctx.seed(), kernel.name()));
            ctx.record(&format!("{}_speedup", r.kernel), r.speedup());
            ctx.record(&format!("{}_replication_ratio", r.kernel), r.replication_ratio());
            ctx.record(
                &format!("{}_memory_bound", r.kernel),
                if machine.memory_bound(&kernel) { 1.0 } else { 0.0 },
            );
            ctx.record(
                &format!("{}_roofline_gflops", r.kernel),
                machine.attainable(kernel.arithmetic_intensity()) / 1e9,
            );
            ctx.note(format!("{}: best schedule {}", r.kernel, r.best.render()));
        }
    }
}

/// Ablation over GA population size (DESIGN.md's `ablate_ga_population`):
/// records the tuned cost of matmul for several population sizes under a
/// fixed evaluation budget per generation.
pub struct GaPopulationAblation;

impl Experiment for GaPopulationAblation {
    fn name(&self) -> &str {
        "autotune/ga-population-ablation"
    }

    fn run(&self, ctx: &mut RunContext) {
        let kernel = Kernel::MatMul { m: 96, k: 96, n: 96 };
        let generations = ctx.int("generations", 15) as usize;
        for pop in [4usize, 8, 16, 32, 64] {
            let ga = GaParams { population: pop, generations, ..GaParams::default() };
            let r = tune_kernel(kernel, ga, derive_seed(ctx.seed(), &format!("pop{pop}")));
            ctx.record(&format!("pop{pop:03}_tuned_cost"), r.tuned_cost);
            ctx.record(&format!("pop{pop:03}_speedup"), r.speedup());
        }
    }
}

/// Registers E2.5 and its ablation.
pub fn register(reg: &mut ExperimentRegistry) {
    reg.register(
        "E2.5",
        "Section 2.5",
        "GA autotuning, cross-backend schedule replication, roofline",
        Params::new().with_int("population", 24).with_int("generations", 20),
        Box::new(AutotuneExperiment),
    );
    reg.register(
        "E2.5-abl",
        "Section 2.5",
        "GA population-size ablation on matmul",
        Params::new().with_int("generations", 15),
        Box::new(GaPopulationAblation),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use treu_core::experiment::{assert_deterministic, run_once};

    #[test]
    fn replication_matches_paper_shape() {
        let rec = run_once(&AutotuneExperiment, 2023, Params::new());
        // Matvec: replication matches or exceeds the native framework.
        let mv = rec.metric("matvec_replication_ratio").unwrap();
        assert!(mv <= 1.0 + 1e-9, "matvec replication ratio {mv} should be <= 1");
        // Matmul family: a gap remains.
        for k in ["matmul", "matmul_t"] {
            let r = rec.metric(&format!("{k}_replication_ratio")).unwrap();
            assert!(r > 1.2, "{k} replication ratio {r} should show a gap");
        }
    }

    #[test]
    fn tuning_always_speeds_up() {
        let rec = run_once(&AutotuneExperiment, 7, Params::new());
        for k in ["matmul", "matmul_t", "matvec", "conv1d", "conv2d"] {
            let s = rec.metric(&format!("{k}_speedup")).unwrap();
            assert!(s > 1.0, "{k} speedup {s}");
        }
    }

    #[test]
    fn roofline_classification_recorded() {
        let rec = run_once(&AutotuneExperiment, 7, Params::new());
        assert_eq!(rec.metric("matvec_memory_bound"), Some(1.0));
        assert_eq!(rec.metric("matmul_memory_bound"), Some(0.0));
        assert!(rec.metric("matmul_roofline_gflops").unwrap() >= 49.9);
    }

    #[test]
    fn population_ablation_trends_down() {
        let rec = run_once(&GaPopulationAblation, 3, Params::new());
        let c4 = rec.metric("pop004_tuned_cost").unwrap();
        let c64 = rec.metric("pop064_tuned_cost").unwrap();
        assert!(c64 <= c4 * 1.02, "bigger populations should not be worse: {c4} -> {c64}");
    }

    #[test]
    fn experiments_deterministic() {
        let p = Params::new().with_int("population", 8).with_int("generations", 5);
        assert_deterministic(&AutotuneExperiment, 5, &p);
        assert_deterministic(&GaPopulationAblation, 5, &Params::new().with_int("generations", 5));
    }

    #[test]
    fn registry_ids() {
        let mut reg = ExperimentRegistry::new();
        register(&mut reg);
        assert!(reg.get("E2.5").is_some());
        assert!(reg.get("E2.5-abl").is_some());
    }

    #[test]
    fn roofline_report_helper_exposed() {
        let rows = crate::roofline::report(Machine::laptop(), &Kernel::suite());
        assert_eq!(rows.len(), 5);
    }
}
