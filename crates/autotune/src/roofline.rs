//! The roofline performance model — "a performance modeling tool for
//! understanding performance bottlenecks", one of the §2.5 lessons.
//!
//! Attainable performance is `min(peak_flops, intensity * bandwidth)`; the
//! ridge point `peak / bandwidth` separates memory-bound kernels (left)
//! from compute-bound ones (right).

use crate::kernels::Kernel;

/// A machine for roofline purposes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Machine {
    /// Peak floating-point throughput, FLOP/s.
    pub peak_flops: f64,
    /// Sustained memory bandwidth, bytes/s.
    pub bandwidth: f64,
}

impl Machine {
    /// A modest laptop core: 50 GFLOP/s peak, 20 GB/s of bandwidth.
    pub fn laptop() -> Self {
        Self { peak_flops: 50e9, bandwidth: 20e9 }
    }

    /// Ridge point in FLOPs/byte: kernels below it are memory-bound.
    pub fn ridge(&self) -> f64 {
        self.peak_flops / self.bandwidth
    }

    /// Attainable FLOP/s at a given arithmetic intensity.
    pub fn attainable(&self, intensity: f64) -> f64 {
        (intensity * self.bandwidth).min(self.peak_flops)
    }

    /// Whether a kernel is memory-bound on this machine.
    pub fn memory_bound(&self, kernel: &Kernel) -> bool {
        kernel.arithmetic_intensity() < self.ridge()
    }

    /// Fraction of peak a kernel can possibly reach (its roofline ceiling
    /// relative to peak).
    pub fn ceiling_fraction(&self, kernel: &Kernel) -> f64 {
        self.attainable(kernel.arithmetic_intensity()) / self.peak_flops
    }
}

/// One row of a roofline report.
#[derive(Debug, Clone, PartialEq)]
pub struct RooflineRow {
    /// Kernel name.
    pub kernel: &'static str,
    /// Arithmetic intensity (FLOPs/byte).
    pub intensity: f64,
    /// Attainable GFLOP/s.
    pub attainable_gflops: f64,
    /// Memory- or compute-bound.
    pub memory_bound: bool,
}

/// Builds the roofline report for the kernel suite.
pub fn report(machine: Machine, kernels: &[Kernel]) -> Vec<RooflineRow> {
    kernels
        .iter()
        .map(|k| RooflineRow {
            kernel: k.name(),
            intensity: k.arithmetic_intensity(),
            attainable_gflops: machine.attainable(k.arithmetic_intensity()) / 1e9,
            memory_bound: machine.memory_bound(k),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ridge_and_attainable() {
        let m = Machine::laptop();
        assert!((m.ridge() - 2.5).abs() < 1e-12);
        assert_eq!(m.attainable(1.0), 20e9);
        assert_eq!(m.attainable(10.0), 50e9);
        // Continuity at the ridge.
        assert!((m.attainable(2.5) - 50e9).abs() < 1.0);
    }

    #[test]
    fn matvec_is_memory_bound_matmul_is_not() {
        let m = Machine::laptop();
        assert!(m.memory_bound(&Kernel::MatVec { m: 256, k: 256 }));
        assert!(!m.memory_bound(&Kernel::MatMul { m: 96, k: 96, n: 96 }));
    }

    #[test]
    fn report_covers_suite() {
        let rows = report(Machine::laptop(), &Kernel::suite());
        assert_eq!(rows.len(), 5);
        let mv = rows.iter().find(|r| r.kernel == "matvec").unwrap();
        assert!(mv.memory_bound);
        assert!(mv.attainable_gflops < 50.0);
        let mm = rows.iter().find(|r| r.kernel == "matmul").unwrap();
        assert!(!mm.memory_bound);
        assert_eq!(mm.attainable_gflops, 50.0);
    }

    #[test]
    fn ceiling_fraction_in_unit_interval() {
        let m = Machine::laptop();
        for k in Kernel::suite() {
            let f = m.ceiling_fraction(&k);
            assert!((0.0..=1.0).contains(&f), "{}: {f}", k.name());
        }
    }
}
