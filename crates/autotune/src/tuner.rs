//! The genetic autotuner ("Ansor uses genetic algorithms to generate
//! potential candidates").
//!
//! Standard generational GA over the discrete [`Schedule`] space: tournament
//! selection, uniform crossover, single-axis mutation, elitism. Fitness is
//! any `Fn(Schedule) -> f64` cost (lower is better), so the same tuner runs
//! on the deterministic cost model (experiments) or on real executor
//! timings (benches).

use crate::schedule::Schedule;
use treu_math::rng::SplitMix64;

/// GA hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaParams {
    /// Population size.
    pub population: usize,
    /// Generations to evolve.
    pub generations: usize,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Probability of crossover (else clone a parent).
    pub crossover_rate: f64,
    /// Probability of mutating each child.
    pub mutation_rate: f64,
    /// Number of elites copied unchanged each generation.
    pub elites: usize,
}

impl Default for GaParams {
    fn default() -> Self {
        Self {
            population: 24,
            generations: 20,
            tournament: 3,
            crossover_rate: 0.8,
            mutation_rate: 0.5,
            elites: 2,
        }
    }
}

/// The tuner and its search trace.
pub struct Tuner {
    params: GaParams,
    rng: SplitMix64,
    /// Best cost after each generation (the convergence curve).
    pub history: Vec<f64>,
    evaluations: u64,
}

impl Tuner {
    /// Creates a tuner with a deterministic seed.
    pub fn new(params: GaParams, seed: u64) -> Self {
        assert!(params.population >= 2, "population too small");
        assert!(params.elites < params.population, "elites must leave room for offspring");
        assert!(params.tournament >= 1, "tournament size must be positive");
        Self { params, rng: SplitMix64::new(seed), history: Vec::new(), evaluations: 0 }
    }

    /// Number of fitness evaluations performed.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Runs the GA and returns `(best schedule, best cost)`.
    pub fn tune(&mut self, mut cost: impl FnMut(Schedule) -> f64) -> (Schedule, f64) {
        let p = self.params;
        // Seed the population with the known-good anchors plus randoms —
        // the "sketches" Ansor starts from.
        let mut pop: Vec<Schedule> = vec![Schedule::naive(), Schedule::reference()];
        while pop.len() < p.population {
            pop.push(Schedule::random(&mut self.rng));
        }
        let mut fitness: Vec<f64> = pop
            .iter()
            .map(|&s| {
                self.evaluations += 1;
                cost(s)
            })
            .collect();

        for _gen in 0..p.generations {
            // Rank by fitness (ascending cost).
            let mut order: Vec<usize> = (0..pop.len()).collect();
            order.sort_by(|&i, &j| fitness[i].partial_cmp(&fitness[j]).expect("NaN cost"));
            self.history.push(fitness[order[0]]);

            let mut next: Vec<Schedule> = order.iter().take(p.elites).map(|&i| pop[i]).collect();
            while next.len() < p.population {
                let a = self.tournament_pick(&fitness);
                let child = if self.rng.next_f64() < p.crossover_rate {
                    let b = self.tournament_pick(&fitness);
                    pop[a].crossover(pop[b], &mut self.rng)
                } else {
                    pop[a]
                };
                let child = if self.rng.next_f64() < p.mutation_rate {
                    child.mutate(&mut self.rng)
                } else {
                    child
                };
                next.push(child);
            }
            pop = next;
            fitness = pop
                .iter()
                .map(|&s| {
                    self.evaluations += 1;
                    cost(s)
                })
                .collect();
        }

        let mut best = 0;
        for i in 1..pop.len() {
            if fitness[i] < fitness[best] {
                best = i;
            }
        }
        self.history.push(fitness[best]);
        (pop[best], fitness[best])
    }

    fn tournament_pick(&mut self, fitness: &[f64]) -> usize {
        let n = fitness.len();
        let mut best = self.rng.next_bounded(n as u64) as usize;
        for _ in 1..self.params.tournament {
            let c = self.rng.next_bounded(n as u64) as usize;
            if fitness[c] < fitness[best] {
                best = c;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost;
    use crate::executor::Backend;
    use crate::kernels::Kernel;

    #[test]
    fn ga_improves_over_naive_on_every_kernel() {
        for kern in Kernel::suite() {
            let mut tuner = Tuner::new(GaParams::default(), 42);
            let (best, best_cost) = tuner.tune(|s| cost::estimate(&kern, s, Backend::AxpyLowering));
            let naive = cost::estimate(&kern, Schedule::naive(), Backend::AxpyLowering);
            assert!(
                best_cost < naive,
                "{}: GA {best_cost} vs naive {naive} ({})",
                kern.name(),
                best.render()
            );
        }
    }

    #[test]
    fn ga_matches_or_beats_reference_schedule() {
        for kern in Kernel::suite() {
            let mut tuner = Tuner::new(GaParams::default(), 7);
            let (_, best_cost) = tuner.tune(|s| cost::estimate(&kern, s, Backend::AxpyLowering));
            let reference = cost::estimate(&kern, Schedule::reference(), Backend::AxpyLowering);
            assert!(
                best_cost <= reference * 1.001,
                "{}: GA {best_cost} vs reference {reference}",
                kern.name()
            );
        }
    }

    #[test]
    fn convergence_curve_is_nonincreasing() {
        let kern = Kernel::MatMul { m: 96, k: 96, n: 96 };
        let mut tuner = Tuner::new(GaParams::default(), 1);
        tuner.tune(|s| cost::estimate(&kern, s, Backend::AxpyLowering));
        for w in tuner.history.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "elitism guarantees monotone best");
        }
    }

    #[test]
    fn tuning_is_deterministic() {
        let kern = Kernel::Conv2d { h: 64, w: 64, k: 5 };
        let run = |seed| {
            let mut t = Tuner::new(GaParams::default(), seed);
            t.tune(|s| cost::estimate(&kern, s, Backend::DotLowering))
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn evaluation_budget_is_respected() {
        let p = GaParams { population: 10, generations: 5, ..GaParams::default() };
        let mut t = Tuner::new(p, 2);
        t.tune(|_| 1.0);
        assert_eq!(t.evaluations(), 10 * 6); // initial + 5 generations
    }

    #[test]
    #[should_panic(expected = "population too small")]
    fn tiny_population_panics() {
        Tuner::new(GaParams { population: 1, ..GaParams::default() }, 0);
    }

    #[test]
    fn larger_population_does_not_hurt() {
        // Ablation direction: more candidates, equal-or-better best cost.
        let kern = Kernel::MatMulT { m: 96, k: 96, n: 96 };
        let small = {
            let mut t =
                Tuner::new(GaParams { population: 6, generations: 10, ..GaParams::default() }, 3);
            t.tune(|s| cost::estimate(&kern, s, Backend::AxpyLowering)).1
        };
        let large = {
            let mut t =
                Tuner::new(GaParams { population: 48, generations: 10, ..GaParams::default() }, 3);
            t.tune(|s| cost::estimate(&kern, s, Backend::AxpyLowering)).1
        };
        assert!(large <= small * 1.05, "large pop {large} vs small {small}");
    }
}
