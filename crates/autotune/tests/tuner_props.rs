//! Property tests for the schedule space, cost model and GA.

use proptest::prelude::*;
use treu_autotune::cost;
use treu_autotune::executor::{verify, Backend};
use treu_autotune::{GaParams, Kernel, Schedule, Tuner};
use treu_math::rng::SplitMix64;

fn any_kernel() -> impl Strategy<Value = Kernel> {
    prop_oneof![
        (2usize..20, 2usize..20, 2usize..20).prop_map(|(m, k, n)| Kernel::MatMul { m, k, n }),
        (2usize..20, 2usize..20, 2usize..20).prop_map(|(m, k, n)| Kernel::MatMulT { m, k, n }),
        (2usize..40, 2usize..40).prop_map(|(m, k)| Kernel::MatVec { m, k }),
        (8usize..64, 1usize..8).prop_map(|(len, k)| Kernel::Conv1d { len, k: k.min(len) }),
        (4usize..16, 4usize..16, 1usize..4).prop_map(|(h, w, k)| Kernel::Conv2d {
            h,
            w,
            k: k.min(h).min(w),
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cost_is_positive_and_deterministic(kernel in any_kernel(), seed in any::<u64>()) {
        let mut rng = SplitMix64::new(seed);
        let s = Schedule::random(&mut rng);
        for backend in Backend::all() {
            let c = cost::estimate(&kernel, s, backend);
            prop_assert!(c > 0.0 && c.is_finite());
            prop_assert_eq!(c.to_bits(), cost::estimate(&kernel, s, backend).to_bits());
        }
    }

    #[test]
    fn random_schedules_execute_correctly_on_random_kernels(kernel in any_kernel(), seed in any::<u64>()) {
        let mut rng = SplitMix64::new(seed);
        let s = Schedule::random(&mut rng);
        for backend in Backend::all() {
            prop_assert!(verify(&kernel, s, backend, seed ^ 0xAB) < 1e-9);
        }
    }

    #[test]
    fn ga_never_beats_the_anchors_backwards(kernel in any_kernel(), seed in any::<u64>()) {
        // Naive and reference schedules seed the population and elitism
        // preserves the best, so the GA result can never be worse than
        // either anchor under the same cost function.
        let ga = GaParams { population: 8, generations: 3, ..GaParams::default() };
        let mut tuner = Tuner::new(ga, seed);
        let (_, best) = tuner.tune(|s| cost::estimate(&kernel, s, Backend::AxpyLowering));
        let naive = cost::estimate(&kernel, Schedule::naive(), Backend::AxpyLowering);
        let reference = cost::estimate(&kernel, Schedule::reference(), Backend::AxpyLowering);
        prop_assert!(best <= naive + 1e-9, "best {} vs naive {}", best, naive);
        prop_assert!(best <= reference + 1e-9, "best {} vs reference {}", best, reference);
    }

    #[test]
    fn clamping_is_idempotent_and_in_bounds(kernel in any_kernel(), seed in any::<u64>()) {
        let mut rng = SplitMix64::new(seed);
        let s = Schedule::random(&mut rng).clamped_for(&kernel);
        prop_assert_eq!(s.clamped_for(&kernel), s);
        let (oi, oj) = kernel.output_shape();
        prop_assert!(s.tile_i <= oi.max(1));
        prop_assert!(s.tile_j <= oj.max(1));
        prop_assert!(s.tile_k <= kernel.reduction_len().max(1));
    }

    #[test]
    fn flops_scale_with_shape(m in 2usize..12, k in 2usize..12, n in 2usize..12) {
        let small = Kernel::MatMul { m, k, n };
        let big = Kernel::MatMul { m: 2 * m, k, n };
        prop_assert_eq!(big.flops(), 2 * small.flops());
        prop_assert!(big.min_bytes() > small.min_bytes());
    }
}
