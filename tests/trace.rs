//! Trace conformance suite (ISSUE 5's tentpole, satellite e): the
//! deterministic span stream recorded by the executor.
//!
//! Two properties anchor the layer:
//!
//! 1. **Schedule independence** — the rendered event stream (and hence
//!    the trace's content address) is bitwise-identical at every jobs
//!    count, for plain batches, supervised batches, and supervised
//!    verification; only the non-hashed timing sidecar may differ.
//! 2. **Faithful spans** — a faulted run's trace records the injected
//!    fault, the deterministic backoff, and the retry attempt in order,
//!    and the counters folded from the stream agree with the report.

use treu::core::exec::{Executor, SupervisePolicy};
use treu::core::experiment::{Experiment, Params, RunContext};
use treu::core::fault::FaultPlan;
use treu::core::trace::{check_trace_file, parse_times, parse_trace, TraceEvent};
use treu::core::ExperimentRegistry;

/// Silences the per-panic stderr trace for *injected* panics only.
fn quiet_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.starts_with("injected fault") {
                default(info);
            }
        }));
    });
}

/// A cheap seeded experiment so the sweep stays fast.
struct Synthetic(&'static str);

impl Experiment for Synthetic {
    fn name(&self) -> &str {
        self.0
    }

    fn run(&self, ctx: &mut RunContext) {
        let n = ctx.int("n", 16).unsigned_abs() as usize;
        let mut rng = ctx.rng("draws");
        let sum: f64 = (0..n.max(1)).map(|_| rng.next_f64()).sum();
        ctx.record("sum", sum);
    }
}

fn synthetic_registry() -> ExperimentRegistry {
    let mut reg = ExperimentRegistry::new();
    for (id, n) in [("S1", 8), ("S2", 16), ("S3", 24), ("S4", 4), ("S5", 12)] {
        reg.register(
            id,
            "trace",
            "synthetic",
            Params::new().with_int("n", n),
            Box::new(Synthetic(id)),
        );
    }
    reg
}

/// Plain batches: the event stream and its content address are the same
/// at every jobs count (the sidecar is free to differ).
#[test]
fn plain_batch_trace_is_schedule_independent() {
    let reg = synthetic_registry();
    let (_, base) = Executor::sequential().run_all_report(&reg, 42);
    assert!(base.counters.events > 0, "tracing is on by default");
    for jobs in [2usize, 4, 7] {
        let (_, report) = Executor::new(jobs).run_all_report(&reg, 42);
        assert_eq!(
            base.trace.render_events(),
            report.trace.render_events(),
            "event stream changed at jobs={jobs}"
        );
        assert_eq!(base.trace.content_hash(), report.trace.content_hash());
        assert_eq!(base.counters, report.counters);
    }
}

/// Supervised verification under transient chaos: same fault plan ⇒ the
/// same spans in the same order, regardless of the worker count.
#[test]
fn supervised_verify_trace_is_schedule_independent_under_chaos() {
    quiet_injected_panics();
    let reg = synthetic_registry();
    let plan = FaultPlan::transient(7, 0.3);
    let policy = SupervisePolicy::new(plan.max_transient_attempts());
    let base = Executor::sequential().verify_all_supervised_with(
        &reg,
        11,
        None,
        &policy,
        Some(&plan),
        |_, d| d,
    );
    assert!(base.all_reproduced(), "{:?}", base.violations());
    for jobs in [2usize, 4] {
        let report = Executor::new(jobs).verify_all_supervised_with(
            &reg,
            11,
            None,
            &policy,
            Some(&plan),
            |_, d| d,
        );
        assert_eq!(
            base.trace.render_events(),
            report.trace.render_events(),
            "verify event stream changed at jobs={jobs}"
        );
        assert_eq!(base.trace.content_hash(), report.trace.content_hash());
    }
}

/// The acceptance criterion: for every registered experiment (at the
/// fast conformance parameters), the unfaulted verification trace is
/// bitwise-identical at `--jobs 1` and `--jobs 4`.
#[test]
fn full_registry_verify_trace_is_bitwise_identical_across_jobs() {
    let reg = treu::full_registry();
    let policy = SupervisePolicy::new(0);
    let one =
        Executor::new(1).verify_all_supervised_with(&reg, 2023, None, &policy, None, |id, _| {
            treu::conformance_params(id)
        });
    let four =
        Executor::new(4).verify_all_supervised_with(&reg, 2023, None, &policy, None, |id, _| {
            treu::conformance_params(id)
        });
    assert!(one.all_reproduced(), "{:?}", one.violations());
    assert_eq!(one.trace.runs.len(), reg.len(), "one trace per experiment");
    assert_eq!(
        one.trace.render_events(),
        four.trace.render_events(),
        "jobs count leaked into the hashed stream"
    );
    assert_eq!(one.trace.content_hash(), four.trace.content_hash());
    // The sidecar is where the schedules are allowed to differ.
    assert_eq!(one.trace.jobs, 1);
    assert_eq!(four.trace.jobs, 4);
}

/// A rate-1.0 transient plan forces a fault on every first attempt: the
/// trace must show fault → failed attempt → backoff → retry, in order,
/// for every run.
#[test]
fn faulted_runs_record_fault_backoff_and_retry_spans_in_order() {
    quiet_injected_panics();
    let reg = synthetic_registry();
    let plan = FaultPlan::transient(3, 1.0);
    let policy = SupervisePolicy::new(plan.max_transient_attempts());
    let report =
        Executor::new(2).verify_all_supervised_with(&reg, 9, None, &policy, Some(&plan), |_, d| d);
    assert!(report.all_reproduced());
    assert!(report.counters.faults_injected > 0, "rate 1.0 must inject");
    assert_eq!(report.counters.faults_injected, report.counters.backoffs);
    for run in &report.trace.runs {
        let names: Vec<&str> = run.events().iter().map(|(_, ev, _)| ev.name()).collect();
        let fault = names.iter().position(|n| *n == "fault");
        let backoff = names.iter().position(|n| *n == "backoff");
        assert!(fault.is_some(), "{}: no fault span in {names:?}", run.id);
        assert!(backoff.is_some(), "{}: no backoff span in {names:?}", run.id);
        assert!(fault < backoff, "{}: fault must precede the backoff", run.id);
        let retried = run.events().iter().any(
            |(_, ev, _)| matches!(ev, TraceEvent::AttemptStart { attempt, .. } if *attempt >= 1),
        );
        assert!(retried, "{}: no retry attempt recorded", run.id);
    }
}

/// Counters folded from the stream agree with the report's own tallies —
/// they are the same data, so they can never drift apart.
#[test]
fn counters_agree_with_outcomes() {
    quiet_injected_panics();
    let reg = synthetic_registry();
    let plan = FaultPlan::transient(5, 0.4);
    let policy = SupervisePolicy::new(0); // underbudgeted: some quarantines
    let report =
        Executor::new(2).verify_all_supervised_with(&reg, 13, None, &policy, Some(&plan), |_, d| d);
    let c = report.trace.counters();
    assert_eq!(c, report.counters, "report counters are folded from the trace");
    assert_eq!(c.verdicts as usize, report.outcomes.len());
    assert_eq!(c.reproduced as usize, report.outcomes.iter().filter(|o| o.reproduced).count());
    assert_eq!(c.quarantined as usize, 2 * report.quarantined().len(), "two replicas per id");
    assert_eq!(c.claims, 2 * reg.len() as u64);
}

/// Disk round-trip: write under a temp dir, re-verify the content
/// address, parse both files back, and match the sidecar's offsets to
/// the stream's (run, seq) pairs.
#[test]
fn written_traces_round_trip_and_self_verify() {
    let reg = synthetic_registry();
    let (_, report) = Executor::new(2).run_all_report(&reg, 17);
    let dir = std::env::temp_dir().join(format!("treu-trace-rt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let path = report.trace.write(&dir).expect("write trace");
    let hash = check_trace_file(&path).expect("stored trace verifies");
    assert_eq!(hash, report.trace.content_hash());
    let tf = parse_trace(&std::fs::read_to_string(&path).expect("readable")).expect("parses");
    assert_eq!(tf.kind, "run");
    assert_eq!(tf.runs.len(), reg.len());
    let sidecar = dir.join(report.trace.times_file_name());
    let times =
        parse_times(&std::fs::read_to_string(sidecar).expect("sidecar written")).expect("parses");
    assert_eq!(times.jobs, 2);
    for ev in &tf.events {
        assert!(
            times.at.contains_key(&(ev.run, ev.seq)),
            "event ({}, {}) has no timing offset",
            ev.run,
            ev.seq
        );
    }
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// Tracing can be switched off: the batch still runs identically, the
/// report just carries an empty stream (exec_bench uses this to price
/// the overhead).
#[test]
fn tracing_off_produces_identical_results_and_empty_stream() {
    let reg = synthetic_registry();
    let (on_recs, on) = Executor::new(2).run_all_report(&reg, 23);
    let (off_recs, off) = Executor::new(2).with_tracing(false).run_all_report(&reg, 23);
    assert_eq!(on_recs.len(), off_recs.len());
    for ((ia, ra), (ib, rb)) in on_recs.iter().zip(off_recs.iter()) {
        assert_eq!(ia, ib);
        assert_eq!(ra.fingerprint(), rb.fingerprint(), "tracing changed a result");
    }
    assert!(on.counters.events > 0);
    assert_eq!(off.counters.events, 0, "tracing off leaves an empty stream");
}
