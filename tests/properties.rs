//! Property-based tests (proptest) on the workspace's core invariants:
//! linear algebra, statistics, RNG derivation, provenance fingerprints,
//! executor determinism, Likert calibration, schedule correctness, and the
//! cluster simulator.

use proptest::prelude::*;
use treu::core::exec::Executor;
use treu::core::experiment::{run_seeds, Experiment, Params, RunContext};
use treu::core::sweep::{sweep, Axis};
use treu::core::Trail;
use treu_math::rng::SplitMix64;
use treu_math::{stats, vector, Matrix};

/// A cheap randomized experiment for executor properties: a handful of
/// seeded draws folded through the run's parameters.
struct Synthetic;

impl Experiment for Synthetic {
    fn name(&self) -> &str {
        "prop/synthetic"
    }

    fn run(&self, ctx: &mut RunContext) {
        let n = ctx.int("n", 8).unsigned_abs() as usize;
        let scale = ctx.float("scale", 1.0);
        let mut rng = ctx.rng("draws");
        let sum: f64 = (0..n.max(1)).map(|_| rng.next_f64()).sum();
        ctx.record("scaled_sum", sum * scale);
        ctx.record("n_echo", n as f64);
    }
}

/// The job counts the acceptance criteria call out: 1, 2, the hardware
/// thread count, and strictly more jobs than work items.
fn job_counts() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(1usize),
        Just(2usize),
        Just(treu_math::parallel::default_threads()),
        13usize..48,
    ]
}

fn small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-100.0..100.0f64, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

/// One trail event, for the render/parse round-trip property.
#[derive(Debug, Clone)]
enum TrailEvent {
    Param(String, String),
    Rng(String, u64),
    Metric(String, f64),
    Note(String),
}

/// Adversarial text for trail keys, values, tags and notes: arbitrary
/// unicode plus the exact shapes that used to make the grammar
/// injectable — embedded ` = `, ` <- `, newlines that mimic whole
/// forged lines, dangling backslashes, and leading whitespace.
fn adversarial_text() -> impl Strategy<Value = String> {
    prop_oneof![
        ".{0,12}",
        Just(String::new()),
        Just("k = v".to_string()),
        Just("metric forged = 42".to_string()),
        Just("a\nrng b <- 0x2a".to_string()),
        Just("note first\nnote second".to_string()),
        Just("trailing\\".to_string()),
        Just("  leading spaces".to_string()),
        Just("tab\tand\rcarriage".to_string()),
        Just("0x0x2a".to_string()),
        (".{0,6}", ".{0,6}").prop_map(|(a, b)| format!("{a}\n{b}")),
    ]
}

/// Metric values including every non-finite and sign-tricky case.
fn adversarial_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        any::<f64>(),
        Just(f64::NAN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(-0.0f64),
        Just(0.0f64),
        Just(f64::MIN_POSITIVE),
    ]
}

fn trail_event() -> impl Strategy<Value = TrailEvent> {
    prop_oneof![
        (adversarial_text(), adversarial_text()).prop_map(|(k, v)| TrailEvent::Param(k, v)),
        (adversarial_text(), any::<u64>()).prop_map(|(t, s)| TrailEvent::Rng(t, s)),
        (adversarial_text(), adversarial_f64()).prop_map(|(n, v)| TrailEvent::Metric(n, v)),
        adversarial_text().prop_map(TrailEvent::Note),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // --- linear algebra -------------------------------------------------

    #[test]
    fn matmul_distributes_over_addition(a in small_matrix(4, 5), b in small_matrix(5, 3), c in small_matrix(5, 3)) {
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(left.max_abs_diff(&right) < 1e-6);
    }

    #[test]
    fn transpose_reverses_matmul(a in small_matrix(4, 6), b in small_matrix(6, 2)) {
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        prop_assert!(left.max_abs_diff(&right) < 1e-9);
    }

    #[test]
    fn parallel_matmul_equals_sequential(a in small_matrix(7, 9), b in small_matrix(9, 5), threads in 1usize..6) {
        let seq = a.matmul(&b);
        let par = a.matmul_parallel(&b, threads);
        prop_assert_eq!(seq, par);
    }

    #[test]
    fn dot_is_bilinear(x in proptest::collection::vec(-10.0..10.0f64, 8),
                       y in proptest::collection::vec(-10.0..10.0f64, 8),
                       alpha in -5.0..5.0f64) {
        let scaled: Vec<f64> = x.iter().map(|v| v * alpha).collect();
        prop_assert!((vector::dot(&scaled, &y) - alpha * vector::dot(&x, &y)).abs() < 1e-7);
    }

    #[test]
    fn softmax_is_a_distribution(x in proptest::collection::vec(-50.0..50.0f64, 1..12)) {
        let p = vector::softmax(&x);
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn svd_reconstructs(a in small_matrix(5, 4)) {
        let d = treu_math::decomp::svd(&a, 1e-14, 80);
        let recon = treu_math::decomp::reconstruct(&d);
        prop_assert!(recon.max_abs_diff(&a) < 1e-6);
        prop_assert!(d.sigma.windows(2).all(|w| w[0] >= w[1] - 1e-12));
    }

    // --- statistics ------------------------------------------------------

    #[test]
    fn quantile_brackets_data(x in proptest::collection::vec(-100.0..100.0f64, 1..40), q in 0.0..1.0f64) {
        let v = stats::quantile(&x, q);
        let (lo, hi) = stats::min_max(&x).unwrap();
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
    }

    #[test]
    fn variance_is_translation_invariant(x in proptest::collection::vec(-100.0..100.0f64, 2..30), shift in -50.0..50.0f64) {
        let shifted: Vec<f64> = x.iter().map(|v| v + shift).collect();
        prop_assert!((stats::variance(&x) - stats::variance(&shifted)).abs() < 1e-6);
    }

    #[test]
    fn welford_matches_batch_stats(x in proptest::collection::vec(-100.0..100.0f64, 2..50)) {
        let mut w = stats::Welford::new();
        for &v in &x {
            w.add(v);
        }
        prop_assert!((w.mean() - stats::mean(&x)).abs() < 1e-8);
        prop_assert!((w.variance() - stats::variance(&x)).abs() < 1e-6);
    }

    #[test]
    fn pca_gram_path_matches_covariance_path(data in small_matrix(5, 9)) {
        // d > n triggers the Gram trick; compare against the covariance
        // path on the transposed problem scale (same eigenvalues).
        let pca = treu_math::pca::Pca::fit(&data, 4);
        let cov = stats::covariance_matrix(&data);
        let eig = treu_math::decomp::symmetric_eigen(&cov, 1e-12, 200);
        for (a, b) in pca.explained_variance.iter().zip(eig.values.iter()) {
            prop_assert!((a - b.max(0.0)).abs() < 1e-6, "eigenvalue mismatch: {} vs {}", a, b);
        }
    }

    // --- rng ---------------------------------------------------------------

    #[test]
    fn derive_seed_is_pure_and_tag_sensitive(parent in any::<u64>(), tag in "[a-z]{1,12}") {
        let a = treu_math::rng::derive_seed(parent, &tag);
        prop_assert_eq!(a, treu_math::rng::derive_seed(parent, &tag));
        prop_assert_ne!(a, treu_math::rng::derive_seed(parent, &format!("{tag}x")));
    }

    #[test]
    fn bounded_draws_stay_in_range(seed in any::<u64>(), bound in 1u64..1000) {
        let mut rng = SplitMix64::new(seed);
        for _ in 0..50 {
            prop_assert!(rng.next_bounded(bound) < bound);
        }
    }

    #[test]
    fn permutation_is_bijective(seed in any::<u64>(), n in 1usize..60) {
        let mut rng = SplitMix64::new(seed);
        let mut p = treu_math::rng::permutation(&mut rng, n);
        p.sort_unstable();
        prop_assert_eq!(p, (0..n).collect::<Vec<_>>());
    }

    // --- provenance ---------------------------------------------------------

    #[test]
    fn trail_fingerprint_is_injective_on_metric_values(name in "[a-z]{1,8}", v1 in any::<f64>(), v2 in any::<f64>()) {
        prop_assume!(v1.to_bits() != v2.to_bits());
        let mut a = Trail::new();
        a.metric(&name, v1);
        let mut b = Trail::new();
        b.metric(&name, v2);
        prop_assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn trail_parse_inverts_render_on_adversarial_content(
        events in proptest::collection::vec(trail_event(), 0..12)
    ) {
        let mut t = Trail::new();
        for e in &events {
            match e {
                TrailEvent::Param(k, v) => t.param(k, v),
                TrailEvent::Rng(tag, seed) => t.rng_stream(tag, *seed),
                TrailEvent::Metric(n, v) => t.metric(n, *v),
                TrailEvent::Note(text) => t.note(text.clone()),
            }
        }
        let rendered = t.render();
        let parsed = Trail::parse(&rendered);
        prop_assert!(parsed.is_some(), "render must always parse:\n{}", rendered);
        let parsed = parsed.unwrap();
        // Bitwise identity: re-render equality plus fingerprint equality
        // covers every event byte-for-byte (including NaN payload bits,
        // which `PartialEq` on f64 cannot see).
        prop_assert_eq!(parsed.render(), rendered.clone(), "parse∘render must be the identity");
        prop_assert_eq!(parsed.fingerprint(), t.fingerprint());
        prop_assert_eq!(parsed.events().len(), t.events().len());
    }

    #[test]
    fn trail_fingerprint_is_stable_under_clone(kvs in proptest::collection::vec(("[a-z]{1,6}", -1e6..1e6f64), 0..10)) {
        let mut t = Trail::new();
        for (k, v) in &kvs {
            t.param(k, v);
            t.metric(k, *v);
        }
        prop_assert_eq!(t.clone().fingerprint(), t.fingerprint());
    }

    // --- executor -----------------------------------------------------------

    #[test]
    fn executor_run_seeds_matches_sequential(
        seeds in proptest::collection::vec(any::<u64>(), 0..12),
        n in 1i64..40,
        jobs in job_counts(),
    ) {
        let params = Params::new().with_int("n", n);
        let seq = run_seeds(&Synthetic, &seeds, &params);
        let par = Executor::new(jobs).run_seeds(&Synthetic, &seeds, &params);
        prop_assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(par.iter()) {
            prop_assert_eq!(a.seed, b.seed);
            prop_assert_eq!(a.fingerprint(), b.fingerprint(), "jobs={}", jobs);
            prop_assert_eq!(&a.trail, &b.trail);
        }
    }

    #[test]
    fn executor_sweep_matches_sequential(
        seed in any::<u64>(),
        n_vals in proptest::collection::vec(1i64..50, 1..4),
        scale_vals in proptest::collection::vec(0.25..4.0f64, 1..4),
        jobs in job_counts(),
    ) {
        let axes = [Axis::ints("n", &n_vals), Axis::floats("scale", &scale_vals)];
        let seq = sweep(&Synthetic, &Params::new(), &axes, seed);
        let par = Executor::new(jobs).sweep(&Synthetic, &Params::new(), &axes, seed);
        prop_assert_eq!(seq.len(), n_vals.len() * scale_vals.len());
        prop_assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(par.iter()) {
            prop_assert_eq!(&a.assignment, &b.assignment, "grid order must be canonical");
            prop_assert_eq!(&a.record.trail, &b.record.trail, "jobs={}", jobs);
        }
    }

    #[test]
    fn executor_map_preserves_index_order(n in 0usize..200, jobs in 1usize..32) {
        let v = Executor::new(jobs).map_indexed(n, |i| i);
        prop_assert_eq!(v, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_dynamic_equals_sequential_for_any_schedule(
        n in 0usize..300,
        jobs in 1usize..48,
        chunk in 1usize..64,
    ) {
        // The tentpole invariant: the self-scheduling queue may claim
        // chunks in any order, but the merged output must be bitwise
        // what a sequential loop produces — for every (n, jobs, chunk).
        let f = |i: usize| (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ n as u64;
        let seq: Vec<u64> = (0..n).map(f).collect();
        let (dynamic, sched) =
            treu_math::parallel::par_map_dynamic_stats(n, jobs, chunk, f);
        prop_assert_eq!(dynamic, seq);
        // Load accounting covers exactly the work done, however it was
        // distributed.
        prop_assert_eq!(sched.items.iter().sum::<usize>(), n);
        prop_assert!(sched.workers >= 1 && sched.workers <= jobs.max(1));
    }

    #[test]
    fn executor_verify_accepts_deterministic_runs(seed in any::<u64>(), jobs in job_counts()) {
        let params = Params::new().with_int("n", 6);
        let fp = Executor::new(jobs).assert_deterministic(&Synthetic, seed, &params);
        prop_assert_eq!(fp, run_seeds(&Synthetic, &[seed], &params)[0].fingerprint());
    }

    // --- surveys ------------------------------------------------------------

    #[test]
    fn likert_sampler_hits_target_total(seed in any::<u64>(), n in 1usize..40, target in 1.0..5.0f64) {
        let mut rng = SplitMix64::new(seed);
        let xs = treu::surveys::likert::sample_with_mean(&mut rng, n, target);
        prop_assert_eq!(xs.len(), n);
        prop_assert!(xs.iter().all(|&x| (1..=5).contains(&x)));
        let want = (target * n as f64).round();
        prop_assert_eq!(xs.iter().sum::<i64>() as f64, want);
    }

    // --- autotune ------------------------------------------------------------

    #[test]
    fn random_schedules_always_execute_correctly(seed in any::<u64>()) {
        use treu::autotune::executor::{verify, Backend};
        use treu::autotune::{Kernel, Schedule};
        let mut rng = SplitMix64::new(seed);
        let sched = Schedule::random(&mut rng);
        let kern = Kernel::MatMul { m: 13, k: 9, n: 11 };
        for backend in Backend::all() {
            prop_assert!(verify(&kern, sched, backend, seed ^ 1) < 1e-9);
        }
    }

    // --- cluster ------------------------------------------------------------

    #[test]
    fn cluster_sim_conserves_work(seed in any::<u64>(), n_jobs in 1usize..25) {
        use treu::cluster::sim::Scheduler;
        use treu::cluster::trace::{cohort_trace, SubmissionPolicy};
        use treu::cluster::Cluster;
        let mut rng = SplitMix64::new(seed);
        let jobs = cohort_trace(n_jobs, SubmissionPolicy::Clustered, &mut rng);
        let c = Cluster::default();
        for sched in [Scheduler::Fifo, Scheduler::Backfill] {
            let m = c.simulate(&jobs, sched);
            // Every job started at or after submission and before makespan.
            prop_assert_eq!(m.waits.len(), jobs.len());
            prop_assert!(m.waits.iter().all(|&w| w >= 0.0 && w.is_finite()));
            // Utilization is a fraction; makespan bounds the longest job.
            prop_assert!((0.0..=1.0 + 1e-9).contains(&m.utilization));
            let longest = jobs.iter().map(|j| j.duration).fold(0.0f64, f64::max);
            prop_assert!(m.makespan >= longest - 1e-9);
        }
    }
}
