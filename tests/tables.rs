//! Integration tests for the paper's published evaluation (T1–T3, N1):
//! the survey pipeline, run through the public registry, reproduces every
//! table within its stated tolerance.

use treu::core::experiment::Params;
use treu::surveys::paper;

#[test]
fn table1_reproduces_exactly_through_the_registry() {
    let reg = treu::full_registry();
    let rec = reg.run("T1", 2023).expect("registered");
    assert_eq!(rec.metric("max_abs_dev"), Some(0.0), "goal counts must be exact");
    // Spot-check individual rows against the published numbers.
    assert_eq!(rec.metric("goal00"), Some(9.0)); // collaborate with peers
    assert_eq!(rec.metric("goal15"), Some(2.0)); // learn a new language
    assert_eq!(rec.metric("goals_by_all"), Some(5.0));
}

#[test]
fn table2_and_3_reproduce_within_likert_rounding() {
    let reg = treu::full_registry();
    let t2 = reg.run("T2", 2023).expect("registered");
    // With 15 a priori and 10 post hoc integer responses, the achievable
    // mean error is at most 0.5/15 and 0.5/10.
    assert!(t2.metric("max_abs_dev_mean").unwrap() <= 0.5 / 15.0 + 1e-12);
    assert!(t2.metric("max_abs_dev_boost").unwrap() <= 0.5 / 15.0 + 0.5 / 10.0 + 1e-12);
    let t3 = reg.run("T3", 2023).expect("registered");
    assert!(t3.metric("max_abs_dev_mean").unwrap() <= 0.5 / 15.0 + 1e-12);
    assert!(t3.metric("max_abs_dev_increase").unwrap() <= 0.5 / 15.0 + 0.5 / 10.0 + 1e-12);
}

#[test]
fn narrative_statistics_reproduce() {
    let reg = treu::full_registry();
    let n = reg.run("N1", 2023).expect("registered");
    assert_eq!(n.metric("phd_apriori_mode"), Some(3.0));
    assert_eq!(n.metric("phd_posthoc_mode"), Some(4.0));
    assert!((n.metric("phd_apriori_mean").unwrap() - 3.2).abs() <= 0.04);
    assert!((n.metric("phd_posthoc_mean").unwrap() - 3.6).abs() <= 0.05);
    assert_eq!(n.metric("rec_reu_mode"), Some(2.0));
    assert_eq!(n.metric("rec_outside_mode"), Some(1.0));
    assert_eq!(n.metric("applicants"), Some(85.0));
    assert_eq!(n.metric("offers"), Some(10.0));
}

#[test]
fn table_reproduction_holds_across_seeds() {
    // Calibration is not luck: any seed reproduces Table 1 exactly and the
    // Likert tables within rounding.
    let reg = treu::full_registry();
    for seed in [1u64, 7, 99, 123456] {
        let t1 = reg.run_with("T1", seed, Params::new()).expect("registered");
        assert_eq!(t1.metric("max_abs_dev"), Some(0.0), "seed {seed}");
        let t2 = reg.run_with("T2", seed, Params::new()).expect("registered");
        assert!(t2.metric("max_abs_dev_mean").unwrap() <= 0.04, "seed {seed}");
    }
}

#[test]
fn rendered_tables_match_golden_snapshots() {
    // Byte-for-byte snapshots of the three published tables at the
    // canonical seed. A diff here means the rendered artifact changed —
    // either a real regression or an intentional change that must be
    // re-blessed by regenerating tests/goldens/.
    use treu::surveys::{analysis, Cohort};
    let c = Cohort::simulate(2023);
    let cases = [
        (analysis::render_table1(&analysis::table1(&c)), include_str!("goldens/table1.txt")),
        (analysis::render_table2(&analysis::table2(&c)), include_str!("goldens/table2.txt")),
        (analysis::render_table3(&analysis::table3(&c)), include_str!("goldens/table3.txt")),
    ];
    for (i, (got, want)) in cases.iter().enumerate() {
        assert_eq!(got, want, "Table {} drifted from its golden snapshot", i + 1);
    }
}

#[test]
fn tables_are_job_count_invariant() {
    // The `treu tables --jobs N` path fans the three analyses out over
    // executor workers; the rendered bytes must not depend on N.
    use treu::core::exec::Executor;
    use treu::surveys::{analysis, Cohort};
    let c = Cohort::simulate(2023);
    let render = |i: usize| match i {
        0 => analysis::render_table1(&analysis::table1(&c)),
        1 => analysis::render_table2(&analysis::table2(&c)),
        _ => analysis::render_table3(&analysis::table3(&c)),
    };
    let seq = Executor::sequential().map_indexed(3, render);
    for jobs in [2usize, 8] {
        assert_eq!(seq, Executor::new(jobs).map_indexed(3, render), "jobs={jobs}");
    }
    assert_eq!(seq[0], include_str!("goldens/table1.txt"));
}

#[test]
fn rendered_tables_contain_every_paper_row() {
    use treu::surveys::{analysis, Cohort};
    let c = Cohort::simulate(2023);
    let r1 = analysis::render_table1(&analysis::table1(&c));
    for (goal, _) in paper::GOALS {
        assert!(r1.contains(goal), "Table 1 missing row: {goal}");
    }
    let r2 = analysis::render_table2(&analysis::table2(&c));
    for (skill, _, _) in paper::SKILLS {
        assert!(r2.contains(skill), "Table 2 missing row: {skill}");
    }
    let r3 = analysis::render_table3(&analysis::table3(&c));
    for (area, _, _) in paper::KNOWLEDGE {
        assert!(r3.contains(area), "Table 3 missing row: {area}");
    }
}
