//! Integration tests for the per-project findings (E2.x, E3): each
//! section's qualitative claim, checked end-to-end through the public
//! registry at (moderately lightened) realistic scales.

use treu::core::experiment::Params;

fn reg() -> &'static treu::core::ExperimentRegistry {
    static REG: std::sync::OnceLock<treu::core::ExperimentRegistry> = std::sync::OnceLock::new();
    REG.get_or_init(treu::full_registry)
}

#[test]
fn e22_fast_weighting_is_almost_as_accurate() {
    let rec = reg()
        .run_with("E2.2a", 2023, Params::new().with_int("trials", 5).with_int("particles", 192))
        .expect("registered");
    let ratio = rec.metric("rmse_ratio_triangular").unwrap();
    assert!(ratio < 1.6, "triangular/gaussian rmse ratio {ratio}");
}

#[test]
fn e22_schedule_awareness_beats_typical_filter_under_drift() {
    let rec = reg()
        .run_with("E2.2b", 2023, Params::new().with_int("trials", 5).with_int("particles", 192))
        .expect("registered");
    assert!(
        rec.metric("rmse_ours_drift").unwrap() < rec.metric("rmse_baseline_drift").unwrap(),
        "drifted performance must favour the schedule-aware filter"
    );
}

#[test]
fn e23_unlearning_avoids_complete_retraining() {
    let rec =
        reg().run_with("E2.3", 2023, Params::new().with_int("trials", 2)).expect("registered");
    assert!(rec.metric("ascent_forget_acc").unwrap() < 0.3);
    assert!(rec.metric("ascent_relative_cost").unwrap() < 0.5);
}

#[test]
fn e24_semantics_clearly_improve_classification() {
    let rec =
        reg().run_with("E2.4", 2023, Params::new().with_int("trials", 2)).expect("registered");
    assert!(rec.metric("improvement").unwrap() > 0.1);
}

#[test]
fn e25_replication_matches_on_matvec_gaps_elsewhere() {
    let rec = reg().run("E2.5", 2023).expect("registered");
    assert!(rec.metric("matvec_replication_ratio").unwrap() <= 1.0 + 1e-9);
    assert!(rec.metric("matmul_replication_ratio").unwrap() > 1.2);
    assert_eq!(rec.metric("matvec_memory_bound"), Some(1.0));
}

#[test]
fn e26_deaugmented_set_generalizes_better() {
    let rec =
        reg().run_with("E2.6", 2023, Params::new().with_int("trials", 2)).expect("registered");
    assert!(rec.metric("deaug_advantage_f1").unwrap() > 0.0);
    assert!(rec.metric("coverage_ratio").unwrap() > 8.0, "the confound is measured");
}

#[test]
fn e27_multitask_and_finetuning_behave_as_reported() {
    // E2.7 runs at its default budget: the fine-tuning advantage is a
    // statement about the default (paper-shaped) configuration, and
    // shrinking the budget shrinks the pretrained trunk's head start.
    let rec = reg().run("E2.7", 2023).expect("registered");
    assert!(rec.metric("multitask_seg_iou").unwrap() > 0.5);
    assert!(rec.metric("gpu_speedup").unwrap() > 1.0);
    assert!(rec.metric("finetune_seg_iou").unwrap() > rec.metric("scratch_seg_iou").unwrap());
}

#[test]
fn e28_reliability_grid_is_complete() {
    let rec = reg()
        .run_with("E2.8", 2023, Params::new().with_int("episodes", 60).with_int("seeds", 2))
        .expect("registered");
    for env in ["frogger", "collect", "catch"] {
        for est in ["conv", "attention"] {
            assert!(rec.metric(&format!("{env}_{est}_cvar25")).is_some(), "{env}/{est}");
        }
    }
}

#[test]
fn e29_cnn_beats_truncated_transformer() {
    let rec = reg().run("E2.9", 2023).expect("registered");
    let cnn = rec.metric("cnn_accuracy").unwrap();
    let tf = rec.metric("transformer_accuracy").unwrap();
    assert!(cnn > tf, "cnn {cnn} vs transformer {tf}");
}

#[test]
fn e210_filter_beats_coordinate_median_in_high_dimension() {
    let rec = reg()
        .run_with("E2.10", 2023, Params::new().with_int("n", 600).with_int("trials", 2))
        .expect("registered");
    assert!(rec.metric("d256_filter").unwrap() < rec.metric("d256_median").unwrap());
}

#[test]
fn e211_one_mode_atlas_recovers_the_mode() {
    let rec = reg().run("E2.11", 2023).expect("registered");
    assert!(rec.metric("one_mode_ratio").unwrap() > 0.85);
    assert!(rec.metric("one_mode_latent_corr").unwrap() > 0.9);
}

#[test]
fn e3_staging_cuts_the_stuck_fraction() {
    let rec = reg().run("E3", 2023).expect("registered");
    let rush = rec.metric("clustered_fifo_stuck_fraction").unwrap();
    let staged = rec.metric("staged_fifo_stuck_fraction").unwrap();
    assert!(staged < rush, "staged {staged} vs rush {rush}");
}
