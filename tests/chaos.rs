//! Chaos conformance suite: the supervised executor under deterministic
//! fault injection (ISSUE 4's tentpole, satellites c and d).
//!
//! Two properties anchor the failure model:
//!
//! 1. **Transient convergence** — for any transient-only fault plan with
//!    rate ≤ 0.3 and a retry budget covering the plan's worst transient,
//!    supervised verification produces trail fingerprints bitwise-
//!    identical to the fault-free pass, at every job count. Chaos may
//!    cost attempts, never results.
//! 2. **Quarantine, not abort** — a permanently-failing experiment is
//!    quarantined with its taxonomy while every other id still verifies.

// The vendored proptest shim expands multi-parameter strategies deeply.
#![recursion_limit = "256"]

use proptest::prelude::*;
use treu::core::cache::{CacheBound, RunCache};
use treu::core::exec::{DenyPolicy, Executor, FailureKind, SupervisePolicy};
use treu::core::experiment::{Experiment, Params, RunContext};
use treu::core::fault::FaultPlan;
use treu::core::ExperimentRegistry;

/// Silences the per-panic stderr trace for *injected* panics only —
/// they are part of the experiment here, and a 0.3-rate sweep would
/// otherwise bury real failures in noise. Genuine panics still print.
fn quiet_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.starts_with("injected fault") && !msg.contains("hardware gremlin") {
                default(info);
            }
        }));
    });
}

/// A cheap seeded experiment so the property sweep stays fast; the
/// supervisor under test is the same one the real registry runs through.
struct Synthetic(&'static str);

impl Experiment for Synthetic {
    fn name(&self) -> &str {
        self.0
    }

    fn run(&self, ctx: &mut RunContext) {
        let n = ctx.int("n", 16).unsigned_abs() as usize;
        let mut rng = ctx.rng("draws");
        let sum: f64 = (0..n.max(1)).map(|_| rng.next_f64()).sum();
        ctx.record("sum", sum);
    }
}

fn synthetic_registry() -> ExperimentRegistry {
    let mut reg = ExperimentRegistry::new();
    for (id, n) in [("S1", 8), ("S2", 16), ("S3", 24), ("S4", 4), ("S5", 12)] {
        reg.register(
            id,
            "prop",
            "synthetic",
            Params::new().with_int("n", n),
            Box::new(Synthetic(id)),
        );
    }
    reg
}

/// Body of the transient-convergence property (plain asserts; kept out
/// of the macro so the property reads as ordinary code).
fn check_transient_convergence(fault_seed: u64, rate: f64, run_seed: u64) {
    quiet_injected_panics();
    let reg = synthetic_registry();
    let plan = FaultPlan::transient(fault_seed, rate);
    let policy = SupervisePolicy::new(plan.max_transient_attempts());
    let clean = Executor::sequential().verify_all(&reg, run_seed);
    prop_assert!(clean.all_reproduced());
    for jobs in [1usize, 4] {
        let chaotic = Executor::new(jobs).verify_all_supervised_with(
            &reg,
            run_seed,
            None,
            &policy,
            Some(&plan),
            |_, d| d,
        );
        prop_assert!(
            chaotic.all_reproduced(),
            "jobs={jobs} fault_seed={fault_seed} rate={rate}: {:?}",
            chaotic.violations()
        );
        for (c, f) in clean.outcomes.iter().zip(chaotic.outcomes.iter()) {
            prop_assert_eq!(&c.id, &f.id);
            prop_assert_eq!(
                c.fingerprint,
                f.fingerprint,
                "{} diverged under chaos at jobs={}",
                c.id,
                jobs
            );
        }
    }
}

/// Body of the fails-closed property: with no retry budget, every id
/// either reproduces the fault-free fingerprint or is quarantined with a
/// taxonomy — there is no silent third state.
fn check_fails_closed(fault_seed: u64) {
    quiet_injected_panics();
    let reg = synthetic_registry();
    let plan = FaultPlan::transient(fault_seed, 0.5);
    let policy = SupervisePolicy::new(0); // no retries at all
    let clean = Executor::sequential().verify_all(&reg, 7);
    let chaotic =
        Executor::new(2).verify_all_supervised_with(&reg, 7, None, &policy, Some(&plan), |_, d| d);
    for (c, f) in clean.outcomes.iter().zip(chaotic.outcomes.iter()) {
        if f.reproduced {
            prop_assert_eq!(c.fingerprint, f.fingerprint, "{}", c.id);
        } else {
            prop_assert!(f.failure.is_some(), "{} failed without a taxonomy", f.id);
        }
    }
}

// Satellite (c): transient-only chaos within the retry budget is
// invisible in the results — bitwise — for every fault seed, any rate up
// to 0.3, and both a serial and a parallel executor. The second property
// checks the flip side: an insufficient retry budget fails closed.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn transient_chaos_converges_to_fault_free_trails(
        fault_seed in any::<u64>(),
        rate in 0.0f64..0.3,
        run_seed in 0u64..1000,
    ) {
        check_transient_convergence(fault_seed, rate, run_seed);
    }

    #[test]
    fn underbudgeted_chaos_fails_closed(fault_seed in any::<u64>()) {
        check_fails_closed(fault_seed);
    }
}

/// The full-registry acceptance criterion, at the fast conformance
/// parameters: transient-only faults with a sufficient retry budget give
/// trail hashes bitwise-identical to the fault-free pass at `--jobs 1`
/// and `--jobs 4`.
#[test]
fn full_registry_transient_chaos_is_bitwise_invisible() {
    quiet_injected_panics();
    let reg = treu::full_registry();
    let plan = FaultPlan::transient(7, 0.2);
    let policy = SupervisePolicy::new(plan.max_transient_attempts());
    let clean =
        Executor::sequential().verify_all_with(&reg, 77, |id, _| treu::conformance_params(id));
    assert!(clean.all_reproduced(), "{:?}", clean.violations());
    for jobs in [1usize, 4] {
        let chaotic = Executor::new(jobs).verify_all_supervised_with(
            &reg,
            77,
            None,
            &policy,
            Some(&plan),
            |id, _| treu::conformance_params(id),
        );
        assert!(chaotic.all_reproduced(), "jobs={jobs}: {:?}", chaotic.violations());
        for (c, f) in clean.outcomes.iter().zip(chaotic.outcomes.iter()) {
            assert_eq!(c.id, f.id);
            assert_eq!(c.fingerprint, f.fingerprint, "{} diverged at jobs={jobs}", c.id);
        }
    }
}

/// Satellite (d), library level: a permanent panic in one registered
/// experiment quarantines exactly that id with the `Panicked` taxonomy;
/// the other N−1 all reproduce, and the deny ladder gates as specified.
#[test]
fn permanent_panic_quarantines_one_id_and_spares_the_rest() {
    quiet_injected_panics();
    let mut reg = synthetic_registry();
    let n = reg.len() + 1;
    struct Broken;
    impl Experiment for Broken {
        fn name(&self) -> &str {
            "broken"
        }
        fn run(&self, _ctx: &mut RunContext) {
            panic!("hardware gremlin");
        }
    }
    reg.register("Z-broken", "prop", "permanently panics", Params::new(), Box::new(Broken));
    let policy = SupervisePolicy::new(2);
    let report =
        Executor::new(4).verify_all_supervised_with(&reg, 5, None, &policy, None, |_, d| d);
    assert_eq!(report.outcomes.len(), n);
    assert_eq!(report.outcomes.iter().filter(|o| o.reproduced).count(), n - 1);
    let q = report.quarantined();
    assert_eq!(q.len(), 1);
    assert_eq!(q[0].id, "Z-broken");
    let failure = q[0].failure.as_ref().expect("quarantined outcomes carry a failure");
    assert_eq!(failure.taxonomy, FailureKind::Panicked);
    assert_eq!(failure.attempts, 3, "retries + 1");
    assert!(failure.last_error.contains("hardware gremlin"));
    let rendered = report.render();
    assert!(rendered.contains("QUARANTINED(Panicked) after 3 attempt(s)"), "{rendered}");
    assert!(rendered.contains(&format!("{}/{} reproduced", n - 1, n)), "{rendered}");
    assert!(report.exceeds(DenyPolicy::Error));
    assert!(report.exceeds(DenyPolicy::Warn));
    assert!(!report.exceeds(DenyPolicy::None));
}

/// ISSUE 5 satellite (d): the cache's statistics live under one lock, so
/// a snapshot taken while a chaotic parallel verification hammers the
/// cache is never torn — every lookup lands in exactly one category, and
/// the categories always sum back to the lookup count.
#[test]
fn cache_stats_stay_consistent_under_chaos() {
    quiet_injected_panics();
    let reg = synthetic_registry();
    let dir = std::env::temp_dir().join(format!("treu-chaos-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = RunCache::open(&dir).expect("cache opens");
    let plan = FaultPlan::transient(11, 0.3);
    let policy = SupervisePolicy::new(plan.max_transient_attempts());
    for pass in 0..2 {
        let report = Executor::new(4).verify_all_supervised_with(
            &reg,
            21,
            Some(&cache),
            &policy,
            Some(&plan),
            |_, d| d,
        );
        assert!(report.all_reproduced(), "pass {pass}: {:?}", report.violations());
        let stats = cache.stats();
        assert!(stats.consistent(), "pass {pass}: torn snapshot {stats:?}");
    }
    let end = cache.stats();
    let n = reg.len() as u64;
    assert_eq!(end.lookups, 2 * n, "one classified lookup per id per pass");
    assert_eq!(end.misses, n, "cold pass misses every id");
    assert_eq!(end.hits, n, "warm pass replays every id");
    assert_eq!(end.stores, n, "only the cold pass stores");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// ISSUE 6 satellite (b): the same chaos invariant with the cache under
/// a hard bound — `CacheStats::consistent()` must hold after every
/// eviction, the bound must hold at rest, and eviction churn must never
/// corrupt a verification verdict.
#[test]
fn bounded_cache_stats_stay_consistent_under_chaotic_eviction() {
    quiet_injected_panics();
    let reg = synthetic_registry();
    let dir = std::env::temp_dir().join(format!("treu-chaos-bounded-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // Bound below the registry size so every pass churns the cache.
    let bound = CacheBound::entries(3);
    let cache = RunCache::open_bounded(&dir, bound).expect("cache opens");
    let plan = FaultPlan::transient(11, 0.3);
    let policy = SupervisePolicy::new(plan.max_transient_attempts());
    for pass in 0..3 {
        let report = Executor::new(4).verify_all_supervised_with(
            &reg,
            21,
            Some(&cache),
            &policy,
            Some(&plan),
            |_, d| d,
        );
        assert!(report.all_reproduced(), "pass {pass}: {:?}", report.violations());
        let stats = cache.stats();
        assert!(stats.consistent(), "pass {pass}: torn snapshot after evictions {stats:?}");
        assert!(
            cache.resident_entries().len() <= 3,
            "pass {pass}: bound violated at rest: {:?}",
            cache.resident_entries()
        );
    }
    let end = cache.stats();
    let n = reg.len() as u64;
    assert_eq!(end.lookups, 3 * n, "one classified lookup per id per pass");
    assert_eq!(end.hits + end.misses, 3 * n, "every lookup classified");
    assert!(end.evictions > 0, "a 3-entry bound over {n} ids must evict: {end:?}");
    assert_eq!(end.stores, end.misses, "every miss recomputes and stores");
    assert_eq!(
        end.evictions,
        cache.eviction_log().len() as u64,
        "the eviction log and the counter must agree"
    );
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// Retries that rescue a run downgrade the finding to warn severity:
/// `--deny warn` gates, `--deny error` does not.
#[test]
fn rescued_runs_gate_only_at_warn() {
    quiet_injected_panics();
    let reg = synthetic_registry();
    let plan = FaultPlan::transient(3, 1.0);
    let policy = SupervisePolicy::new(plan.max_transient_attempts());
    let report =
        Executor::new(2).verify_all_supervised_with(&reg, 9, None, &policy, Some(&plan), |_, d| d);
    assert!(report.all_reproduced());
    assert!(!report.retried().is_empty(), "a rate-1.0 plan must force retries");
    assert!(report.exceeds(DenyPolicy::Warn));
    assert!(!report.exceeds(DenyPolicy::Error));
    assert!(!report.exceeds(DenyPolicy::None));
}
