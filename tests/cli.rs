//! Integration tests for the `treu` command-line interface.

use std::process::Command;

fn treu(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_treu"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn list_prints_the_full_index() {
    let out = treu(&["list"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    for id in treu::ALL_EXPERIMENT_IDS {
        assert!(stdout.contains(id), "index missing {id}");
    }
}

#[test]
fn run_prints_provenance_and_is_seed_stable() {
    let a = treu(&["run", "T1", "7"]);
    let b = treu(&["run", "T1", "7"]);
    assert!(a.status.success());
    let sa = String::from_utf8(a.stdout).expect("utf8");
    let sb = String::from_utf8(b.stdout).expect("utf8");
    assert_eq!(sa, sb, "identical seeds must print identical provenance");
    assert!(sa.contains("metric max_abs_dev = 0"));
    assert!(sa.contains("fingerprint 0x"));
}

#[test]
fn verify_reports_reproduction() {
    let out = treu(&["verify", "T2", "11"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("REPRODUCED"), "{stdout}");
}

#[test]
fn tables_render_all_three() {
    let out = treu(&["tables"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("Table 1"));
    assert!(stdout.contains("Table 2"));
    assert!(stdout.contains("Table 3"));
    assert!(stdout.contains("Collaborate with peers"));
}

#[test]
fn unknown_id_fails_cleanly() {
    let out = treu(&["run", "NOPE"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("unknown experiment id"));
}

#[test]
fn no_args_prints_usage() {
    let out = treu(&[]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("usage"));
}
