//! Integration tests for the `treu` command-line interface.

use std::process::Command;

fn treu(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_treu")).args(args).output().expect("binary runs")
}

#[test]
fn list_prints_the_full_index() {
    let out = treu(&["list"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    for id in treu::ALL_EXPERIMENT_IDS {
        assert!(stdout.contains(id), "index missing {id}");
    }
}

#[test]
fn run_prints_provenance_and_is_seed_stable() {
    let a = treu(&["run", "T1", "7"]);
    let b = treu(&["run", "T1", "7"]);
    assert!(a.status.success());
    let sa = String::from_utf8(a.stdout).expect("utf8");
    let sb = String::from_utf8(b.stdout).expect("utf8");
    assert_eq!(sa, sb, "identical seeds must print identical provenance");
    assert!(sa.contains("metric max_abs_dev = 0"));
    assert!(sa.contains("fingerprint 0x"));
}

#[test]
fn verify_reports_reproduction() {
    let out = treu(&["verify", "T2", "11"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("REPRODUCED"), "{stdout}");
}

#[test]
fn tables_render_all_three() {
    let out = treu(&["tables"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("Table 1"));
    assert!(stdout.contains("Table 2"));
    assert!(stdout.contains("Table 3"));
    assert!(stdout.contains("Collaborate with peers"));
}

#[test]
fn tables_are_identical_for_every_jobs_value() {
    let one = treu(&["tables", "--jobs", "1"]);
    let eight = treu(&["tables", "--jobs", "8"]);
    assert!(one.status.success() && eight.status.success());
    assert_eq!(one.stdout, eight.stdout, "--jobs must never change output");
}

#[test]
fn verify_accepts_jobs_flag_in_both_spellings() {
    let a = treu(&["verify", "T1", "--jobs", "2"]);
    let b = treu(&["verify", "T1", "-j", "4"]);
    assert!(a.status.success() && b.status.success());
    let sa = String::from_utf8(a.stdout).expect("utf8");
    let sb = String::from_utf8(b.stdout).expect("utf8");
    assert_eq!(sa, sb);
    assert!(sa.contains("REPRODUCED"));
}

#[test]
fn bad_jobs_value_fails_with_usage_error() {
    for bad in [&["tables", "--jobs", "0"][..], &["tables", "--jobs", "x"], &["tables", "--jobs"]] {
        let out = treu(bad);
        assert_eq!(out.status.code(), Some(2), "{bad:?}");
        let stderr = String::from_utf8(out.stderr).expect("utf8");
        assert!(stderr.contains("--jobs") || stderr.contains("requires a value"), "{stderr}");
    }
}

#[test]
fn unknown_id_fails_cleanly() {
    let out = treu(&["run", "NOPE"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("unknown experiment id"));
}

#[test]
fn no_args_prints_usage() {
    let out = treu(&[]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("usage"));
}

fn cache_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("treu-cli-cache-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn verify_replays_from_a_warm_cache() {
    let dir = cache_dir("verify");
    let dir_s = dir.to_str().expect("utf8 path");
    let cold = treu(&["verify", "T1", "--cache-dir", dir_s]);
    assert!(cold.status.success());
    let cold_out = String::from_utf8(cold.stdout).expect("utf8");
    assert!(cold_out.contains("REPRODUCED"), "{cold_out}");
    assert!(!cold_out.contains("[cached]"), "cold pass must actually verify: {cold_out}");
    assert!(cold_out.contains("1 miss(es)"), "{cold_out}");
    assert!(cold_out.contains("1 store(s)"), "{cold_out}");

    let warm = treu(&["verify", "T1", "--cache-dir", dir_s]);
    assert!(warm.status.success());
    let warm_out = String::from_utf8(warm.stdout).expect("utf8");
    assert!(warm_out.contains("REPRODUCED [cached]"), "{warm_out}");
    assert!(warm_out.contains("1 hit(s)"), "{warm_out}");

    // The fingerprint replayed from the cache equals the verified one.
    let fp = |s: &str| s.split("fingerprint ").nth(1).map(|t| t[..18].to_string());
    assert_eq!(fp(&cold_out), fp(&warm_out), "cache replay changed the fingerprint");

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn no_cache_flag_disables_a_cache_dir() {
    let dir = cache_dir("nocache");
    let dir_s = dir.to_str().expect("utf8 path");
    assert!(treu(&["verify", "T1", "--cache-dir", dir_s]).status.success());
    let out = treu(&["verify", "T1", "--cache-dir", dir_s, "--no-cache"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(!stdout.contains("[cached]"), "--no-cache must force recomputation: {stdout}");
    assert!(!stdout.contains("cache:"), "--no-cache prints no cache stats: {stdout}");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn run_and_tables_cache_without_changing_output() {
    let dir = cache_dir("runtables");
    let dir_s = dir.to_str().expect("utf8 path");

    let plain = treu(&["run", "T2", "9"]);
    let cold = treu(&["run", "T2", "9", "--cache-dir", dir_s]);
    let warm = treu(&["run", "T2", "9", "--cache-dir", dir_s]);
    assert!(plain.status.success() && cold.status.success() && warm.status.success());
    // Wall time is environment, not result: drop the "N.NNNs," token (and
    // cache chrome) before comparing.
    let strip = |o: &std::process::Output| {
        String::from_utf8(o.stdout.clone())
            .expect("utf8")
            .lines()
            .filter(|l| !l.starts_with("cache:"))
            .map(|l| {
                l.replace(" [cached]", "")
                    .split_whitespace()
                    .filter(|t| !t.ends_with("s,"))
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip(&plain), strip(&cold), "caching changed run output");
    assert_eq!(strip(&cold), strip(&warm), "cache replay changed run output");
    assert!(String::from_utf8(warm.stdout).expect("utf8").contains("[cached]"));

    let t_plain = treu(&["tables", "5"]);
    let t_cold = treu(&["tables", "5", "--cache-dir", dir_s]);
    let t_warm = treu(&["tables", "5", "--cache-dir", dir_s]);
    assert!(t_plain.status.success() && t_cold.status.success() && t_warm.status.success());
    assert_eq!(strip(&t_plain), strip(&t_cold), "caching changed tables output");
    assert_eq!(strip(&t_cold), strip(&t_warm), "cache replay changed tables output");
    let warm_raw = String::from_utf8(t_warm.stdout).expect("utf8");
    assert!(warm_raw.contains("1 hit(s)"), "{warm_raw}");

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn bad_cache_flag_fails_with_usage_error() {
    let out = treu(&["tables", "--cache-dir"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("--cache-dir requires a value"), "{stderr}");
}

const WORKSPACE: &str = env!("CARGO_MANIFEST_DIR");
const FIXTURES: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/crates/lint/tests/fixtures");

#[test]
fn lint_passes_on_the_workspace_at_deny_warn() {
    let out = treu(&["lint", WORKSPACE, "--deny", "warn"]);
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("clean"), "{stdout}");
}

#[test]
fn lint_fails_on_the_fixture_corpus() {
    let out = treu(&["lint", FIXTURES]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("error[R1 unordered-collections]"), "{stdout}");
    assert!(stdout.contains("hint:"), "{stdout}");
}

#[test]
fn lint_json_format_reports_counts() {
    let out = treu(&["lint", FIXTURES, "--format", "json", "--deny", "none"]);
    assert!(out.status.success(), "--deny none never gates");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("\"version\": 1"), "{stdout}");
    assert!(stdout.contains("\"code\": \"R5\""), "{stdout}");
}

#[test]
fn lint_rules_filter_restricts_the_pass() {
    let out = treu(&["lint", FIXTURES, "--rules", "R2", "--deny", "none"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("ambient-randomness"), "{stdout}");
    assert!(!stdout.contains("unordered-collections"), "{stdout}");
}

#[test]
fn lint_no_flow_drops_the_taint_findings() {
    let with = treu(&["lint", FIXTURES, "--format", "json", "--deny", "none"]);
    let without = treu(&["lint", FIXTURES, "--no-flow", "--format", "json", "--deny", "none"]);
    assert!(with.status.success() && without.status.success());
    let with = String::from_utf8(with.stdout).expect("utf8");
    let without = String::from_utf8(without.stdout).expect("utf8");
    assert!(with.contains("\"code\": \"R8\""), "{with}");
    for flow in ["\"R8\"", "\"R9\"", "\"R10\"", "\"R11\"", "\"R12\""] {
        assert!(!without.contains(flow), "--no-flow leaked {flow}:\n{without}");
    }
}

#[test]
fn lint_baseline_round_trip_absorbs_existing_findings() {
    let file = std::env::temp_dir().join(format!("treu-cli-baseline-{}.tsv", std::process::id()));
    let path = file.to_str().expect("utf8 temp path");
    let write = treu(&["lint", FIXTURES, "--write-baseline", path, "--deny", "none"]);
    assert!(write.status.success(), "{}", String::from_utf8_lossy(&write.stderr));
    // Replaying against the baseline absorbs every finding, so the run
    // passes even at the strictest gate.
    let replay = treu(&["lint", FIXTURES, "--baseline", path, "--deny", "warn"]);
    let stdout = String::from_utf8(replay.stdout).expect("utf8");
    assert!(replay.status.success(), "{stdout}");
    assert!(stdout.contains("clean"), "{stdout}");
    std::fs::remove_file(&file).ok();
}

#[test]
fn lint_bad_flags_fail_with_usage_error() {
    for bad in [
        &["lint", "--format", "xml"][..],
        &["lint", "--deny", "loud"],
        &["lint", "--rules", "R13"],
        &["lint", "--format"],
    ] {
        let out = treu(bad);
        assert_eq!(out.status.code(), Some(2), "{bad:?}");
    }
}

// ---- supervision & chaos (ISSUE 4) -------------------------------------

#[test]
fn chaos_smoke_converges_under_enforce() {
    let out = treu(&["chaos", "--fault-seed", "7", "--rate", "0.2", "--enforce", "-j", "4"]);
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("converged to fault-free trails"), "{stdout}");
    assert!(!stdout.contains("DIVERGED"), "{stdout}");
    assert!(!stdout.contains("QUARANTINED"), "{stdout}");
}

#[test]
fn permanent_panic_quarantines_and_gates_per_deny_policy() {
    // 1 of N permanently panicking: the other N−1 verify, the broken id is
    // quarantined with its taxonomy, and the exit code follows --deny.
    let base = ["verify", "--conformance", "--fault-panic", "E2.7", "--retries", "1"];
    let n = treu::ALL_EXPERIMENT_IDS.len() + 1; // + E3

    let deny_error = treu(&base); // --deny error is the default
    let stdout = String::from_utf8(deny_error.stdout).expect("utf8");
    assert_eq!(deny_error.status.code(), Some(1), "{stdout}");
    assert!(stdout.contains("QUARANTINED(Panicked) after 2 attempt(s)"), "{stdout}");
    assert!(stdout.contains(&format!("{}/{} reproduced", n - 1, n)), "{stdout}");
    assert!(stdout.contains("1 quarantined: E2.7"), "{stdout}");

    let mut warn = base.to_vec();
    warn.extend(["--deny", "warn"]);
    assert_eq!(treu(&warn).status.code(), Some(1), "--deny warn also gates quarantines");

    let mut none = base.to_vec();
    none.extend(["--deny", "none"]);
    let out = treu(&none);
    assert!(out.status.success(), "--deny none reports but never gates");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("QUARANTINED(Panicked)"), "{stdout}");
}

#[test]
fn single_id_supervised_run_reports_retries() {
    // Rate-1.0 transient faults with a covering retry budget: the run
    // succeeds, reports its attempts, and stays seed-stable.
    // Fault seed 4 assigns (T1, seed 7) a transient error — the draw is
    // content-addressed, so this is stable, not flaky.
    let args = ["run", "T1", "7", "--fault-seed", "4", "--fault-rate", "1.0", "--retries", "3"];
    let a = treu(&args);
    let b = treu(&args);
    assert!(a.status.success());
    let sa = String::from_utf8(a.stdout).expect("utf8");
    let sb = String::from_utf8(b.stdout).expect("utf8");
    assert_eq!(sa, sb, "supervised runs must stay deterministic");
    assert!(sa.contains("after") && sa.contains("attempts"), "{sa}");
    assert!(sa.contains("fingerprint 0x"), "{sa}");

    // The same run without faults yields the same fingerprint: supervision
    // and injection never leak into results.
    let clean = treu(&["run", "T1", "7"]);
    let sc = String::from_utf8(clean.stdout).expect("utf8");
    let fp = |s: &str| s.split("fingerprint ").nth(1).map(|t| t[..18].to_string());
    assert_eq!(fp(&sa), fp(&sc), "fault plan changed a converged result");
}

#[test]
fn deadline_quarantines_a_straggler() {
    let out = treu(&["run", "E2.9", "--deadline-secs", "0.001", "--retries", "0"]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("QUARANTINED(TimedOut)"), "{stdout}");
}

// ---- run traces (ISSUE 5) ----------------------------------------------

fn trace_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("treu-cli-trace-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// The lone event-stream file under a trace dir (the sidecar excluded).
fn event_file(dir: &std::path::Path) -> std::path::PathBuf {
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .expect("trace dir exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.ends_with(".jsonl") && !n.ends_with(".times.jsonl"))
        })
        .collect();
    files.sort();
    assert_eq!(files.len(), 1, "expected exactly one event stream in {}", dir.display());
    files.remove(0)
}

#[test]
fn trace_out_is_bitwise_identical_across_jobs_counts() {
    let d1 = trace_dir("j1");
    let d4 = trace_dir("j4");
    let a = treu(&["verify", "--conformance", "-j", "1", "--trace-out", d1.to_str().unwrap()]);
    let b = treu(&["verify", "--conformance", "-j", "4", "--trace-out", d4.to_str().unwrap()]);
    assert!(a.status.success() && b.status.success());
    let stdout = String::from_utf8(a.stdout).expect("utf8");
    assert!(stdout.contains("trace: "), "{stdout}");
    let (fa, fb) = (event_file(&d1), event_file(&d4));
    assert_eq!(fa.file_name(), fb.file_name(), "content address changed with --jobs");
    assert_eq!(
        std::fs::read(&fa).expect("readable"),
        std::fs::read(&fb).expect("readable"),
        "event stream changed with --jobs"
    );
    std::fs::remove_dir_all(&d1).expect("cleanup");
    std::fs::remove_dir_all(&d4).expect("cleanup");
}

#[test]
fn trace_subcommand_renders_and_checks_stored_traces() {
    let dir = trace_dir("render");
    let dir_s = dir.to_str().unwrap();
    assert!(treu(&["run", "T1", "7", "--trace-out", dir_s]).status.success());

    let rendered = treu(&["trace", dir_s]);
    assert!(rendered.status.success());
    let stdout = String::from_utf8(rendered.stdout).expect("utf8");
    assert!(stdout.contains("run trace"), "{stdout}");
    assert!(stdout.contains("claim replica 0"), "{stdout}");
    assert!(stdout.contains("attempt-start replica 0 attempt 0"), "{stdout}");
    assert!(stdout.contains("worker   busy(s)"), "{stdout}");

    let checked = treu(&["trace", dir_s, "--check"]);
    assert!(checked.status.success());
    assert!(String::from_utf8(checked.stdout).expect("utf8").contains(": ok (0x"));

    // Tampering with the stored bytes breaks the content address.
    let f = event_file(&dir);
    let mut bytes = std::fs::read(&f).expect("readable");
    bytes.push(b'\n');
    std::fs::write(&f, bytes).expect("writable");
    let tampered = treu(&["trace", dir_s, "--check"]);
    assert_eq!(tampered.status.code(), Some(1));
    let stderr = String::from_utf8(tampered.stderr).expect("utf8");
    assert!(stderr.contains("does not match address"), "{stderr}");

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn faulted_run_trace_shows_fault_backoff_and_retry() {
    let dir = trace_dir("faulted");
    let dir_s = dir.to_str().unwrap();
    // Fault seed 4 assigns (T1, seed 7) a transient error (see the
    // supervised-run test above); the retry budget covers it.
    let args = [
        "run",
        "T1",
        "7",
        "--fault-seed",
        "4",
        "--fault-rate",
        "1.0",
        "--retries",
        "3",
        "--trace-out",
        dir_s,
    ];
    assert!(treu(&args).status.success());
    let rendered = treu(&["trace", dir_s]);
    assert!(rendered.status.success());
    let stdout = String::from_utf8(rendered.stdout).expect("utf8");
    let fault = stdout.find("fault replica 0");
    let backoff = stdout.find("backoff replica 0");
    assert!(fault.is_some(), "{stdout}");
    assert!(backoff.is_some(), "{stdout}");
    assert!(fault < backoff, "fault must precede the backoff: {stdout}");
    assert!(stdout.contains("attempt-start replica 0 attempt 1"), "{stdout}");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn bad_trace_flags_fail_with_usage_error() {
    for bad in [
        &["run", "T1", "--trace-out"][..],
        &["trace"],
        &["trace", "--top", "0"],
        &["trace", "--nope"],
    ] {
        let out = treu(bad);
        assert_eq!(out.status.code(), Some(2), "{bad:?}");
    }
}

#[test]
fn bad_supervision_flags_fail_with_usage_error() {
    for bad in [
        &["run", "T1", "--retries"][..],
        &["run", "T1", "--fault-rate", "1.5"],
        &["run", "T1", "--deny", "loudly"],
        &["chaos", "--rate", "nope"],
    ] {
        let out = treu(bad);
        assert_eq!(out.status.code(), Some(2), "{bad:?}");
    }
}

/// A soak shape small enough for a CLI test: three tenants, two epochs,
/// a six-entry bound — still enough traffic to hit, miss and evict.
fn small_soak_args<'a>(out_path: &'a str, extra: &[&'a str]) -> Vec<&'a str> {
    let mut args = vec![
        "soak",
        "42",
        "--tenants",
        "3",
        "--epochs",
        "2",
        "--per-epoch",
        "16",
        "--cache-entries",
        "6",
        "--out",
        out_path,
    ];
    args.extend_from_slice(extra);
    args
}

#[test]
fn soak_writes_bench_json_with_logical_latencies_and_hit_rate() {
    let out_path = std::env::temp_dir().join(format!("treu-soak-cli-{}.json", std::process::id()));
    let out_s = out_path.to_str().unwrap();
    let out = treu(&small_soak_args(out_s, &[]));
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("soak: 32 submission(s), 3 tenant(s), 2 epoch(s)"), "{stdout}");
    assert!(stdout.contains("steady-state hit-rate"), "{stdout}");
    assert!(stdout.contains("trace address 0x"), "{stdout}");
    assert!(stdout.contains("zero drift: true"), "{stdout}");
    let json = std::fs::read_to_string(&out_path).expect("BENCH_soak.json written");
    for field in [
        "\"bench\": \"soak/multi-tenant\"",
        "\"p50_latency_rounds\"",
        "\"p99_latency_rounds\"",
        "\"steady_hit_rate\"",
        "\"epoch_hit_rates\"",
        "\"zero_drift\": true",
        "\"trace_address\"",
    ] {
        assert!(json.contains(field), "missing {field} in:\n{json}");
    }
    std::fs::remove_file(&out_path).expect("cleanup");
}

#[test]
fn soak_output_is_identical_at_jobs_one_and_four() {
    let out_path = std::env::temp_dir().join(format!("treu-soak-jobs-{}.json", std::process::id()));
    let out_s = out_path.to_str().unwrap();
    let one = treu(&small_soak_args(out_s, &["--jobs", "1"]));
    let json_one = std::fs::read_to_string(&out_path).expect("json written");
    let four = treu(&small_soak_args(out_s, &["--jobs", "4"]));
    let json_four = std::fs::read_to_string(&out_path).expect("json written");
    assert!(one.status.success() && four.status.success());
    // The header echoes the jobs count itself; every line below it —
    // hit-rates, latencies, trace address, ledger — must be identical.
    let logical_lines = |out: &[u8]| -> String {
        String::from_utf8(out.to_vec())
            .expect("utf8")
            .lines()
            .filter(|l| !l.contains("jobs="))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        logical_lines(&one.stdout),
        logical_lines(&four.stdout),
        "--jobs must never change the soak's results"
    );
    let strip_variable = |json: &str| -> String {
        json.lines()
            .filter(|l| !l.contains("wall_seconds") && !l.contains("\"jobs\""))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        strip_variable(&json_one),
        strip_variable(&json_four),
        "every logical JSON field must be jobs-invariant"
    );
    std::fs::remove_file(&out_path).expect("cleanup");
}

#[test]
fn soak_enforce_accepts_a_converging_soak() {
    let out_path =
        std::env::temp_dir().join(format!("treu-soak-enforce-{}.json", std::process::id()));
    let out_s = out_path.to_str().unwrap();
    // A slightly roomier shape than the other CLI soaks: the enforce
    // ladder gates on the steady-state hit-rate floor, so the bound must
    // hold the hot set.
    let out = treu(&[
        "soak",
        "42",
        "--tenants",
        "3",
        "--epochs",
        "2",
        "--per-epoch",
        "32",
        "--cache-entries",
        "12",
        "--out",
        out_s,
        "--enforce",
        "--jobs",
        "2",
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("soak: ENFORCED"), "{stdout}");
    assert!(stdout.contains("bitwise-identical to primary"), "{stdout}");
    std::fs::remove_file(&out_path).expect("cleanup");
}

#[test]
fn bad_soak_flags_fail_with_usage_error() {
    for bad in [
        &["soak", "--bogus"][..],
        &["soak", "--tenants", "x"],
        &["soak", "--epochs", "0"],
        &["soak", "--per-epoch"],
        &["soak", "not-a-seed"],
    ] {
        let out = treu(bad);
        assert_eq!(out.status.code(), Some(2), "{bad:?}");
    }
}

#[test]
fn tune_persists_a_schedule_book_and_reloads_it() {
    let dir = cache_dir("tune");
    let dirs = dir.to_str().expect("utf8 path");
    let args = ["tune", "7", "--quick", "--shapes", "24x24x24", "--repeats", "1", "--jobs", "1"];
    let first = treu(&[&args[..], &["--cache-dir", dirs]].concat());
    assert!(first.status.success(), "{}", String::from_utf8_lossy(&first.stderr));
    let text = String::from_utf8_lossy(&first.stdout);
    assert!(text.contains("tuned 24x24x24 (class sss)"), "missing tune line:\n{text}");
    assert!(text.contains("schedule book persisted (1 entries)"), "missing persist line:\n{text}");

    // A second tune of a different shape reloads the stored book and
    // accumulates: the 24^3 small-class entry is replaced by the newer
    // tune of the same class, so the book still holds exactly one entry
    // per shape class.
    let again = treu(&[
        "tune",
        "7",
        "--quick",
        "--shapes",
        "80x80x80",
        "--repeats",
        "1",
        "--jobs",
        "1",
        "--cache-dir",
        dirs,
    ]);
    assert!(again.status.success(), "{}", String::from_utf8_lossy(&again.stderr));
    let text = String::from_utf8_lossy(&again.stdout);
    assert!(text.contains("sss"), "first class survived the reload:\n{text}");
    assert!(text.contains("mmm"), "second class tuned:\n{text}");
    assert!(text.contains("schedule book persisted (2 entries)"), "book grew:\n{text}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tune_without_a_cache_dir_still_reports_but_does_not_persist() {
    let out = treu(&["tune", "7", "--quick", "--shapes", "16x16x16", "--repeats", "1"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("not persisted"), "missing no-cache note:\n{text}");
}

#[test]
fn bad_tune_flags_fail_with_usage_error() {
    for bad in [
        &["tune", "--bogus"][..],
        &["tune", "--shapes", "12x12"],
        &["tune", "--shapes", "axbxc"],
        &["tune", "--repeats", "0"],
        &["tune", "not-a-seed"],
    ] {
        let out = treu(bad);
        assert_eq!(out.status.code(), Some(2), "{bad:?}");
    }
}
