//! Integration tests for the sharded verification service: real
//! coordinator/worker subprocesses, real SIGKILLs, and the CLI surface
//! that drives them.
//!
//! The determinism claims here are the strong ones from DESIGN §15: a
//! sharded run — even one whose workers are killed mid-shard — must
//! write the *same content-addressed trace file* as the fault-free
//! in-process baseline.

use std::io::{BufReader, Read as _};
use std::process::{Command, Stdio};

use treu::core::cache::{Lookup, RunCache};
use treu::core::experiment::Params;
use treu::core::svc::{read_frame, write_frame};

fn treu(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_treu")).args(args).output().expect("binary runs")
}

/// Name of the single `trace-*.jsonl` file in `dir`.
fn trace_file_name(dir: &std::path::Path) -> String {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .expect("trace dir readable")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("trace-") && n.ends_with(".jsonl") && !n.contains(".times."))
        .collect();
    names.sort();
    assert_eq!(names.len(), 1, "expected exactly one trace file, got {names:?}");
    names.pop().expect("one name")
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("treu-svc-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn sharded_verify_writes_the_in_process_trace_bit_for_bit() {
    let base = temp_dir("base");
    let svc = temp_dir("svc");

    let a = treu(&["verify", "--conformance", "--trace-out", base.to_str().expect("utf8 path")]);
    assert!(a.status.success(), "baseline verify failed: {}", String::from_utf8_lossy(&a.stderr));

    let b = treu(&[
        "verify",
        "--workers",
        "2",
        "--conformance",
        "--trace-out",
        svc.to_str().expect("utf8 path"),
    ]);
    assert!(b.status.success(), "sharded verify failed: {}", String::from_utf8_lossy(&b.stderr));
    let stdout = String::from_utf8(b.stdout).expect("utf8");
    assert!(stdout.contains("svc: workers=2"), "missing svc stats line:\n{stdout}");

    // Content-addressed file names: equal names ⇒ equal bytes.
    let base_name = trace_file_name(&base);
    assert_eq!(base_name, trace_file_name(&svc), "sharded trace diverged from baseline");
    let ab = std::fs::read(base.join(&base_name)).expect("baseline trace");
    let bb = std::fs::read(svc.join(&base_name)).expect("sharded trace");
    assert_eq!(ab, bb, "same name but different bytes — content addressing is broken");

    let _ = std::fs::remove_dir_all(&base);
    let _ = std::fs::remove_dir_all(&svc);
}

#[test]
fn chaos_drill_converges_with_workers_under_a_kill_plan() {
    let out = treu(&["chaos", "11", "--workers", "2", "--kill-plan", "41", "--enforce"]);
    assert!(
        out.status.success(),
        "chaos --workers --enforce failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("converged"), "missing convergence summary:\n{stdout}");
    assert!(stdout.contains("svc: workers=2"), "missing svc stats line:\n{stdout}");
}

#[test]
fn respawn_budget_exhaustion_degrades_but_still_converges() {
    let base = temp_dir("deg-base");
    let deg = temp_dir("deg");

    let a = treu(&["verify", "--conformance", "--trace-out", base.to_str().expect("utf8 path")]);
    assert!(a.status.success());

    // Every dispatch is killed and nothing may respawn: the coordinator
    // must fall all the way down the degradation ladder and finish
    // every task in-process — exit 0, same trace.
    let b = treu(&[
        "verify",
        "--workers",
        "2",
        "--kill-plan",
        "9",
        "--kill-rate",
        "1.0",
        "--respawn-budget",
        "0",
        "--conformance",
        "--trace-out",
        deg.to_str().expect("utf8 path"),
    ]);
    assert!(
        b.status.success(),
        "degraded verify must still exit 0: {}",
        String::from_utf8_lossy(&b.stderr)
    );
    let stdout = String::from_utf8(b.stdout).expect("utf8");
    assert!(stdout.contains("DEGRADED"), "stats must admit degradation:\n{stdout}");
    assert_eq!(
        trace_file_name(&base),
        trace_file_name(&deg),
        "degraded run diverged from baseline"
    );

    let _ = std::fs::remove_dir_all(&base);
    let _ = std::fs::remove_dir_all(&deg);
}

/// Satellite drill: SIGKILL a worker while it may be mid-store and prove
/// the shared cache shrugs — no torn entry is ever visible, the killed
/// writer's orphaned `.tmp` spool is swept on the next open, and the
/// stats snapshot invariant holds throughout.
#[test]
fn killed_worker_never_leaves_a_torn_cache_entry() {
    let dir = temp_dir("kill");

    // Spawn a real worker over the wire protocol. `env_clear` mirrors the
    // coordinator's own scrub: the child sees no ambient environment.
    let mut child = Command::new(env!("CARGO_BIN_EXE_treu"))
        .arg("worker")
        .env_clear()
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("worker spawns");
    let mut stdin = child.stdin.take().expect("worker stdin");
    let mut stdout = BufReader::new(child.stdout.take().expect("worker stdout"));

    let hello = format!(
        "{{\"msg\":\"hello\",\"proto\":1,\"jobs\":1,\"tracing\":false,\"cache_dir\":\"{}\"}}",
        dir.to_str().expect("utf8 path").replace('\\', "\\\\").replace('"', "\\\"")
    );
    write_frame(&mut stdin, &hello).expect("hello");
    let ready = read_frame(&mut stdout).expect("io").expect("ready frame");
    assert!(ready.contains("\"msg\":\"ready\""), "unexpected frame: {ready}");

    // One cache-enabled task, then SIGKILL while the store may be in
    // flight. The exact interleaving doesn't matter: the invariant is
    // that *no* interleaving can tear an entry.
    write_frame(
        &mut stdin,
        "{\"msg\":\"shard\",\"shard\":0,\"tasks\":1}\ntask\t0\tT1\t7\t0\t0\t0\t1",
    )
    .expect("shard");
    std::thread::sleep(std::time::Duration::from_millis(15));
    child.kill().expect("SIGKILL");
    child.wait().expect("reaped");
    // Drain whatever the worker managed to flush before dying.
    let mut rest = Vec::new();
    let _ = stdout.read_to_end(&mut rest);

    // Plant an orphan spool under a provably dead pid alongside whatever
    // the killed worker left behind.
    let planted = dir.join("deadbeefdeadbeef.run.4294967294.1.tmp");
    std::fs::write(&planted, b"torn half-write").expect("plant orphan tmp");

    // Next open sweeps every orphan: the planted one and any spool the
    // killed worker abandoned (its pid is dead too).
    let cache = RunCache::open(&dir).expect("reopen");
    assert!(!planted.exists(), "planted orphan tmp survived the sweep");
    let leftovers: Vec<String> = std::fs::read_dir(&dir)
        .expect("cache dir readable")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".tmp"))
        .collect();
    assert!(leftovers.is_empty(), "orphaned spools survived the sweep: {leftovers:?}");

    // The entry is either wholly present or wholly absent — never torn.
    let looked = cache.lookup_classified("T1", 7, &Params::new());
    assert!(
        !matches!(looked, Lookup::Corrupt),
        "killed writer left a torn entry visible as Corrupt"
    );
    assert!(cache.stats().consistent(), "stats snapshot invariant broken after crash recovery");

    let _ = std::fs::remove_dir_all(&dir);
}
