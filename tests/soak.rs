//! Soak conformance suite (ISSUE 6): the sustained multi-tenant chaos
//! soak must be a *deterministic* stress — Zipf traffic, fair dispatch,
//! epoch-phased faults and bounded-cache eviction all compose into a
//! report whose every result field is a pure function of the config.
//!
//! Three properties anchor the lifecycle model:
//!
//! 1. **Eviction determinism** — same seed + bound ⇒ identical eviction
//!    order, final cache contents and trace address at jobs=1 vs jobs=4.
//! 2. **Zipf sanity** — the tenant draw is genuinely skewed: the head
//!    tenant dominates, every tenant still gets traffic.
//! 3. **Zero drift** — over random (seed, rate, bound) triples, every
//!    served fingerprint matches the fault-free baseline and the soak's
//!    trace address equals the rate-0 soak's, bit for bit.

// The vendored proptest shim expands multi-parameter strategies deeply.
#![recursion_limit = "256"]

use proptest::prelude::*;
use treu::core::cache::{CacheBound, RunCache};
use treu::core::experiment::{Experiment, Params, RunContext};
use treu::core::ExperimentRegistry;
use treu_bench::soak::{generate, run_soak, SoakConfig, SoakReport};

/// Silences the per-panic stderr trace for *injected* panics only.
fn quiet_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.starts_with("injected fault") {
                default(info);
            }
        }));
    });
}

/// A cheap seeded experiment so the soak sweep stays fast; the cache,
/// scheduler and supervisor under test are the production ones.
struct Synthetic(&'static str);

impl Experiment for Synthetic {
    fn name(&self) -> &str {
        self.0
    }

    fn run(&self, ctx: &mut RunContext) {
        let n = ctx.int("n", 16).unsigned_abs() as usize;
        let mut rng = ctx.rng("draws");
        let sum: f64 = (0..n.max(1)).map(|_| rng.next_f64()).sum();
        ctx.record("sum", sum);
    }
}

fn synthetic_registry() -> ExperimentRegistry {
    let mut reg = ExperimentRegistry::new();
    for (id, n) in [("S1", 8), ("S2", 16), ("S3", 24), ("S4", 4), ("S5", 12)] {
        reg.register(
            id,
            "prop",
            "synthetic",
            Params::new().with_int("n", n),
            Box::new(Synthetic(id)),
        );
    }
    reg
}

/// A small soak shape the property sweep can afford: enough traffic for
/// the bound to bite, small enough for dozens of runs.
fn small_config(seed: u64, rate: f64, bound: CacheBound, jobs: usize) -> SoakConfig {
    SoakConfig {
        seed,
        tenants: 4,
        submissions_per_epoch: 32,
        epochs: 3,
        capacity: 8,
        quota: 2,
        zipf_s: 1.1,
        ids_per_tenant: 3,
        seeds_per_tenant: 2,
        fault_seed: seed ^ 0x5151,
        fault_rate: rate,
        bound,
        jobs,
    }
}

/// Runs one soak on a fresh bounded cache directory, returning the
/// report and the end-of-soak cache statistics snapshot.
fn soak_once(
    reg: &ExperimentRegistry,
    cfg: &SoakConfig,
    label: &str,
) -> (SoakReport, treu::core::cache::CacheStats) {
    let dir = std::env::temp_dir().join(format!(
        "treu-soak-test-{}-{label}-{}",
        std::process::id(),
        cfg.seed
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = RunCache::open_bounded(&dir, cfg.bound).expect("cache opens");
    let report = run_soak(reg, &|_, d| d, cfg, &cache);
    let stats = cache.stats();
    std::fs::remove_dir_all(&dir).expect("cleanup");
    (report, stats)
}

/// Property 1 body: the jobs knob must be invisible to every result —
/// eviction order, final contents, latencies and the trace address.
fn check_eviction_determinism(seed: u64, rate: f64, max_entries: usize) {
    quiet_injected_panics();
    let reg = synthetic_registry();
    let bound = CacheBound::entries(max_entries);
    let (one, stats_one) = soak_once(&reg, &small_config(seed, rate, bound, 1), "j1");
    let (four, stats_four) = soak_once(&reg, &small_config(seed, rate, bound, 4), "j4");
    prop_assert_eq!(&one.final_entries, &four.final_entries, "final cache contents diverged");
    prop_assert_eq!(one.eviction_address, four.eviction_address, "eviction order diverged");
    prop_assert_eq!(one.trace_address, four.trace_address, "trace address diverged");
    prop_assert_eq!(one.hits, four.hits);
    prop_assert_eq!(one.computed, four.computed);
    prop_assert_eq!(one.rounds, four.rounds);
    prop_assert_eq!(one.p50_latency_rounds, four.p50_latency_rounds);
    prop_assert_eq!(one.p99_latency_rounds, four.p99_latency_rounds);
    prop_assert_eq!(&one.epoch_hit_rates, &four.epoch_hit_rates);
    prop_assert_eq!(stats_one.evictions, stats_four.evictions);
    prop_assert!(stats_one.consistent(), "jobs=1 stats torn: {:?}", stats_one);
    prop_assert!(stats_four.consistent(), "jobs=4 stats torn: {:?}", stats_four);
    prop_assert!(
        one.final_entries.len() <= max_entries,
        "bound violated at rest: {} > {max_entries}",
        one.final_entries.len()
    );
}

/// Property 3 body: chaos is invisible in the bits — zero drift, zero
/// quarantine, and the whole logical trace identical to the rate-0 soak.
fn check_zero_drift(seed: u64, rate: f64, max_entries: usize) {
    quiet_injected_panics();
    let reg = synthetic_registry();
    let bound = CacheBound::entries(max_entries);
    let cfg = small_config(seed, rate, bound, 2);
    let (chaotic, stats) = soak_once(&reg, &cfg, "chaos");
    prop_assert!(
        chaotic.zero_drift(),
        "seed={seed} rate={rate} bound={max_entries}: drift {} quarantined {}",
        chaotic.drift,
        chaotic.quarantined
    );
    prop_assert!(stats.consistent(), "stats torn after soak: {stats:?}");
    let mut clean_cfg = cfg.clone();
    clean_cfg.fault_rate = 0.0;
    let (clean, _) = soak_once(&reg, &clean_cfg, "clean");
    prop_assert_eq!(
        chaotic.trace_address,
        clean.trace_address,
        "seed={} rate={}: chaos leaked into the logical trace",
        seed,
        rate
    );
    prop_assert_eq!(&chaotic.final_entries, &clean.final_entries);
    prop_assert_eq!(chaotic.eviction_address, clean.eviction_address);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn eviction_is_deterministic_across_job_counts(
        seed in 0u64..10_000,
        rate in 0.0f64..0.3,
        max_entries in 2usize..12,
    ) {
        check_eviction_determinism(seed, rate, max_entries);
    }

    #[test]
    fn soak_has_zero_drift_for_random_seed_rate_bound_triples(
        seed in 0u64..10_000,
        rate in 0.0f64..0.3,
        max_entries in 2usize..12,
    ) {
        check_zero_drift(seed, rate, max_entries);
    }
}

/// Property 2: the Zipf tenant draw is skewed but total — the head
/// tenant dominates the tail and no tenant starves at generation time.
#[test]
fn zipf_traffic_is_skewed_and_total() {
    let cfg = SoakConfig {
        submissions_per_epoch: 1000,
        epochs: 4,
        ..small_config(2023, 0.0, CacheBound::unbounded(), 1)
    };
    let ids: Vec<String> = ["S1", "S2", "S3", "S4", "S5"].iter().map(|s| s.to_string()).collect();
    let subs = generate(&cfg, &ids);
    assert_eq!(subs.len(), 4000);
    assert_eq!(subs, generate(&cfg, &ids), "traffic replays bitwise");
    let mut counts = vec![0usize; cfg.tenants];
    for s in &subs {
        counts[s.tenant as usize] += 1;
        assert!(ids.contains(&s.id));
    }
    assert!(
        counts[0] > 2 * counts[cfg.tenants - 1],
        "head tenant must dominate the tail: {counts:?}"
    );
    assert!(counts.iter().all(|&c| c > 0), "every tenant gets traffic: {counts:?}");
    let sorted: Vec<usize> = {
        let mut v = counts.clone();
        v.sort_unstable_by(|a, b| b.cmp(a));
        v
    };
    assert_eq!(sorted, counts, "Zipf popularity must decrease with tenant rank: {counts:?}");
}

/// The steady-state claim behind `--enforce`: with a bound large enough
/// to hold the hot set, the hit-rate converges and the final epochs are
/// served mostly from cache, while a bound of one entry still soaks
/// cleanly (it just computes nearly everything).
#[test]
fn hit_rate_converges_to_a_steady_state_under_a_workable_bound() {
    quiet_injected_panics();
    let reg = synthetic_registry();
    let cfg = SoakConfig { epochs: 5, ..small_config(7, 0.2, CacheBound::entries(16), 2) };
    let (report, _) = soak_once(&reg, &cfg, "steady");
    assert!(report.zero_drift(), "drift {} quarantined {}", report.drift, report.quarantined);
    assert!(
        report.steady_hit_rate > 0.5,
        "16 entries hold the hot set; steady hit-rate {:.3} too low\n{}",
        report.steady_hit_rate,
        report.render()
    );
    let late = &report.epoch_hit_rates[2..];
    assert!(
        late.iter().all(|&r| r > 0.5),
        "late epochs must be warm: {:?}",
        report.epoch_hit_rates
    );

    let tiny = SoakConfig { bound: CacheBound::entries(1), ..cfg };
    let (starved, stats) = soak_once(&reg, &tiny, "tiny");
    assert!(starved.zero_drift());
    assert!(stats.consistent(), "{stats:?}");
    assert!(starved.final_entries.len() <= 1);
    assert!(
        starved.steady_hit_rate < report.steady_hit_rate,
        "a one-entry cache cannot out-hit a 16-entry cache"
    );
}

/// Fairness under flood: tenant 0 owns roughly half the traffic, yet the
/// soak still serves every tenant and tenant 0 pays its own queueing
/// tail rather than exporting it.
#[test]
fn hot_tenant_pays_its_own_latency_tail() {
    quiet_injected_panics();
    let reg = synthetic_registry();
    let cfg = small_config(42, 0.1, CacheBound::entries(16), 2);
    let (report, _) = soak_once(&reg, &cfg, "fair");
    let hot = report.ledger.get(0);
    assert_eq!(
        report.ledger.len(),
        cfg.tenants,
        "every tenant must be served:\n{}",
        report.ledger.render()
    );
    for (tenant, stats) in report.ledger.iter() {
        assert!(stats.served > 0, "tenant {tenant} starved");
        if tenant != 0 {
            assert!(
                stats.max_latency_rounds <= hot.max_latency_rounds,
                "tenant {tenant} waited longer than the flooding tenant:\n{}",
                report.ledger.render()
            );
        }
    }
    assert_eq!(report.worst_tenant_latency_rounds, hot.max_latency_rounds);
}
