//! Integration test: multi-seed aggregation over registry experiments —
//! the distributional view that turns single-run metrics into claims.

use treu::core::aggregate::{render_summary, summarize};
use treu::core::experiment::{run_seeds, Params};
use treu::surveys::experiments::Table1Experiment;
use treu::traj::experiment::TrajectoryExperiment;

#[test]
fn table1_reproduction_has_zero_variance_across_seeds() {
    // The goal counts are exact for every seed, so their across-seed
    // variance must be exactly zero — the strongest reproducibility
    // statement the harness can make.
    let records = run_seeds(&Table1Experiment, &[1, 2, 3, 4, 5], &Params::new());
    let summary = summarize(&records);
    let dev = &summary["max_abs_dev"];
    assert_eq!(dev.stats.count(), 5);
    assert_eq!(dev.stats.mean(), 0.0);
    assert_eq!(dev.stats.std_dev(), 0.0);
    assert_eq!(dev.max, 0.0);
}

#[test]
fn semantic_improvement_is_positive_in_distribution() {
    let params = Params::new()
        .with_int("trials", 1)
        .with_int("train_per_class", 8)
        .with_int("test_per_class", 4);
    let records = run_seeds(&TrajectoryExperiment, &[10, 20, 30, 40], &params);
    let summary = summarize(&records);
    let imp = &summary["improvement"];
    assert!(imp.stats.mean() > 0.05, "mean improvement {}", imp.stats.mean());
    assert!(imp.min > -0.1, "no seed should show a large regression; min {}", imp.min);
    // The rendered report carries all three metric rows.
    let table = render_summary("E2.4 across seeds", &summary).render();
    assert!(table.contains("improvement"));
    assert!(table.contains("shape_accuracy"));
    assert!(table.contains("semantic_accuracy"));
}
