//! Integration tests for the reproducibility harness across every
//! registered experiment (RH in DESIGN.md's index).
//!
//! Every experiment in the registry must be (a) runnable, (b) bitwise
//! deterministic under a fixed seed, (c) sensitive to the seed, and
//! (d) executor-conformant: running it through the parallel
//! [`Executor`] at any job count produces trails bitwise-identical to
//! the sequential run. Heavy experiments run with lightened parameters —
//! determinism is a property of the code path, not of the workload size.

use treu::conformance_params as light_params;
use treu::core::exec::Executor;
use treu::core::experiment::Params;

#[test]
fn every_experiment_runs_and_is_deterministic() {
    let reg = treu::full_registry();
    assert!(reg.len() >= 19, "registry holds the full index");
    for (id, _) in reg.iter() {
        let p = light_params(id);
        let a = reg.run_with(id, 77, p.clone()).expect("registered");
        let b = reg.run_with(id, 77, p.clone()).expect("registered");
        assert_eq!(a.trail, b.trail, "experiment {id} is not deterministic under a fixed seed");
        assert!(!a.trail.metrics().is_empty(), "experiment {id} recorded no metrics");
    }
}

#[test]
fn conformance_every_id_reproduces_at_every_job_count() {
    // The workspace-wide determinism conformance suite: the whole registry
    // is verified (each id run twice, concurrently) at jobs 1, 2 and 8,
    // and the per-id fingerprints must be identical across job counts.
    let reg = treu::full_registry();
    let mut baseline: Option<Vec<(String, u64)>> = None;
    for jobs in [1usize, 2, 8] {
        let report = Executor::new(jobs).verify_all_with(&reg, 77, |id, _| light_params(id));
        assert_eq!(report.outcomes.len(), reg.len(), "jobs={jobs}");
        assert!(
            report.all_reproduced(),
            "non-deterministic at jobs={jobs}: {:?}",
            report.violations()
        );
        let fps: Vec<(String, u64)> =
            report.outcomes.iter().map(|o| (o.id.clone(), o.fingerprint)).collect();
        match &baseline {
            None => baseline = Some(fps),
            Some(base) => {
                assert_eq!(base, &fps, "fingerprints changed between jobs=1 and jobs={jobs}")
            }
        }
    }
}

#[test]
fn conformance_multi_seed_batches_are_job_count_invariant() {
    // run_seeds through the executor, on a spread of registry ids covering
    // different crates, must match the sequential records bitwise.
    let reg = treu::full_registry();
    let seeds = [3u64, 14, 15, 92, 65];
    for id in ["T1", "N1", "E2.10-abl", "E2.5-abl", "E3"] {
        let p = light_params(id);
        let seq: Vec<_> =
            seeds.iter().map(|&s| reg.run_with(id, s, p.clone()).expect("registered")).collect();
        for jobs in [2usize, 8] {
            let par = Executor::new(jobs).map_indexed(seeds.len(), |i| {
                reg.run_with(id, seeds[i], p.clone()).expect("registered")
            });
            for (a, b) in seq.iter().zip(par.iter()) {
                assert_eq!(a.trail, b.trail, "{id} diverged at jobs={jobs}");
            }
        }
    }
}

#[test]
fn conformance_warm_cache_verify_recomputes_nothing() {
    // Acceptance criterion: a second `treu verify` against a warm cache
    // recomputes zero experiments, the hit count equals the experiment
    // count, and the replayed fingerprints match the cold pass bitwise.
    use treu::core::cache::RunCache;
    let reg = treu::full_registry();
    let dir = std::env::temp_dir().join(format!("treu-harness-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let exec = Executor::new(4);

    let cold_cache = RunCache::open(&dir).expect("cache dir");
    let cold = exec.verify_all_cached_with(&reg, 77, Some(&cold_cache), |id, _| light_params(id));
    assert!(cold.all_reproduced(), "cold pass: {:?}", cold.violations());
    assert_eq!(cold.recomputed, reg.len(), "cold cache verifies everything the hard way");
    assert_eq!(cold_cache.stats().misses, reg.len() as u64);
    assert_eq!(cold_cache.stats().stores, reg.len() as u64);

    // A fresh handle on the same directory, so the stats below are purely
    // the warm pass's.
    let warm_cache = RunCache::open(&dir).expect("cache dir");
    let warm = exec.verify_all_cached_with(&reg, 77, Some(&warm_cache), |id, _| light_params(id));
    assert!(warm.all_reproduced());
    assert_eq!(warm.recomputed, 0, "warm cache must recompute zero experiments");
    assert_eq!(warm.cached_count(), reg.len());
    assert_eq!(warm_cache.stats().hits, reg.len() as u64, "hit count equals experiment count");
    assert_eq!(warm_cache.stats().misses, 0);

    let cold_fps: Vec<(String, u64)> =
        cold.outcomes.iter().map(|o| (o.id.clone(), o.fingerprint)).collect();
    let warm_fps: Vec<(String, u64)> =
        warm.outcomes.iter().map(|o| (o.id.clone(), o.fingerprint)).collect();
    assert_eq!(cold_fps, warm_fps, "cache replay changed a fingerprint");

    // A different seed misses the cache: the address covers the seed.
    // (Param sensitivity is covered by the cache unit tests; re-running
    // the registry at default params here would be needlessly slow.)
    let seed_cache = RunCache::open(&dir).expect("cache dir");
    let reseeded =
        exec.verify_all_cached_with(&reg, 78, Some(&seed_cache), |id, _| light_params(id));
    assert!(reseeded.all_reproduced());
    assert_eq!(seed_cache.stats().hits, 0, "seed is part of the cache address");
    assert_eq!(reseeded.recomputed, reg.len());

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn executor_report_accounts_for_every_registry_run() {
    let reg = treu::full_registry();
    // Two light survey ids through run_all on a restricted registry is not
    // possible (run_all uses defaults), so check the report plumbing on
    // verify_all_with instead: per-id outcomes plus positive wall time.
    let report = Executor::new(4).verify_all_with(&reg, 5, |id, _| light_params(id));
    assert_eq!(report.jobs, 4);
    assert!(report.wall_seconds > 0.0);
    let rendered = report.render();
    for (id, _) in reg.iter() {
        assert!(rendered.contains(id), "render missing {id}");
    }
    assert!(rendered.contains(&format!("{}/{} reproduced", reg.len(), reg.len())));
}

#[test]
fn experiments_are_seed_sensitive() {
    // Randomized experiments must actually consume their seed. (Seed
    // sensitivity of the *metrics* can coincide by rounding; the trail
    // records rng streams, so fingerprints must differ.)
    let reg = treu::full_registry();
    for id in ["T1", "E2.2a", "E2.10", "E3"] {
        let p = light_params(id);
        let a = reg.run_with(id, 1, p.clone()).expect("registered");
        let b = reg.run_with(id, 2, p.clone()).expect("registered");
        assert_ne!(a.fingerprint(), b.fingerprint(), "{id} ignored its seed");
    }
}

#[test]
fn run_records_carry_wall_time_and_name() {
    let reg = treu::full_registry();
    let rec = reg.run_with("T1", 5, Params::new()).expect("registered");
    assert_eq!(rec.name, "surveys/table1");
    assert!(rec.wall_seconds >= 0.0);
    assert_eq!(rec.seed, 5);
}

#[test]
fn environment_capture_is_stable_within_process() {
    use treu::core::environment::Environment;
    let a = Environment::capture();
    let b = Environment::capture();
    assert_eq!(a, b);
    assert!(a.diff(&b).is_empty());
}
