//! Integration drills for the in-toto-style attestation chain: a real
//! `run` → `verify` pipeline emitting MAC-sealed links, then targeted
//! corruption of every artifact class the links cover — a cached blob, a
//! trace stream, a link file, the chain order itself — asserting that
//! `treu attest verify` exits non-zero *naming the exact producing
//! step*. The topology drill asserts the bytes of an emitted link are
//! identical at every `(workers, jobs)` shape, because links are sealed
//! coordinator-side from schedule-independent content addresses.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::OnceLock;

fn treu(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_treu")).args(args).output().expect("binary runs")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("treu-attest-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).expect("copy target");
    for entry in std::fs::read_dir(src).expect("copy source readable") {
        let entry = entry.expect("dir entry");
        let to = dst.join(entry.file_name());
        if entry.file_type().expect("file type").is_dir() {
            copy_dir(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).expect("copy file");
        }
    }
}

/// One shared run → verify chain (two registry-wide batches are not
/// cheap); every corruption drill works on its own copy.
fn built_chain() -> &'static Path {
    static CHAIN: OnceLock<PathBuf> = OnceLock::new();
    CHAIN.get_or_init(|| {
        let root = temp_dir("chain");
        for cmd in ["run", "verify"] {
            let out = treu(&[
                cmd,
                "--attest-dir",
                root.join("at").to_str().expect("utf8"),
                "--cache-dir",
                root.join("cache").to_str().expect("utf8"),
                "--trace-out",
                root.join("tr").to_str().expect("utf8"),
            ]);
            assert!(
                out.status.success(),
                "{cmd} --attest-dir failed: {}",
                String::from_utf8_lossy(&out.stderr)
            );
        }
        root
    })
}

fn attest(root: &Path, sub: &[&str]) -> std::process::Output {
    let mut args = vec!["attest"];
    args.extend_from_slice(sub);
    let at = root.join("at");
    let cache = root.join("cache");
    let tr = root.join("tr");
    args.extend_from_slice(&[
        "--attest-dir",
        at.to_str().expect("utf8"),
        "--cache-dir",
        cache.to_str().expect("utf8"),
        "--trace-out",
        tr.to_str().expect("utf8"),
    ]);
    treu(&args)
}

/// The FAIL line `attest verify` pinpoints the breakage with.
fn first_fail_line(stdout: &str) -> String {
    stdout
        .lines()
        .find(|l| l.trim_start().starts_with("FAIL "))
        .unwrap_or_else(|| panic!("no FAIL line in:\n{stdout}"))
        .trim()
        .to_string()
}

#[test]
fn untampered_chain_verifies_clean_and_earns_the_badge() {
    let root = temp_dir("clean");
    copy_dir(built_chain(), &root);

    let out = attest(&root, &["verify", "--enforce"]);
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(out.status.success(), "clean chain must verify: {stdout}");
    assert!(stdout.contains("chain: OK — 2 link(s)"), "unexpected report:\n{stdout}");
    assert!(!stdout.contains("skipped:"), "all artifact classes must be re-hashed:\n{stdout}");

    // A verified chain supports the full ACM badge ladder, and the badge
    // evaluation itself becomes the final link.
    let out = attest(&root, &["badge", "--enforce"]);
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(out.status.success(), "badge on a clean chain must pass: {stdout}");
    assert!(stdout.contains("awarded ResultsReproduced"), "missing badge:\n{stdout}");

    let out = attest(&root, &["verify", "--enforce"]);
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(out.status.success(), "chain with badge link must verify: {stdout}");
    assert!(stdout.contains("chain: OK — 3 link(s)"), "badge link not chained:\n{stdout}");

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn corrupting_one_cached_blob_names_the_producing_step() {
    let root = temp_dir("cache-corrupt");
    copy_dir(built_chain(), &root);

    // Forge one metric into one cached run entry's trail body.
    let mut entries: Vec<PathBuf> = std::fs::read_dir(root.join("cache"))
        .expect("cache dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "run"))
        .collect();
    entries.sort();
    let victim = entries.first().expect("at least one cached run entry");
    let mut text = std::fs::read_to_string(victim).expect("entry readable");
    text.push_str("metric forged = 42\n");
    std::fs::write(victim, text).expect("entry writable");

    let out = attest(&root, &["verify"]);
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert_eq!(out.status.code(), Some(1), "tampered cache must fail verification:\n{stdout}");
    let fail = first_fail_line(&stdout);
    // The `run` step produced the entry; the first FAIL must blame it,
    // name the exact entry file, and say what happened.
    assert!(fail.contains("step 'run'"), "wrong step blamed: {fail}");
    let file = victim.file_name().expect("file name").to_string_lossy().into_owned();
    assert!(fail.contains(&file), "corrupted entry not named: {fail}");
    assert!(fail.contains("cache entry tampered"), "wrong diagnosis: {fail}");

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn corrupting_the_trace_stream_names_the_producing_step() {
    let root = temp_dir("trace-corrupt");
    copy_dir(built_chain(), &root);

    // Append a byte to every hashed event stream (the .times sidecars
    // are deliberately outside the hash and must stay corruptible for
    // free). Walk order then blames the first producer: the run step.
    for entry in std::fs::read_dir(root.join("tr")).expect("trace dir") {
        let p = entry.expect("entry").path();
        let name = p.file_name().expect("name").to_string_lossy().into_owned();
        if name.starts_with("trace-") && name.ends_with(".jsonl") && !name.contains(".times.") {
            let mut bytes = std::fs::read(&p).expect("trace readable");
            bytes.push(b'x');
            std::fs::write(&p, bytes).expect("trace writable");
        }
    }

    let out = attest(&root, &["verify"]);
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert_eq!(out.status.code(), Some(1), "tampered trace must fail verification:\n{stdout}");
    let fail = first_fail_line(&stdout);
    assert!(fail.contains("step 'run'"), "wrong step blamed: {fail}");
    assert!(fail.contains("trace:trace-"), "trace artifact not named: {fail}");
    assert!(fail.contains("trace file tampered"), "wrong diagnosis: {fail}");

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn tampering_a_link_file_is_pinned_to_that_step() {
    let root = temp_dir("link-tamper");
    copy_dir(built_chain(), &root);

    // Flip the seed inside the sealed body of the verify link: still a
    // perfectly well-formed link file, but not the one that was MACed.
    let link = root.join("at").join("0001-verify.link");
    let text = std::fs::read_to_string(&link).expect("link readable");
    std::fs::write(&link, text.replacen("seed 2023", "seed 2024", 1)).expect("link writable");

    let out = attest(&root, &["verify"]);
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert_eq!(out.status.code(), Some(1), "tampered link must fail verification:\n{stdout}");
    let fail = first_fail_line(&stdout);
    assert!(fail.contains("step 'verify'"), "wrong step blamed: {fail}");
    assert!(fail.contains("0001-verify.link"), "link file not named: {fail}");
    assert!(fail.contains("link MAC rejected"), "wrong diagnosis: {fail}");

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn dropping_a_link_breaks_the_chain_linkage() {
    let root = temp_dir("link-drop");
    copy_dir(built_chain(), &root);

    // Remove the run link: the verify link's `prev` no longer matches
    // the chain head (now the layout MAC), so the excision is detected
    // even though every surviving file is individually pristine.
    std::fs::remove_file(root.join("at").join("0000-run.link")).expect("drop run link");

    let out = attest(&root, &["verify"]);
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert_eq!(out.status.code(), Some(1), "gapped chain must fail verification:\n{stdout}");
    let fail = first_fail_line(&stdout);
    assert!(fail.contains("step 'verify'"), "wrong step blamed: {fail}");
    assert!(fail.contains("chain linkage broken"), "wrong diagnosis: {fail}");

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn link_bytes_are_identical_at_every_topology() {
    // The conformance batch through every (workers, jobs) shape the
    // acceptance criteria name. Links are sealed coordinator-side from
    // schedule-independent addresses, so the emitted bytes — MAC
    // included — must be identical for all six.
    let mut reference: Option<(String, Vec<u8>)> = None;
    for workers in ["1", "2", "4"] {
        for jobs in ["1", "4"] {
            let root = temp_dir(&format!("topo-w{workers}-j{jobs}"));
            let out = treu(&[
                "verify",
                "--conformance",
                "--workers",
                workers,
                "--jobs",
                jobs,
                "--attest-dir",
                root.join("at").to_str().expect("utf8"),
                "--cache-dir",
                root.join("cache").to_str().expect("utf8"),
            ]);
            assert!(
                out.status.success(),
                "verify(workers={workers}, jobs={jobs}) failed: {}",
                String::from_utf8_lossy(&out.stderr)
            );
            let link = root.join("at").join("0000-verify.link");
            let bytes = std::fs::read(&link).expect("link emitted");
            let shape = format!("workers={workers} jobs={jobs}");
            match &reference {
                None => reference = Some((shape, bytes)),
                Some((ref_shape, ref_bytes)) => assert_eq!(
                    ref_bytes, &bytes,
                    "link bytes diverged between {ref_shape} and {shape}"
                ),
            }
            let _ = std::fs::remove_dir_all(&root);
        }
    }
}
