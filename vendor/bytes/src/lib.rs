//! Offline shim for the `bytes` API subset TREU uses.
//!
//! Provides [`Bytes`] (a cheaply cloneable, sliceable view of shared
//! immutable bytes), [`BytesMut`] (a growable builder), and the [`Buf`] /
//! [`BufMut`] cursor traits. Multi-byte integers are big-endian, matching
//! the real crate's `get_u16`/`put_u16` family. Only the surface exercised
//! by the workspace is implemented; out-of-bounds reads panic, as upstream
//! documents.

#![forbid(unsafe_code)]

use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

/// Read cursor over a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skips `n` bytes. Panics if fewer than `n` remain.
    fn advance(&mut self, n: usize);

    /// True while at least one byte remains.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies exactly `dst.len()` bytes out, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "copy_to_slice out of bounds");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }
}

/// Write cursor appending to a byte sink.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// A cheaply cloneable, sliceable handle to shared immutable bytes.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty `Bytes`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Length of the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The viewed bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Returns a sub-view of this view (no copy).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes { data: Arc::clone(&self.data), start: self.start + lo, end: self.start + hi }
    }

    /// Splits off and returns the first `n` bytes, advancing `self` past
    /// them.
    ///
    /// # Panics
    ///
    /// Panics if `n > self.len()`.
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "split_to out of bounds");
        let head = Bytes { data: Arc::clone(&self.data), start: self.start, end: self.start + n };
        self.start += n;
        head
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of bounds");
        self.start += n;
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes { data: v.into(), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        v.to_vec().into()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte builder; [`BytesMut::freeze`] converts it into
/// [`Bytes`] without copying.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder with reserved capacity.
    pub fn with_capacity(n: usize) -> Self {
        Self { data: Vec::with_capacity(n) }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        self.data.into()
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_freeze_read_roundtrip() {
        let mut b = BytesMut::new();
        b.put_u8(0xAB);
        b.put_u16(0x0102);
        b.put_u32(0x03040506);
        b.put_slice(b"xy");
        let mut bytes = b.freeze();
        assert_eq!(bytes.len(), 9);
        assert_eq!(bytes.get_u8(), 0xAB);
        assert_eq!(bytes.get_u16(), 0x0102);
        assert_eq!(bytes.get_u32(), 0x03040506);
        let mut rest = [0u8; 2];
        bytes.copy_to_slice(&mut rest);
        assert_eq!(&rest, b"xy");
        assert!(!bytes.has_remaining());
    }

    #[test]
    fn slice_and_split_share_storage_views() {
        let b: Bytes = vec![0, 1, 2, 3, 4, 5].into();
        assert_eq!(b.slice(..4).as_slice(), &[0, 1, 2, 3]);
        assert_eq!(b.slice(2..4).as_slice(), &[2, 3]);
        let mut tail = b.slice(2..);
        let head = tail.split_to(2);
        assert_eq!(head.as_slice(), &[2, 3]);
        assert_eq!(tail.as_slice(), &[4, 5]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn overread_panics() {
        let mut b: Bytes = vec![1].into();
        b.get_u16();
    }

    #[test]
    fn advance_moves_cursor() {
        let mut b: Bytes = vec![9, 8, 7].into();
        b.advance(2);
        assert_eq!(b.get_u8(), 7);
    }
}
