//! Offline shim for the `crossbeam` API surface TREU uses.
//!
//! The workspace builds without network access to crates.io, so the real
//! `crossbeam` cannot be fetched. This crate re-implements the one entry
//! point the workspace calls — [`scope`] with [`thread::Scope::spawn`] and
//! [`thread::ScopedJoinHandle::join`] — on top of `std::thread::scope`,
//! which provides the same structured-concurrency guarantee (all workers
//! join before the scope returns). Semantics match crossbeam for the
//! workspace's usage; the one divergence is panic propagation: where
//! crossbeam returns `Err` from `scope` if an unjoined worker panicked,
//! `std::thread::scope` resumes the panic directly. Every call site
//! `.expect()`s the result, so both surface as a panic either way.

#![forbid(unsafe_code)]

/// Scoped-thread types, mirroring `crossbeam::thread`.
pub mod thread {
    /// Error payload of a panicked worker, as `join` returns it.
    pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

    /// A scope handle passed to [`super::scope`]'s closure; spawns workers
    /// that may borrow from the enclosing stack frame.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped worker.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the worker and returns its result, or the panic
        /// payload if it panicked.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub(crate) fn wrap(inner: &'scope std::thread::Scope<'scope, 'env>) -> Self {
            Self { inner }
        }

        /// Spawns a worker inside the scope. As in crossbeam, the closure
        /// receives the scope again so workers can spawn sub-workers.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle { inner: inner.spawn(move || f(&Scope::wrap(inner))) }
        }
    }
}

/// Creates a scope in which threads may borrow non-`'static` data; all
/// spawned workers are joined before `scope` returns.
pub fn scope<'env, F, R>(f: F) -> thread::Result<R>
where
    F: for<'scope> FnOnce(&thread::Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&thread::Scope::wrap(s))))
}

#[cfg(test)]
mod tests {
    #[test]
    fn workers_fill_disjoint_bands() {
        let mut buf = [0u64; 10];
        super::scope(|s| {
            let (a, b) = buf.split_at_mut(5);
            s.spawn(move |_| a.fill(1));
            s.spawn(move |_| b.fill(2));
        })
        .unwrap();
        assert_eq!(buf[..5], [1; 5]);
        assert_eq!(buf[5..], [2; 5]);
    }

    #[test]
    fn join_returns_value() {
        let v = super::scope(|s| s.spawn(|_| 41 + 1).join().unwrap()).unwrap();
        assert_eq!(v, 42);
    }

    #[test]
    fn nested_spawn_compiles_and_runs() {
        let v = super::scope(|s| s.spawn(|s2| s2.spawn(|_| 7).join().unwrap()).join().unwrap())
            .unwrap();
        assert_eq!(v, 7);
    }
}
