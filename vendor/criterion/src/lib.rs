//! Offline shim for the `criterion` API subset TREU's benches use.
//!
//! Implements [`Criterion`], [`Bencher`], [`BenchmarkId`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros with a simple
//! warmup-then-sample timer. Each sample times a batch of iterations and
//! the reported statistics are the minimum, median, and mean of the
//! per-iteration times — minimum first, because timing noise is strictly
//! additive. Results print to stdout; there is no plotting, baseline
//! comparison, or statistical regression machinery.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Identifier for a parameterized benchmark, rendered `name/param`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/param` id.
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        Self { id: format!("{}/{}", name.into(), param) }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        Self { id: param.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times the body handed to [`Bencher::iter`].
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    /// Per-iteration seconds, one entry per sample.
    samples: Vec<f64>,
}

impl Bencher {
    /// Runs `body` repeatedly: first until the warmup window elapses, then
    /// `sample_size` timed batches spread over the measurement window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // Warmup, counting iterations to size the timed batches.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        loop {
            std::hint::black_box(body());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let batch = ((budget / per_iter.max(1e-12)) as u64).clamp(1, 1_000_000);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(body());
            }
            self.samples.push(start.elapsed().as_secs_f64() / batch as f64);
        }
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warmup duration before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Total measurement window, split across samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Plotting is not implemented; accepted for API compatibility.
    pub fn without_plots(self) -> Self {
        self
    }

    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        report(id, &mut b.samples);
        self
    }

    /// Runs one parameterized benchmark, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(&id.to_string(), |b| f(b, input))
    }

    /// Opens a named group; member ids render as `group/id`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }
}

/// A named collection of related benchmarks sharing an id prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark under the group's prefix. Accepts `&str` ids and
    /// [`BenchmarkId`]s alike, as upstream does.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Runs one parameterized benchmark under the group's prefix.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.bench_function(&full, |b| f(b, input));
        self
    }

    /// Ends the group (reporting is per-benchmark, so this is a no-op).
    pub fn finish(self) {}
}

fn report(id: &str, samples: &mut [f64]) {
    if samples.is_empty() {
        println!("{id:<40} (no samples — Bencher::iter never called)");
        return;
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{id:<40} min {} | median {} | mean {} ({} samples)",
        fmt_secs(min),
        fmt_secs(median),
        fmt_secs(mean),
        samples.len()
    );
}

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:>9.4} s")
    } else if s >= 1e-3 {
        format!("{:>8.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:>8.3} µs", s * 1e6)
    } else {
        format!("{:>8.1} ns", s * 1e9)
    }
}

/// Declares a benchmark group function, mirroring criterion's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| std::hint::black_box(2 + 2));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn groups_run_their_members() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(4));
        let mut ran = 0;
        let mut g = c.benchmark_group("grp");
        g.bench_function("one", |b| {
            b.iter(|| std::hint::black_box(1));
            ran += 1;
        });
        g.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &x| {
            b.iter(|| std::hint::black_box(x * 2));
            ran += 1;
        });
        g.finish();
        assert_eq!(ran, 2);
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("sweep", 8).to_string(), "sweep/8");
        assert_eq!(BenchmarkId::from_parameter(32).to_string(), "32");
    }
}
