//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::TestRng;
use std::ops::Range;

/// Length specifications accepted by [`vec`]: an exact `usize` or a
/// half-open `Range<usize>`.
pub trait IntoSizeRange {
    /// Converts to inclusive `(min, max)` lengths.
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl IntoSizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty size range");
        (self.start, self.end - 1)
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = if self.min == self.max {
            self.min
        } else {
            self.min + rng.next_bounded((self.max - self.min + 1) as u64) as usize
        };
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `Vec`s whose elements come from `element` and whose length
/// lies in `size`.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (min, max) = size.bounds();
    VecStrategy { element, min, max }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_ranged_lengths() {
        let mut rng = TestRng::for_case("len", 0);
        assert_eq!(vec(0u8..10, 4usize).generate(&mut rng).len(), 4);
        for _ in 0..50 {
            let v = vec(0u8..10, 1..4).generate(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }
}
