//! Offline shim for the `proptest` API subset TREU uses.
//!
//! A deterministic mini property-testing framework: the [`proptest!`]
//! macro expands each property into a `#[test]` that derives a per-case
//! RNG from the test's name and case index (so failures are reproducible
//! run-to-run, in keeping with this workspace's determinism thesis),
//! samples each argument's [`Strategy`], and executes the body. There is
//! no shrinking and no persistence of failing cases; a failing property
//! reports the case index in its panic message instead.
//!
//! Implemented strategy surface: numeric ranges, [`any`],
//! [`strategy::Just`], tuples, `prop_map`, [`prop_oneof!`][crate::prop_oneof],
//! [`collection::vec`], and a small regex-class subset for `&str`
//! strategies (`"[a-z]{1,12}"`-style patterns).

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;

/// Deterministic generator (SplitMix64) driving every strategy.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one test case, derived from the test name and case index.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut rng = Self { state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15) };
        rng.next_u64(); // decorrelate adjacent cases
        rng
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be positive.
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= (bound.wrapping_neg() % bound) {
                return (m >> 64) as u64;
            }
        }
    }
}

/// Per-property configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig,
    };
}

/// Types producible by [`any`].
pub trait Arbitrary {
    /// Samples an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Full bit-pattern coverage: subnormals, infinities and NaNs
        // included, as with upstream's any::<f64>().
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f32::from_bits(rng.next_u64() as u32)
    }
}

/// Strategy producing any value of `T` (see [`Arbitrary`]).
pub fn any<T: Arbitrary>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

/// Expands properties into deterministic `#[test]` functions.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    (@impl $cfg:expr; $(#[test] fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..u64::from(cfg.cases) {
                    let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    // As upstream: the body runs in a Result-returning
                    // closure so `return Ok(())` ends a case early and
                    // prop_assume! can reject one.
                    #[allow(clippy::redundant_closure_call)]
                    let __outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let Err(e) = __outcome {
                        panic!("property {} failed at case {__case}: {e}", stringify!($name));
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// `assert!` under proptest's name.
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// `assert_eq!` under proptest's name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// `assert_ne!` under proptest's name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Ends the current case early (as passed) when the assumption does not
/// hold. Upstream re-draws rejected cases; this shim simply skips them,
/// which is equivalent for the acceptance-style assumptions the workspace
/// uses.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Uniform choice among strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new()$(.or($s))+
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_case() {
        let a = crate::TestRng::for_case("t", 3).next_u64();
        let b = crate::TestRng::for_case("t", 3).next_u64();
        let c = crate::TestRng::for_case("t", 4).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..17, y in -2.5..4.0f64, b in 0u8..0xC0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..4.0).contains(&y));
            prop_assert!(b < 0xC0);
        }

        #[test]
        fn assume_skips(n in 0..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn string_classes_match(tag in "[a-z]{1,12}") {
            prop_assert!(!tag.is_empty() && tag.len() <= 12);
            prop_assert!(tag.bytes().all(|b| b.is_ascii_lowercase()));
        }

        #[test]
        fn vec_and_map_compose(v in crate::collection::vec((0usize..5).prop_map(|i| i * 2), 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x % 2 == 0 && x < 10));
        }

        #[test]
        fn oneof_picks_an_arm(v in prop_oneof![Just(1), Just(2), Just(3)]) {
            prop_assert!((1..=3).contains(&v));
        }

        #[test]
        fn tuples_sample_componentwise((a, b) in (1u64..9, "[xy]{2,3}")) {
            prop_assert!((1..9).contains(&a));
            prop_assert!(b.chars().all(|c| c == 'x' || c == 'y'));
        }
    }
}
