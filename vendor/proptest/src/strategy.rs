//! The [`Strategy`] trait and the combinators TREU's tests use.

use crate::TestRng;
use std::ops::Range;

/// A recipe for generating values of one type.
///
/// Object-safe: `generate` takes `&self`, and the provided combinators are
/// `Self: Sized`, so `Box<dyn Strategy<Value = T>>` works (see [`Union`]).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Samples one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`crate::any`].
#[derive(Debug, Clone)]
pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

impl<T: crate::Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Uniform choice among boxed strategies (see [`crate::prop_oneof`]).
#[derive(Default)]
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// An empty union; generate panics until an arm is added.
    pub fn new() -> Self {
        Self { options: Vec::new() }
    }

    /// Adds an arm.
    pub fn or(mut self, s: impl Strategy<Value = T> + 'static) -> Self {
        self.options.push(Box::new(s));
        self
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.options.is_empty(), "prop_oneof! needs at least one arm");
        let i = rng.next_bounded(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.next_bounded(width) as i128) as $t
            }
        }
    )*};
}
range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.next_f64() as f32
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// `&str` strategies: a pattern over a small regex subset — literal
/// characters, character classes with ranges (`[a-z0-9_]`), and the
/// quantifiers `{n}`, `{m,n}`, `?`, `+`, `*` (the unbounded ones capped at
/// 8 repeats). This covers the `"[a-z]{1,12}"`-style patterns the
/// workspace's tests use.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for (chars, lo, hi) in &atoms {
            let n =
                if lo == hi { *lo } else { *lo + rng.next_bounded((hi - lo + 1) as u64) as usize };
            for _ in 0..n {
                let i = rng.next_bounded(chars.len() as u64) as usize;
                out.push(chars[i]);
            }
        }
        out
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        self.as_str().generate(rng)
    }
}

/// Parses a pattern into `(choices, min_reps, max_reps)` atoms.
fn parse_pattern(pat: &str) -> Vec<(Vec<char>, usize, usize)> {
    let chars: Vec<char> = pat.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed '[' in pattern '{pat}'"));
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (a, b) = (chars[j], chars[j + 2]);
                        assert!(a <= b, "inverted class range in pattern '{pat}'");
                        for c in a..=b {
                            set.push(c);
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                assert!(!set.is_empty(), "empty class in pattern '{pat}'");
                i = close + 1;
                set
            }
            '\\' => {
                assert!(i + 1 < chars.len(), "dangling escape in pattern '{pat}'");
                i += 2;
                vec![chars[i - 1]]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // Optional quantifier.
        let (lo, hi) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed '{{' in pattern '{pat}'"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad quantifier"),
                        hi.trim().parse().expect("bad quantifier"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("bad quantifier");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            _ => (1, 1),
        };
        assert!(lo <= hi, "inverted quantifier in pattern '{pat}'");
        atoms.push((choices, lo, hi));
    }
    atoms
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_parser_handles_classes_and_quantifiers() {
        let atoms = parse_pattern("[a-c]{2,4}x\\[?");
        assert_eq!(atoms.len(), 3);
        assert_eq!(atoms[0], (vec!['a', 'b', 'c'], 2, 4));
        assert_eq!(atoms[1], (vec!['x'], 1, 1));
        assert_eq!(atoms[2], (vec!['['], 0, 1));
    }

    #[test]
    fn int_range_covers_whole_span() {
        let mut rng = TestRng::for_case("span", 0);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[(3..8).generate(&mut rng) as usize - 3] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn negative_int_ranges_work() {
        let mut rng = TestRng::for_case("neg", 0);
        for _ in 0..100 {
            let v = (-5i64..-1).generate(&mut rng);
            assert!((-5..-1).contains(&v));
        }
    }
}
